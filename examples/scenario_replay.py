#!/usr/bin/env python3
"""Replay an ns-2 ``setdest`` scenario file and watch the topology live.

The paper ran on ns-2 with CMU Monarch scenario files.  This example goes
the other way: it writes such a file (here generated from our random
waypoint model — substitute any real setdest output), replays it through
this simulator, and renders the logical topology as ASCII maps so a
partition is something you can actually look at.

Run:  python examples/scenario_replay.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.plotting import topology_map
from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import ViewSynchronization
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.metrics.connectivity import largest_effective_component
from repro.mobility import Area, RandomWaypoint, ScenarioFileMobility
from repro.mobility.scenario_io import export_setdest
from repro.protocols import MstProtocol
from repro.api import NetworkWorld, ScenarioConfig

AREA = Area(500.0, 500.0)
N, HORIZON = 25, 20.0


def main() -> None:
    # 1. produce a setdest scenario file (stand-in for a real ns-2 one)
    source_model = RandomWaypoint(
        AREA, N, horizon=HORIZON, mean_speed=15.0, rng=np.random.default_rng(5)
    )
    scenario_text = export_setdest(source_model.trajectories)
    n_commands = sum(1 for line in scenario_text.splitlines() if "setdest" in line)
    print(f"scenario: {N} nodes, {n_commands} setdest commands, {HORIZON:g}s\n")

    # 2. replay it
    mobility = ScenarioFileMobility(AREA, scenario_text, horizon=HORIZON)
    config = ScenarioConfig(
        n_nodes=N, area=AREA, normal_range=250.0, duration=HORIZON,
        warmup=2.0, sample_rate=2.0,
    )
    manager = MobilitySensitiveTopologyControl(
        MstProtocol(),
        mechanism=ViewSynchronization(),
        buffer_policy=BufferZonePolicy(width=20.0, cap=config.normal_range),
    )
    world = NetworkWorld(config, mobility, manager, seed=5)

    # 3. watch the maintained logical topology evolve
    for t in (4.0, 10.0, 16.0):
        world.run_until(t)
        snap = world.snapshot()
        print(topology_map(snap, width=56, height=18))
        print(
            f"   largest effective component: "
            f"{largest_effective_component(snap):.0%} of nodes\n"
        )


if __name__ == "__main__":
    main()
