#!/usr/bin/env python3
"""High-mobility scenario: keep a vehicular network connected.

The paper's speed sweep goes far beyond pedestrian mobility "to emulate
dense networks that use much shorter transmission ranges".  This example
is the reverse reading: vehicles at 20-40 m/s with full-size radios.  It
sizes the buffer zone *empirically* per mechanism — sweeping widths until
the 90 % connectivity bar is met — and reports what each mechanism pays.

It also demonstrates using the library below the experiment harness:
driving a NetworkWorld directly, probing floods by hand, and watching one
node's logical neighbor set churn as traffic moves.

Run:  python examples/vehicular_convoy.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.api import ExperimentSpec, ScenarioConfig, build_world, run_once
from repro.mobility.base import Area
from repro.sim.flood import flood

CONFIG = ScenarioConfig(
    n_nodes=50,
    area=Area(636.0, 636.0),
    normal_range=250.0,
    duration=12.0,
    warmup=2.0,
    sample_rate=2.0,
)

VEHICLE_SPEED = 30.0  # m/s (~110 km/h)
TARGET = 0.90
WIDTHS = (0.0, 10.0, 25.0, 50.0, 100.0)


def minimal_width(mechanism: str, pn: bool = False) -> tuple[float | None, dict]:
    """Smallest swept buffer meeting the target; returns (width, row)."""
    last_row: dict = {}
    for width in WIDTHS:
        spec = ExperimentSpec(
            protocol="rng",
            mechanism=mechanism,
            buffer_width=width,
            physical_neighbor_mode=pn,
            mean_speed=VEHICLE_SPEED,
            config=CONFIG,
        )
        result = run_once(spec, seed=11)
        last_row = {
            "mechanism": mechanism + ("+pn" if pn else ""),
            "buffer_m": width,
            "connectivity": result.connectivity_ratio,
            "tx_range_m": result.mean_transmission_range,
        }
        if result.connectivity_ratio >= TARGET:
            return width, last_row
    return None, last_row


def watch_logical_churn() -> None:
    """Drive a world by hand and watch one vehicle's neighbor set change."""
    spec = ExperimentSpec(
        protocol="rng", mechanism="view-sync", buffer_width=25.0,
        mean_speed=VEHICLE_SPEED, config=CONFIG,
    )
    world = build_world(spec, seed=11)
    print("vehicle 0's logical neighbors over time:")
    previous: frozenset[int] = frozenset()
    for t in np.arange(2.0, 12.0, 2.0):
        world.run_until(float(t))
        probe = flood(world, source=0)
        current = world.nodes[0].logical_neighbors
        joined = sorted(current - previous)
        left = sorted(previous - current)
        print(
            f"  t={t:4.1f}s  neighbors={sorted(current)}  "
            f"+{joined if joined else '[]'} -{left if left else '[]'}  "
            f"flood reach={probe.delivery_ratio:.2f}"
        )
        previous = current


def main() -> None:
    rows = []
    summary = []
    for mechanism, pn in [("baseline", False), ("view-sync", False),
                          ("weak", False), ("baseline", True)]:
        width, row = minimal_width(mechanism, pn)
        rows.append(row)
        label = mechanism + ("+pn" if pn else "")
        summary.append(
            f"  {label:12s}: "
            + (f"{width:.0f} m buffer suffices" if width is not None
               else "not rescued within the sweep")
        )

    print(format_table(
        rows,
        title=f"RNG at {VEHICLE_SPEED:g} m/s — operating point per mechanism",
    ))
    print()
    print(f"Smallest buffer reaching {TARGET:.0%} connectivity:")
    print("\n".join(summary))
    print()
    watch_logical_churn()


if __name__ == "__main__":
    main()
