#!/usr/bin/env python3
"""Hybrid mobility management: the paper's future-work idea, measured.

The conclusion of the paper proposes combining *mobility-tolerant*
management (keep the effective topology connected; deliver instantly) with
*mobility-assisted* management (store-and-relay; deliver eventually) "to
achieve a weak form of connectivity: the snapshot ... is not connected at
every moment, but a message can be delivered within a bounded period of
time."

This example implements exactly that hybrid and sweeps the knob between
the two extremes: shrink the buffer zone (cheaper radio, more snapshot
partitions) and let epidemic relaying pick up the packets the snapshot
flood missed, measuring the resulting delivery delay bound.

Run:  python examples/delay_tolerant_hybrid.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.report import format_table
from repro.api import ExperimentSpec, ScenarioConfig, build_world
from repro.mobility.base import Area
from repro.routing import ContactProcessConfig, EpidemicRouting
from repro.sim.flood import flood

CONFIG = ScenarioConfig(
    n_nodes=40,
    area=Area(570.0, 570.0),
    normal_range=250.0,
    duration=40.0,
    warmup=2.0,
    sample_rate=2.0,
)
SPEED = 30.0
N_MESSAGES = 8


def hybrid_delivery(buffer_width: float, seed: int = 21) -> dict:
    """Instant flood first; epidemic store-and-relay for the remainder."""
    spec = ExperimentSpec(
        protocol="rng", mechanism="view-sync", buffer_width=buffer_width,
        mean_speed=SPEED, config=CONFIG,
    )
    world = build_world(spec, seed=seed)
    rng = np.random.default_rng(seed)
    contact = ContactProcessConfig(
        contact_range=CONFIG.normal_range, step=0.5, deadline=20.0
    )
    epidemic = EpidemicRouting(world.mobility, contact)

    instant = 0
    delays: list[float] = []
    undelivered = 0
    tx_range_samples: list[float] = []
    for i in range(N_MESSAGES):
        t = 4.0 + i * 4.0
        world.run_until(t)
        source, dest = rng.choice(CONFIG.n_nodes, size=2, replace=False)
        probe = flood(world, source=int(source))
        tx_range_samples.append(float(world.snapshot().extended_ranges.mean()))
        if probe.reached[dest]:
            instant += 1
            delays.append(0.0)
            continue
        # Fall back to mobility-assisted delivery from the flood instant.
        outcome = epidemic.deliver(int(source), int(dest), start_time=t)
        if outcome.delivered:
            delays.append(outcome.delay)
        else:
            undelivered += 1
    return {
        "buffer_m": buffer_width,
        "instant_frac": instant / N_MESSAGES,
        "delivered_frac": (N_MESSAGES - undelivered) / N_MESSAGES,
        "max_delay_s": max(delays) if delays else math.inf,
        "mean_tx_range_m": float(np.mean(tx_range_samples)),
    }


def main() -> None:
    rows = [hybrid_delivery(width) for width in (0.0, 10.0, 30.0, 100.0)]
    print(format_table(
        rows,
        title=f"Hybrid tolerant+assisted delivery at {SPEED:g} m/s "
              f"({N_MESSAGES} messages per point)",
    ))
    print()
    print("Reading the table: a wide buffer buys instant delivery (delay 0)")
    print("at higher radio range; a narrow buffer trades instant delivery for")
    print("a *bounded* delay paid to node mobility — every message still")
    print("arrives. That bounded-delay regime is the weak connectivity the")
    print("paper's future-work section describes.")


if __name__ == "__main__":
    main()
