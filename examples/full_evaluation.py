#!/usr/bin/env python3
"""Miniature end-to-end evaluation: the whole harness in one script.

Runs a small-scale version of the paper's campaign (Table 1 + Fig. 6 +
Fig. 9), renders ASCII charts, then goes beyond the paper with a paired
A/B comparison and a custom observer probe — a tour of everything the
harness offers in a couple of minutes.

Run:  python examples/full_evaluation.py
"""

from __future__ import annotations

from repro.analysis import (
    SMOKE,
    ExperimentSpec,
    compare_specs,
    figure_chart,
    generate_fig6,
    generate_fig9,
    generate_table1,
)
from repro.api import build_world
from repro.sim.observers import ObserverSet


def main() -> None:
    scale = SMOKE

    print("=== Table 1 (miniature) ===")
    table1 = generate_table1(scale)
    print(table1.format())
    print(f"range ordering: {' < '.join(table1.ordering_by_range())}")
    print()

    print("=== Fig. 6: baselines under mobility ===")
    fig6 = generate_fig6(scale)
    print(figure_chart(fig6, width=56, height=12))
    print()

    print("=== Fig. 9: view synchronization + buffers ===")
    fig9 = generate_fig9(scale)
    print(figure_chart(fig9, width=56, height=12))
    print()

    print("=== Paired A/B: does view sync help RNG at 20 m/s, 10 m buffer? ===")
    a = ExperimentSpec(
        protocol="rng", mechanism="baseline", buffer_width=10.0,
        mean_speed=20.0, config=scale.config(),
    )
    b = a.with_(mechanism="view-sync")
    comparison = compare_specs(a, b, repetitions=4, base_seed=123)
    print(comparison.summary())
    print()

    print("=== Custom probe: isolated nodes over time (RNG baseline) ===")
    world = build_world(a, seed=5)
    observers = ObserverSet(world)
    observers.add(
        "isolated", lambda w: int((w.snapshot().logical_degrees() == 0).sum())
    )
    observers.start(first_at=2.0, interval=1.0)
    world.run_until(scale.duration)
    series = observers.series("isolated")
    print("  t(s)  isolated-nodes")
    for obs in series:
        print(f"  {obs.time:4.1f}  {'#' * int(obs.value)} {obs.value}")


if __name__ == "__main__":
    main()
