#!/usr/bin/env python3
"""Area-monitoring scenario: pick a protocol + mechanism for a sensor field.

The paper's introduction motivates topology control with cooperative global
tasks such as area monitoring and data gathering.  This example plays that
scenario out: a dense field of battery-powered sensors, a few mobile data
collectors (the mobility), and a periodic field-wide alarm flood that must
reach everyone.  We compare candidate stacks on the two axes that matter
for this deployment: alarm coverage (connectivity) and mean transmission
range (the battery-life proxy), then apply Theorem 5 to size the buffer
for a target speed.

Run:  python examples/sensor_field_monitoring.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import ExperimentSpec, ScenarioConfig, run_once
from repro.core.buffer_zone import buffer_width, max_delay_bound
from repro.mobility.base import Area

CONFIG = ScenarioConfig(
    n_nodes=60,
    area=Area(700.0, 700.0),
    normal_range=250.0,
    duration=15.0,
    warmup=2.0,
    sample_rate=2.0,
)

COLLECTOR_SPEED = 10.0  # m/s — mobile collectors among mostly-static sensors


def theorem5_width(speed: float) -> float:
    """Worst-case-safe buffer for the baseline Hello regime at *speed*."""
    delay = max_delay_bound("baseline", CONFIG.max_hello_interval)
    return buffer_width(max_speed=2.0 * speed, max_delay=delay)


def main() -> None:
    safe = theorem5_width(COLLECTOR_SPEED)
    print(f"Theorem 5 worst-case buffer for {COLLECTOR_SPEED:g} m/s: {safe:.0f} m")
    print("(the sweep below shows how much of that is really needed)\n")

    candidates = [
        # (label, spec) — realistic design alternatives for the deployment.
        ("LMST, no mobility mgmt", ExperimentSpec(
            protocol="mst", mean_speed=COLLECTOR_SPEED, config=CONFIG)),
        ("LMST + VS + 25% Thm-5 buffer", ExperimentSpec(
            protocol="mst", mechanism="view-sync",
            buffer_width=0.25 * safe, mean_speed=COLLECTOR_SPEED, config=CONFIG)),
        ("RNG + VS + 25% Thm-5 buffer", ExperimentSpec(
            protocol="rng", mechanism="view-sync",
            buffer_width=0.25 * safe, mean_speed=COLLECTOR_SPEED, config=CONFIG)),
        ("RNG + weak consistency (k=3)", ExperimentSpec(
            protocol="rng", mechanism="weak",
            buffer_width=0.25 * safe, mean_speed=COLLECTOR_SPEED, config=CONFIG)),
        ("SPT-2 + PN forwarding", ExperimentSpec(
            protocol="spt2", physical_neighbor_mode=True,
            buffer_width=0.25 * safe, mean_speed=COLLECTOR_SPEED, config=CONFIG)),
        ("K-Neigh (k=9) reference", ExperimentSpec(
            protocol="kneigh", protocol_kwargs={"k": 9},
            mean_speed=COLLECTOR_SPEED, config=CONFIG)),
    ]

    rows = []
    for label, spec in candidates:
        result = run_once(spec, seed=7)
        rows.append({
            "stack": label,
            "alarm_coverage": result.connectivity_ratio,
            "tx_range_m": result.mean_transmission_range,
            "degree": result.mean_logical_degree,
            "hello_msgs": result.stats.hello_messages,
        })

    print(format_table(rows, title="Sensor-field candidate stacks"))
    print()
    best = max(rows, key=lambda r: (r["alarm_coverage"], -r["tx_range_m"]))
    print(f"Pick for this deployment: {best['stack']}")
    print("Rationale: highest alarm coverage first, then lowest radio range —")
    print("exactly the trade-off space Figs. 7-10 of the paper map out.")


if __name__ == "__main__":
    main()
