#!/usr/bin/env python3
"""Does Theorem 5's buffer survive a stochastic radio?

Theorem 5 sizes the buffer zone as ``l = 2 Δ'' v_max`` — twice the worst
information age times the worst speed — so that every logical link a
node selected is still covered by its extended range when packets
actually fly.  The proof is geometric: it assumes the unit disk, where
"covered" and "deliverable" coincide.

This study re-asks the question under the propagation seam
(:mod:`repro.sim.propagation`):

- ``unit-disk`` — the paper's channel, the control group;
- ``log-distance`` (sigma 6 dB) — deterministic per-pair shadowing:
  geometry is distorted but frozen, so the theorem's *staleness*
  argument should still hold link by link;
- ``sinr`` — per-message reception draws: a neighbor's Hello can
  silently miss a generation, so information age is no longer bounded
  by the Hello interval alone.  The Theorem-5 oracle widens its
  allowance by ``2 v_max * max_hello_interval`` for exactly this case
  (:func:`repro.faults.oracles.theorem5_slack`).

For each model x buffer width we run a mobile scenario and measure, at
every sample instant, the worst *coverage gap* — ``max over logical
links (u, v) of d(u, v) - extended_range(u)`` — plus the fraction of
instants with any uncovered link and the flood delivery ratio.

The punchline (see the run's closing notes): the coverage gap is
governed by kinematics under every radio — shadowing can push it higher
(stretched links get *selected*), but ``l`` still bounds it.  What
stochastic range breaks is the other half of the theorem's promise:
covered no longer implies deliverable.

Run:  PYTHONPATH=src python examples/buffer_zone_stochastic.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.core.buffer_zone import buffer_width
from repro.sim.config import ScenarioConfig
from repro.sim.flood import flood
from repro.mobility.base import Area

MODELS = (
    ("unit-disk", {}),
    ("log-distance", {"sigma_db": 6.0}),
    ("sinr", {}),
)


def coverage_gap(world) -> float:
    """Worst uncovered logical-link length at the current instant (m)."""
    snap = world.snapshot()
    worst = -np.inf
    for node in world.nodes:
        decision = node.decision
        if decision is None:
            continue
        for v in decision.logical_neighbors:
            gap = snap.pair_distance(node.node_id, v) - snap.extended_ranges[
                node.node_id
            ]
            worst = max(worst, gap)
    return worst


def run_point(
    model: str,
    params: dict,
    buffer: float,
    n_nodes: int,
    duration: float,
    seed: int,
    speed: float,
) -> dict:
    side = 90.0 * float(np.sqrt(n_nodes))
    cfg = ScenarioConfig(
        n_nodes=n_nodes,
        area=Area(side, side),
        duration=duration,
        warmup=2.0,
        sample_rate=2.0,
        propagation=model,
        propagation_params=params,
    )
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="view-sync",
        buffer_width=buffer,
        mean_speed=speed,
        config=cfg,
    )
    world = build_world(spec, seed)
    gaps, ratios = [], []
    for t in np.arange(cfg.warmup, cfg.duration + 1e-9, 1.0 / cfg.sample_rate):
        world.run_until(float(t))
        gaps.append(coverage_gap(world))
        ratios.append(flood(world, 0).delivery_ratio)
    gaps_arr = np.asarray(gaps)
    return {
        "worst_gap": float(gaps_arr.max()),
        "violation_fraction": float(np.mean(gaps_arr > 0.0)),
        "delivery": float(np.mean(ratios)),
        "propagation_losses": world.channel.stats.propagation_losses,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    n_nodes = 25 if args.quick else 40
    duration = 8.0 if args.quick else 14.0
    speed = 20.0
    cfg_probe = ScenarioConfig(n_nodes=n_nodes, duration=duration)
    # Theorem-5 sizing: Δ'' = one Hello generation of information age,
    # v_max = the waypoint speed ceiling (paper §5.2: twice the mean).
    v_max = 2.0 * speed
    l_t5 = buffer_width(max_speed=v_max, max_delay=cfg_probe.max_hello_interval)
    # Stochastic widening: one extra missed Hello generation of drift.
    l_wide = l_t5 + 2.0 * v_max * cfg_probe.max_hello_interval
    buffers = [0.0, 0.25 * l_t5, 0.5 * l_t5, l_t5, l_wide]

    print(__doc__.splitlines()[0])
    print(
        f"\nn={n_nodes}, speed={speed} m/s, duration={duration}s; "
        f"Theorem-5 buffer l={l_t5:.0f} m, widened l'={l_wide:.0f} m\n"
    )
    header = (
        f"{'model':<14} {'buffer':>8}   {'worst gap':>10} "
        f"{'violations':>11} {'delivery':>9} {'prop.drops':>11}"
    )
    print(header)
    print("-" * len(header))
    for model, params in MODELS:
        for buffer in buffers:
            row = run_point(
                model, params, buffer, n_nodes, duration, args.seed, speed
            )
            print(
                f"{model:<14} {buffer:>7.0f}m   {row['worst_gap']:>9.1f}m "
                f"{row['violation_fraction']:>10.0%} {row['delivery']:>9.2f} "
                f"{row['propagation_losses']:>11}"
            )
        print()

    print("Reading the table:")
    print(
        "- The worst coverage gap is kinematic (view age x node speed)\n"
        "  under every radio: unit-disk and sinr trace the same curve,\n"
        "  and log-distance only shifts it by selecting shadow-stretched\n"
        "  links.  Theorem 5's l = 2 Δ'' v_max still bounds it — the\n"
        "  violation fraction reaches 0 by width l under all three\n"
        "  models.\n"
        "- What stochastic range breaks is the theorem's other half:\n"
        "  'covered' no longer implies 'deliverable'.  At widths where\n"
        "  the deterministic radios already deliver everything, shadowed\n"
        "  (log-distance) and drawn (sinr) links still fail — the buffer\n"
        "  has to additionally absorb the range stretch / reception odds\n"
        "  before delivery catches up with coverage, and with sinr each\n"
        "  individual message can still miss at any width (flood\n"
        "  redundancy is what closes the gap here, not geometry).  That\n"
        "  is why the verification oracle widens its slack by\n"
        "  2 v_max Δ'' for stochastic models (theorem5_slack) instead of\n"
        "  trusting geometric coverage alone."
    )


if __name__ == "__main__":
    main()
