#!/usr/bin/env python3
"""Anatomy of a partition: the paper's Fig. 2 scenario, step by step.

No experiment harness here — this example builds Hello messages and local
views by hand to show *why* mobility breaks localized topology control,
then applies each of the paper's remedies to the same three-node scenario:

1. inconsistent views -> both links to the mobile node removed (partition);
2. strong consistency (same Hello version everywhere) -> connected;
3. weak consistency (two retained Hellos + enhanced conditions) -> connected;
4. Theorem 5's buffer zone -> the surviving links stay *effective*.

Run:  python examples/consistency_anatomy.py
"""

from __future__ import annotations

from repro.core.buffer_zone import BufferZonePolicy, buffer_width
from repro.core.costs import DistanceCost
from repro.core.views import Hello, LocalView, MultiVersionView, views_consistent
from repro.protocols import MstProtocol

U, V, W = 0, 1, 2
RANGE = 20.0
PROTO = MstProtocol()


def hello(node: int, pos: tuple[float, float], version: int, t: float) -> Hello:
    return Hello(sender=node, version=version, position=pos, sent_at=t, timestamp=t)


# The scenario: u and v are parked; w drives past and advertises twice.
U_POS, V_POS = (0.0, 0.0), (5.0, 0.0)
W_AT_T0 = (8.5, 2.6)   # close to v, far from u
W_AT_T1 = (-3.4, 2.1)  # close to u, far from v

u_hello = hello(U, U_POS, 1, 0.0)
v_hello = hello(V, V_POS, 1, 0.0)
w_old = hello(W, W_AT_T0, 1, 0.0)
w_new = hello(W, W_AT_T1, 2, 1.0)


def show(label: str, u_sel: frozenset, v_sel: frozenset) -> None:
    def fmt(owner: str, sel: frozenset) -> str:
        names = {U: "u", V: "v", W: "w"}
        return f"{owner} keeps {{{', '.join(sorted(names[n] for n in sel)) or '∅'}}}"

    w_connected = W in u_sel or W in v_sel
    verdict = "CONNECTED" if w_connected else "PARTITIONED (w unreachable!)"
    print(f"{label:46s} {fmt('u', u_sel):18s} {fmt('v', v_sel):18s} -> {verdict}")


def main() -> None:
    print(__doc__.splitlines()[0])
    print()

    # --- 1. the failure: u decided before w's second Hello, v after -----
    u_view = LocalView(U, u_hello, {V: v_hello, W: w_old}, RANGE, 0.5)
    v_view = LocalView(V, v_hello, {U: u_hello, W: w_new}, RANGE, 1.5)
    print(f"views consistent? {views_consistent([u_view, v_view])}")
    show(
        "1. asynchronous views (the bug):",
        PROTO.select(u_view).logical_neighbors,
        PROTO.select(v_view).logical_neighbors,
    )

    # --- 2. strong consistency: force one version of w everywhere -------
    u_view_s = LocalView(U, u_hello, {V: v_hello, W: w_old}, RANGE, 0.5)
    v_view_s = LocalView(V, v_hello, {U: u_hello, W: w_old}, RANGE, 1.5)
    assert views_consistent([u_view_s, v_view_s])
    show(
        "2. strong consistency (same version):",
        PROTO.select(u_view_s).logical_neighbors,
        PROTO.select(v_view_s).logical_neighbors,
    )

    # --- 3. weak consistency: v keeps BOTH of w's Hellos -----------------
    u_multi = MultiVersionView(
        U, [u_hello], {V: [v_hello], W: [w_old]}, RANGE, 0.5
    )
    v_multi = MultiVersionView(
        V, [v_hello], {U: [u_hello], W: [w_old, w_new]}, RANGE, 1.5
    )
    show(
        "3. weak consistency (enhanced conditions):",
        PROTO.select_conservative(u_multi).logical_neighbors,
        PROTO.select_conservative(v_multi).logical_neighbors,
    )

    # --- 4. buffer zone: keep the kept links effective -------------------
    # w keeps moving after v's decision; Theorem 5 sizes the margin.
    speed, info_age = 5.0, 1.0
    width = buffer_width(max_speed=speed, max_delay=info_age)
    policy = BufferZonePolicy(width=width)
    decision = PROTO.select_conservative(v_multi)
    extended = policy.extended_range(decision.actual_range)
    print()
    print(f"4. buffer zone: v's actual range {decision.actual_range:.2f} m")
    print(f"   + l = 2 * {info_age:g}s * {speed:g}m/s = {width:g} m")
    print(f"   => extended range {extended:.2f} m keeps link (v,w) effective")
    print(f"      while w moves up to {speed * info_age:g} m before the next Hello.")

    # The cost model is explicit everywhere:
    cost = DistanceCost()
    print()
    print(f"(link costs use {cost.name}; SPT protocols would use energy d^alpha)")


if __name__ == "__main__":
    main()
