#!/usr/bin/env python3
"""Quickstart: make one topology control protocol mobility-sensitive.

Runs the RNG-based protocol three ways on the same mobile scenario —
mobility-insensitive baseline, buffer zone only, and the full
mobility-sensitive stack (view synchronization + buffer zone) — and prints
what each buys in connectivity and what it costs in transmission range.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import ExperimentSpec, ScenarioConfig, run_once
from repro.mobility.base import Area

# A small scenario at the paper's node density (one node per 8100 m^2)
# so the example finishes in seconds.
CONFIG = ScenarioConfig(
    n_nodes=50,
    area=Area(636.0, 636.0),
    normal_range=250.0,
    duration=15.0,
    warmup=2.0,
    sample_rate=2.0,
)

SPEED = 20.0  # m/s — the paper's "driving speed" mobility level


def main() -> None:
    configurations = [
        ("mobility-insensitive baseline", ExperimentSpec(
            protocol="rng", mechanism="baseline", buffer_width=0.0,
            mean_speed=SPEED, config=CONFIG)),
        ("buffer zone only (30 m)", ExperimentSpec(
            protocol="rng", mechanism="baseline", buffer_width=30.0,
            mean_speed=SPEED, config=CONFIG)),
        ("view sync + buffer (30 m)", ExperimentSpec(
            protocol="rng", mechanism="view-sync", buffer_width=30.0,
            mean_speed=SPEED, config=CONFIG)),
        ("no topology control", ExperimentSpec(
            protocol="none", mechanism="baseline", buffer_width=0.0,
            mean_speed=SPEED, config=CONFIG)),
    ]

    rows = []
    for label, spec in configurations:
        result = run_once(spec, seed=42)
        rows.append({
            "configuration": label,
            "connectivity": result.connectivity_ratio,
            "tx_range_m": result.mean_transmission_range,
            "logical_degree": result.mean_logical_degree,
        })

    print(format_table(
        rows,
        title=f"RNG-based topology control at {SPEED:g} m/s "
              f"({CONFIG.n_nodes} nodes, {CONFIG.duration:g} s)",
    ))
    print()
    print("Reading the table:")
    print(" - the baseline partitions (low connectivity) despite its short range;")
    print(" - a buffer zone trades a little range for a lot of connectivity;")
    print(" - view synchronization fixes the *logical* topology on top, at zero")
    print("   extra range cost — that combination is the paper's contribution;")
    print(" - 'none' shows what topology control saves: ~2-3x range, ~6x degree.")


if __name__ == "__main__":
    main()
