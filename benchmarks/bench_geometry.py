"""Geometry-kernel benchmark: loop reference vs. vectorized implementations.

Times the proximity-graph constructions (unit disk, RNG, Gabriel, Yao) at
n in {100, 500, 1000} against the loop oracles preserved in
:mod:`repro.geometry._reference`, asserts the outputs stay bit-identical,
and writes ``BENCH_geometry.json`` (median ns/op per kernel plus speedups)
at the repository root for regression tracking.

The ``unit_disk_r250`` kernel is near-flat in the loop-vs-vectorized
comparison (both sides are dominated by the same ``(n, n)`` distance
work), so the representative unit-disk measurement is the *scale* section
instead: dense matrix vs grid-accelerated dense vs sparse CSR at
n in {2000, 5000, 10000} under the paper's constant density
(8100 m^2/node), where the three differ asymptotically — O(n^2) memory
for both dense forms, O(n * degree) for CSR — plus the dirty-region
incremental rebuild with 1% of nodes moving per generation.

Run explicitly — it is not part of tier-1:

    PYTHONPATH=src python benchmarks/bench_geometry.py
    PYTHONPATH=src python -m pytest benchmarks/bench_geometry.py -m geometry_bench
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.geometry._reference import (
    gabriel_graph_loop,
    relative_neighborhood_graph_loop,
    unit_disk_graph_loop,
    yao_graph_loop,
)
from repro.geometry.grid import GraphBackend
from repro.geometry.graphs import (
    gabriel_graph,
    relative_neighborhood_graph,
    unit_disk_graph,
    yao_graph,
)
from repro.geometry.sparse import IncrementalNeighborhoods, neighborhood_csr

pytestmark = pytest.mark.geometry_bench

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_geometry.json"

SIZES = (100, 500, 1000)
AREA = 1000.0
RADIUS = 250.0
YAO_K = 6

# The unrestricted (radius=None) rows are the canonical kernel benchmark —
# every pair is a candidate and every point a witness, so loop and
# vectorized versions do identical logical work.  The ``*_r250`` rows show
# the radius-restricted setting the protocols actually run in, where the
# loop baseline skips out-of-range pairs and the margin is smaller.
KERNELS = {
    "unit_disk_r250": (
        lambda pts: unit_disk_graph_loop(pts, RADIUS),
        lambda pts: unit_disk_graph(pts, RADIUS),
    ),
    "rng": (
        lambda pts: relative_neighborhood_graph_loop(pts, None),
        lambda pts: relative_neighborhood_graph(pts, None),
    ),
    "gabriel": (
        lambda pts: gabriel_graph_loop(pts, None),
        lambda pts: gabriel_graph(pts, None),
    ),
    "yao": (
        lambda pts: yao_graph_loop(pts, YAO_K, None),
        lambda pts: yao_graph(pts, YAO_K, None),
    ),
    "rng_r250": (
        lambda pts: relative_neighborhood_graph_loop(pts, RADIUS),
        lambda pts: relative_neighborhood_graph(pts, RADIUS),
    ),
    "gabriel_r250": (
        lambda pts: gabriel_graph_loop(pts, RADIUS),
        lambda pts: gabriel_graph(pts, RADIUS),
    ),
    "yao_r250": (
        lambda pts: yao_graph_loop(pts, YAO_K, RADIUS),
        lambda pts: yao_graph(pts, YAO_K, RADIUS),
    ),
}


def _median_ns(fn, pts, budget_s: float = 2.0, min_reps: int = 3) -> float:
    """Median wall time of ``fn(pts)`` in nanoseconds.

    One warmup call sizes the repetition count so slow loop baselines do
    not blow the wall-clock budget while fast kernels still get enough
    repetitions for a stable median.
    """
    start = time.perf_counter()
    fn(pts)
    est = time.perf_counter() - start
    reps = max(min_reps, min(50, int(budget_s / max(est, 1e-9))))
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(pts)
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples) * 1e9)


SCALE_SIZES = (2000, 5000, 10000)
#: Paper deployment density: 8100 m^2 per node (500 nodes in 1500 x 2700).
SCALE_AREA_PER_NODE = 8100.0


def _scale_points(n: int) -> np.ndarray:
    side = np.sqrt(SCALE_AREA_PER_NODE * n)
    return np.random.default_rng(n).random((n, 2)) * side


def run_scale_benchmark() -> dict:
    """Dense vs grid vs sparse unit-disk construction at large n."""
    results: dict[str, dict[str, float]] = {}
    for n in SCALE_SIZES:
        pts = _scale_points(n)
        dense_fn = lambda p: GraphBackend(p, mode="dense").unit_disk(RADIUS)
        grid_fn = lambda p: GraphBackend(p, mode="grid").unit_disk(RADIUS)
        sparse_fn = lambda p: neighborhood_csr(p, RADIUS, mode="grid")
        # bit-identity before timing: the CSR edge set densifies to the
        # same adjacency both dense paths produce
        dense_adj = dense_fn(pts)
        assert np.array_equal(grid_fn(pts), dense_adj)
        assert np.array_equal(sparse_fn(pts).to_dense(), dense_adj)
        del dense_adj
        # incremental generation: 1% of nodes take a 10 m step
        builder = IncrementalNeighborhoods()
        builder.csr(pts, RADIUS)
        rng = np.random.default_rng(n + 1)
        moved = pts.copy()
        movers = rng.choice(n, size=max(1, n // 100), replace=False)
        moved[movers] += rng.uniform(-10.0, 10.0, size=(movers.size, 2))

        def incremental_fn(p, _b=builder, _prev=pts, _next=moved):
            # alternate between the two generations so every call does a
            # real dirty-region splice rather than a no-movement reuse
            _b.csr(_prev, RADIUS)
            return _b.csr(_next, RADIUS)

        budget = 1.0 if n >= 10000 else 2.0
        dense_ns = _median_ns(dense_fn, pts, budget_s=budget)
        grid_ns = _median_ns(grid_fn, pts, budget_s=budget)
        sparse_ns = _median_ns(sparse_fn, pts, budget_s=budget)
        incremental_ns = _median_ns(incremental_fn, pts, budget_s=budget) / 2.0
        results[str(n)] = {
            "dense_ns": round(dense_ns),
            "grid_ns": round(grid_ns),
            "sparse_csr_ns": round(sparse_ns),
            "sparse_incremental_ns": round(incremental_ns),
            "speedup_dense_over_sparse": round(dense_ns / sparse_ns, 2),
            "dense_matrix_mb": round(n * n * 8 / 1e6, 1),
        }
        print(
            f"unit_disk_scale n={n:<6} dense={dense_ns / 1e6:9.2f} ms   "
            f"grid={grid_ns / 1e6:8.2f} ms   csr={sparse_ns / 1e6:8.2f} ms   "
            f"incr={incremental_ns / 1e6:8.2f} ms   "
            f"{dense_ns / sparse_ns:6.1f}x"
        )
    return results


def run_benchmark() -> dict:
    results: dict[str, dict[str, dict[str, float]]] = {}
    for name, (loop_fn, vec_fn) in KERNELS.items():
        results[name] = {}
        for n in SIZES:
            pts = np.random.default_rng(n).random((n, 2)) * AREA
            want, got = loop_fn(pts), vec_fn(pts)
            if not np.array_equal(want, got):
                raise AssertionError(f"{name} diverges from loop oracle at n={n}")
            loop_ns = _median_ns(loop_fn, pts)
            vec_ns = _median_ns(vec_fn, pts)
            results[name][str(n)] = {
                "loop_ns": round(loop_ns),
                "vectorized_ns": round(vec_ns),
                "speedup": round(loop_ns / vec_ns, 2),
            }
            print(
                f"{name:>10} n={n:<5} loop={loop_ns / 1e6:9.2f} ms   "
                f"vec={vec_ns / 1e6:8.2f} ms   {loop_ns / vec_ns:6.1f}x"
            )
    return {
        "meta": {
            "unit": "ns/op (median)",
            "area": AREA,
            "restricted_radius": RADIUS,
            "yao_k": YAO_K,
            "sizes": list(SIZES),
            "scale_sizes": list(SCALE_SIZES),
            "scale_area_per_node": SCALE_AREA_PER_NODE,
        },
        "results": results,
        "unit_disk_scale": run_scale_benchmark(),
    }


def test_geometry_kernels_bench():
    payload = run_benchmark()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT}")
    # The vectorized witness kernels must hold a 10x margin over the loop
    # baseline at n=500 (the paper's largest network scale).
    for kernel in ("rng", "gabriel"):
        assert payload["results"][kernel]["500"]["speedup"] >= 10.0
    # At 10k nodes the sparse build must beat materializing the matrix.
    assert payload["unit_disk_scale"]["10000"]["speedup_dense_over_sparse"] >= 2.0


if __name__ == "__main__":
    test_geometry_kernels_bench()
