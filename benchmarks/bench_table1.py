"""Table 1: average transmission range and logical degree of baselines.

Paper (Section 5.2, Table 1): MST smallest on both metrics (degree 2.09,
near-tree); SPT-2 largest (100 m, 3.46); RNG and SPT-4 between; all far
below the uncontrolled 250 m / degree-18 reference.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.paper_reference import TABLE1_PAPER
from repro.analysis.tables import generate_table1


def test_table1(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        generate_table1, args=(bench_scale,), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table1", result.format())

    # Shape assertions — the paper's orderings.
    assert result.ordering_by_degree() == ["mst", "rng", "spt4", "spt2"]
    by_range = result.ordering_by_range()
    assert by_range[0] == "mst" and by_range[-1] == "spt2"

    # Savings against the uncontrolled reference.
    none_range = result.results["none"].transmission_range.mean
    none_degree = result.results["none"].logical_degree.mean
    for name in ("mst", "rng", "spt4", "spt2"):
        agg = result.results[name]
        assert agg.transmission_range.mean < 0.75 * none_range
        assert agg.logical_degree.mean < 0.5 * none_degree

    # MST is near-tree: degree close to 2(n-1)/n (paper: 2.09).
    mst_degree = result.results["mst"].logical_degree.mean
    paper = TABLE1_PAPER["mst"].degree
    assert abs(mst_degree - paper) < 0.5
