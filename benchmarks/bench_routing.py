"""Mobility-tolerant vs mobility-assisted delivery (future-work bench).

The paper's conclusion proposes combining mobility-tolerant management
(this repo's main subject: instant delivery over a maintained effective
topology) with mobility-assisted management (store-and-relay: delayed but
eventual delivery).  This bench puts the two on one axis: instantaneous
delivery ratio of the topology-controlled flood versus delivery ratio and
delay of epidemic / two-hop relaying on the *same* mobility traces.
"""

from __future__ import annotations

import math

import numpy as np

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec, build_mobility, run_once
from repro.analysis.report import format_table
from repro.routing import ContactProcessConfig, EpidemicRouting, TwoHopRelayRouting
from repro.util.randomness import SeedSequenceFactory


def test_tolerant_vs_assisted(benchmark, bench_scale, results_dir):
    cfg = bench_scale.config(duration=max(30.0, bench_scale.duration))
    speed = 20.0

    def measure():
        # Mobility-tolerant: RNG + view sync + buffer; instant delivery.
        tolerant_spec = ExperimentSpec(
            protocol="rng", mechanism="view-sync", buffer_width=30.0,
            mean_speed=speed, config=cfg,
        )
        tolerant = run_once(tolerant_spec, seed=7000)

        # Mobility-assisted on the same mobility process.
        mob_spec = ExperimentSpec(mean_speed=speed, config=cfg)
        seeds = SeedSequenceFactory(7000)
        mobility = build_mobility(mob_spec, seeds.rng("mobility"))
        contact = ContactProcessConfig(
            contact_range=cfg.normal_range, step=0.5, deadline=cfg.duration
        )
        rng = np.random.default_rng(7000)
        pairs = [
            tuple(rng.choice(cfg.n_nodes, size=2, replace=False))
            for _ in range(6)
        ]
        rows = []
        for scheme_name, scheme in (
            ("epidemic", EpidemicRouting(mobility, contact)),
            ("two-hop", TwoHopRelayRouting(mobility, contact)),
        ):
            outcomes = [scheme.deliver(int(s), int(d)) for s, d in pairs]
            delivered = [o for o in outcomes if o.delivered]
            rows.append(
                {
                    "scheme": scheme_name,
                    "delivery_ratio": len(delivered) / len(outcomes),
                    "mean_delay_s": (
                        float(np.mean([o.delay for o in delivered]))
                        if delivered
                        else math.inf
                    ),
                    "mean_copies": float(np.mean([o.copies for o in outcomes])),
                }
            )
        rows.insert(
            0,
            {
                "scheme": "topology-control (instant)",
                "delivery_ratio": tolerant.connectivity_ratio,
                "mean_delay_s": 0.0,
                "mean_copies": 1.0,
            },
        )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "routing_comparison",
        format_table(
            rows,
            title="Mobility-tolerant vs mobility-assisted delivery (20 m/s)",
        ),
    )
    by_name = {r["scheme"]: r for r in rows}
    # Epidemic eventually delivers at least as often as the instantaneous
    # snapshot flood (it has the whole run to do it).
    assert (
        by_name["epidemic"]["delivery_ratio"]
        >= by_name["topology-control (instant)"]["delivery_ratio"] - 0.15
    )
    # ...but pays in delay and copies.
    assert by_name["epidemic"]["mean_delay_s"] >= 0.0
    assert by_name["epidemic"]["mean_copies"] > 1.0
    # Two-hop bounds its copies below epidemic's.
    assert by_name["two-hop"]["mean_copies"] <= by_name["epidemic"]["mean_copies"] + 1e-9
