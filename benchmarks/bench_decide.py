"""Decision-pipeline benchmark: fingerprint cache and the RNG batch kernel.

Measures the incremental decision pipeline introduced with the
view-fingerprint cache (see ``docs/PERFORMANCE.md``):

- ``redecide_all`` at the paper's scale (100 nodes) under view
  synchronization, cache on vs cache off — packet-time recomputation with
  an unchanged view must collapse to cache hits;
- the batched :func:`~repro.core.framework.rng_removable_batch` kernel vs
  one :func:`~repro.core.framework.rng_removable` scan per link;
- the sparse-first snapshot -> decide -> flood pipeline at
  n in {2000, 5000, 10000} (paper density, proactive mechanism), where
  snapshots are CSR-backed and no ``(n, n)`` matrix is ever built.

Outputs are asserted bit-identical between the compared variants before
any timing, and ``BENCH_decide.json`` (median ns/op plus speedups) is
written at the repository root for regression tracking.

Run explicitly — it is not part of tier-1:

    PYTHONPATH=src python benchmarks/bench_decide.py [--smoke]
    PYTHONPATH=src python -m pytest benchmarks/bench_decide.py -m decide_bench
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.analysis.scales import Scale
from repro.core.framework import LocalCostGraph, rng_removable, rng_removable_batch

pytestmark = pytest.mark.decide_bench

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_decide.json"

#: paper density: 8100 m^2 per node => side = 90 * sqrt(n)
def _side(n: int) -> float:
    return 90.0 * float(np.sqrt(n))


def _median_ns(fn, budget_s: float = 2.0, min_reps: int = 5) -> float:
    """Median wall time of ``fn()`` in nanoseconds (self-sizing reps)."""
    start = time.perf_counter()
    fn()
    est = time.perf_counter() - start
    reps = max(min_reps, min(200, int(budget_s / max(est, 1e-9))))
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples) * 1e9)


def _decisions(world) -> list:
    return [
        (
            node.node_id,
            None
            if node.decision is None
            else (
                node.decision.logical_neighbors,
                node.decision.actual_range,
                node.decision.extended_range,
            ),
        )
        for node in world.nodes
    ]


def bench_redecide(n: int, seed: int = 7, warm_t: float = 3.0) -> dict:
    """Time ``redecide_all`` cache-on vs cache-off at *n* nodes, view-sync."""
    scale = Scale(
        name="bench",
        n_nodes=n,
        area_side=_side(n),
        duration=warm_t + 2.0,
        sample_rate=1.0,
        repetitions=1,
    )
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="view-sync",
        mean_speed=20.0,
        config=scale.config(),
    )
    world_on = build_world(spec, seed)
    world_off = build_world(spec, seed)
    world_off.manager.decision_cache_enabled = False
    world_on.run_until(warm_t)
    world_off.run_until(warm_t)

    # Bit-identical decisions with the cache on and off, before any timing.
    world_on.redecide_all()
    world_off.redecide_all()
    if _decisions(world_on) != _decisions(world_off):
        raise AssertionError("decision cache changed redecide_all outputs")

    on_ns = _median_ns(world_on.redecide_all)
    off_ns = _median_ns(world_off.redecide_all)
    info = world_on.manager.cache_info()
    print(
        f"redecide_all n={n:<4} cache-off={off_ns / 1e6:8.2f} ms   "
        f"cache-on={on_ns / 1e6:8.2f} ms   {off_ns / on_ns:6.1f}x   "
        f"(hits={info['decision_cache_hits']}, "
        f"misses={info['decision_cache_misses']})"
    )
    return {
        "n": n,
        "cache_off_ns": round(off_ns),
        "cache_on_ns": round(on_ns),
        "speedup": round(off_ns / on_ns, 2),
        **info,
    }


def _random_cost_graph(m: int, seed: int) -> LocalCostGraph:
    rng = np.random.default_rng(seed)
    pts = rng.random((m, 2)) * 250.0
    diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    adj = dist <= 250.0
    np.fill_diagonal(adj, False)
    graph = LocalCostGraph(list(range(m)), adj, dist, dist, dist, dist)
    graph.rank_low  # pre-rank: both predicates share the cached rank matrices
    return graph


def bench_rng_kernel(m: int, seed: int = 11) -> dict:
    """Time the batched RNG condition vs one per-edge scan per link."""
    graph = _random_cost_graph(m, seed)

    def per_edge() -> dict[int, bool]:
        return {
            int(j): rng_removable(graph, 0, int(j))
            for j in np.flatnonzero(graph.adj[0])
        }

    want, got = per_edge(), rng_removable_batch(graph)
    if want != got:
        raise AssertionError(f"rng batch kernel diverges from per-edge at m={m}")
    edge_ns = _median_ns(per_edge, budget_s=1.0)
    batch_ns = _median_ns(lambda: rng_removable_batch(graph), budget_s=1.0)
    print(
        f"rng_kernel  m={m:<4} per-edge={edge_ns / 1e3:8.1f} us   "
        f"batch={batch_ns / 1e3:8.1f} us   {edge_ns / batch_ns:6.1f}x"
    )
    return {
        "m": m,
        "per_edge_ns": round(edge_ns),
        "batch_ns": round(batch_ns),
        "speedup": round(edge_ns / batch_ns, 2),
    }


def bench_hello_pipeline(
    n: int, seed: int = 7, warm_t: float = 3.0, propagation: str = "unit-disk"
) -> dict:
    """Warmup wall time of the batched Hello pipeline vs the scalar route.

    Both worlds run identical scenarios; their channel counters and
    per-node neighbor-table state are asserted identical before any
    timing is reported (the twin-world contract
    ``tests/test_property_hello_batch.py`` proves exhaustively, and
    ``tests/test_property_propagation.py`` extends to non-unit-disk
    models).  The ``log-distance`` rows track the model-filter overhead:
    superset-radius grid queries plus the keyed shadowing predicate on
    top of the historical distance filter.
    """
    scale = Scale(
        name="bench-hello",
        n_nodes=n,
        area_side=_side(n),
        duration=warm_t + 2.0,
        sample_rate=1.0,
        repetitions=1,
    )
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="proactive",
        mean_speed=20.0,
        config=scale.config(propagation=propagation),
    )

    def timed(pipeline: str):
        world = build_world(spec, seed, hello_pipeline=pipeline)
        t0 = time.perf_counter()
        world.run_until(warm_t)
        return world, time.perf_counter() - t0

    batched, batched_s = timed("batched")
    scalar, scalar_s = timed("scalar")
    if batched.channel.stats.as_dict() != scalar.channel.stats.as_dict():
        raise AssertionError(f"batched pipeline changed channel stats at n={n}")
    now = batched.engine.now
    for nb, ns in zip(batched.nodes, scalar.nodes):
        if nb.table.live_view_token(now)[1:] != ns.table.live_view_token(now)[1:]:
            raise AssertionError(f"batched pipeline changed table state at n={n}")
    oracle = batched.hello_pipeline_stats()
    print(
        f"hello_pipeline n={n:<5} [{propagation}] scalar={scalar_s:7.2f} s   "
        f"batched={batched_s:7.2f} s   {scalar_s / batched_s:6.1f}x   "
        f"(rebuilds={oracle['oracle_rebuilds']}, "
        f"queries={oracle['oracle_queries']}, "
        f"slots={oracle['neighbor_slots']})"
    )
    return {
        "n": n,
        "propagation": propagation,
        "scalar_warmup_s": round(scalar_s, 3),
        "batched_warmup_s": round(batched_s, 3),
        "speedup": round(scalar_s / batched_s, 2),
        **oracle,
    }


GOSSIP_SIZES = (100, 1000)


def bench_gossip(n: int, seed: int = 7, warm_t: float = 3.0) -> dict:
    """Warmup wall time and dissemination counters of the gossip mechanism.

    The same scenario runs under view synchronization as the control, so
    the row reads as "what the epidemic layer costs on top of an
    otherwise identical world".  The gossip world's determinism is
    asserted (two same-seed builds, identical counters) before timing.
    """
    scale = Scale(
        name="bench-gossip",
        n_nodes=n,
        area_side=_side(n),
        duration=warm_t + 2.0,
        sample_rate=1.0,
        repetitions=1,
    )
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="gossip",
        mean_speed=20.0,
        config=scale.config(),
    )

    def timed(s):
        world = build_world(s, seed)
        t0 = time.perf_counter()
        world.run_until(warm_t)
        return world, time.perf_counter() - t0

    gossip_world, gossip_s = timed(spec)
    twin, _ = timed(spec)
    if gossip_world.gossip_stats() != twin.gossip_stats():
        raise AssertionError(f"gossip counters not deterministic at n={n}")
    _, viewsync_s = timed(spec.with_(mechanism="view-sync"))
    stats = gossip_world.gossip_stats()
    print(
        f"gossip n={n:<5} view-sync={viewsync_s:7.2f} s   "
        f"gossip={gossip_s:7.2f} s   {gossip_s / viewsync_s:6.2f}x   "
        f"(rounds={stats['gossip_rounds']}, "
        f"messages={stats['gossip_messages']}, "
        f"merged={stats['gossip_merged']})"
    )
    return {
        "n": n,
        "viewsync_warmup_s": round(viewsync_s, 3),
        "gossip_warmup_s": round(gossip_s, 3),
        "overhead_factor": round(gossip_s / viewsync_s, 2),
        **stats,
    }


SCALE_SIZES = (2000, 5000, 10000)


def bench_scale_pipeline(n: int, seed: int = 7, warm_t: float = 3.0) -> dict:
    """Warm snapshot -> decide -> flood costs at large n, sparse-first.

    The world runs the proactive mechanism at the paper's density; above
    the sparse switch every snapshot is CSR-backed, so the whole pipeline
    is O(n * degree) per probe and the dense ``(n, n)`` path is never
    touched.
    """
    from repro.sim.flood import flood
    from repro.sim.world import SPARSE_SWITCH

    scale = Scale(
        name="bench-scale",
        n_nodes=n,
        area_side=_side(n),
        duration=warm_t + 2.0,
        sample_rate=1.0,
        repetitions=1,
    )
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="proactive",
        mean_speed=20.0,
        config=scale.config(),
    )
    t0 = time.perf_counter()
    world = build_world(spec, seed)
    world.run_until(warm_t)
    warm_s = time.perf_counter() - t0
    snap = world.snapshot()
    if n >= SPARSE_SWITCH and snap.prefers_dense:
        raise AssertionError(f"snapshot at n={n} should be sparse-first")
    snapshot_ns = _median_ns(world.snapshot, budget_s=1.0)
    world.redecide_all()  # prime the decision cache
    redecide_ns = _median_ns(world.redecide_all, budget_s=1.0)
    flood_ns = _median_ns(lambda: flood(world, 0), budget_s=2.0, min_reps=3)
    stats = world.neighbor_stats()
    print(
        f"scale_pipeline n={n:<6} warmup={warm_s:6.1f} s   "
        f"snapshot={snapshot_ns / 1e6:8.2f} ms   "
        f"redecide={redecide_ns / 1e6:8.2f} ms   "
        f"flood={flood_ns / 1e6:8.2f} ms"
    )
    return {
        "n": n,
        "warmup_s": round(warm_s, 2),
        "snapshot_ns": round(snapshot_ns),
        "redecide_cached_ns": round(redecide_ns),
        "flood_ns": round(flood_ns),
        **{f"neighbor_{k}": v for k, v in stats.items()},
    }


def run_benchmark(smoke: bool = False) -> dict:
    redecide_sizes = (25,) if smoke else (50, 100)
    kernel_sizes = (16,) if smoke else (25, 50, 100)
    scale_sizes = () if smoke else SCALE_SIZES
    # The smoke row still exercises the full batched pipeline (oracle,
    # columnar splice, coalesced delivery) and its identity assertions.
    hello_sizes = (300,) if smoke else (1000, 2000)
    # Model-filter overhead rows: same pipeline under log-distance
    # shadowing (superset query + keyed predicate).
    hello_model_sizes = (300,) if smoke else (1000,)
    # Gossip rows run at the paper scale and 10x even in smoke mode: the
    # overhead-vs-view-sync factor is the tracked number, and it only
    # means something at the sizes the figures report.
    gossip_sizes = GOSSIP_SIZES
    results = {
        "redecide_all": {str(n): bench_redecide(n) for n in redecide_sizes},
        "rng_kernel": {str(m): bench_rng_kernel(m) for m in kernel_sizes},
        "hello_pipeline": {str(n): bench_hello_pipeline(n) for n in hello_sizes},
        "hello_pipeline_log_distance": {
            str(n): bench_hello_pipeline(n, propagation="log-distance")
            for n in hello_model_sizes
        },
        "gossip": {str(n): bench_gossip(n) for n in gossip_sizes},
        "scale_pipeline": {str(n): bench_scale_pipeline(n) for n in scale_sizes},
    }
    return {
        "meta": {
            "unit": "ns/op (median)",
            "mechanism": "view-sync",
            "protocol": "rng",
            "smoke": smoke,
            "redecide_sizes": list(redecide_sizes),
            "kernel_sizes": list(kernel_sizes),
            "hello_sizes": list(hello_sizes),
            "hello_model_sizes": list(hello_model_sizes),
            "gossip_sizes": list(gossip_sizes),
            "scale_sizes": list(scale_sizes),
        },
        "results": results,
    }


def test_decide_bench():
    payload = run_benchmark()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT}")
    # Packet-time recomputation with an unchanged view must be dominated by
    # cache hits: >= 3x over the uncached pipeline at the paper's scale.
    assert payload["results"]["redecide_all"]["100"]["speedup"] >= 3.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no speedup thresholds (CI sanity run)",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_benchmark(smoke=True)
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {OUTPUT} (smoke)")
        return 0
    test_decide_bench()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
