"""Fig. 8: (a) average transmission range and (b) average physical
neighbor count versus buffer-zone width, at moderate mobility.

Paper: range grows with buffer width (RNG/SPT-4 exceed 160 m at 100 m
buffers; SPT-2 ~120 m at 10 m); physical-neighbor counts at the
moderate-mobility operating points land between 3.8 and 5.4 — below
K-Neigh's uniform optimum of 9.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.figures import generate_fig8


def test_fig8(benchmark, bench_scale, results_dir):
    fig8a, fig8b = benchmark.pedantic(
        generate_fig8, args=(bench_scale,), rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig8a", fig8a.format())
    save_and_print(results_dir, "fig8b", fig8b.format())

    def range_at(protocol, width):
        for p in fig8a.series_by_label(protocol).points:
            if p.x == width:
                return p.result.transmission_range.mean
        raise AssertionError("missing width")

    def pdeg_at(protocol, width):
        for p in fig8b.series_by_label(protocol).points:
            if p.x == width:
                return p.result.physical_degree.mean
        raise AssertionError("missing width")

    widths = sorted({p.x for p in fig8a.series[0].points})
    widest, narrowest = max(widths), min(widths)

    for protocol in ("mst", "rng", "spt4", "spt2"):
        # (a) Range grows with buffer width.
        assert range_at(protocol, widest) >= range_at(protocol, narrowest)
        # (b) So does the physical neighbor count.
        assert pdeg_at(protocol, widest) >= pdeg_at(protocol, narrowest)

    # MST has the smallest base range; SPT-2 the largest (Table 1 carries
    # over to the buffered curves at the narrow end).
    assert range_at("mst", narrowest) <= range_at("spt2", narrowest)

    # Redundancy comparison the paper highlights: physical degree at the
    # operating points stays below K-Neigh's 9.
    for protocol in ("mst", "rng", "spt4", "spt2"):
        assert pdeg_at(protocol, 30.0 if 30.0 in widths else narrowest) < 9.0
