"""Fig. 9: connectivity with view synchronization + buffer zones.

Paper: adding the lightweight view-synchronization mechanism to the same
buffer sweep solidly improves every protocol — RNG now tolerates moderate
mobility with a 10 m buffer (its 88 m mean range makes it the paper's
favourite); SPT-2 does with ~1 m; MST needs 100 m.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.figures import (
    generate_fig7,
    generate_fig9,
    minimal_tolerating_buffer,
)


def test_fig9(benchmark, bench_scale, results_dir):
    fig9 = benchmark.pedantic(
        generate_fig9, args=(bench_scale,), rounds=1, iterations=1
    )
    # Regenerate the baseline sweep with fig9's base seed so the
    # with/without-view-sync comparison is paired on identical worlds.
    fig7 = generate_fig7(bench_scale, base_seed=3900)

    lines = [fig9.format(), "", "minimal tolerating buffer with view sync:"]
    for protocol in ("mst", "rng", "spt4", "spt2"):
        width = minimal_tolerating_buffer(fig9, protocol)
        lines.append(f"  {protocol:5s}: {width if width is not None else 'not achieved'}")
    save_and_print(results_dir, "fig9", "\n".join(lines))

    speeds = [s for s in bench_scale.speeds if s <= 40.0]

    def mean_conn(fig, protocol, width):
        series = fig.series_by_label(f"{protocol}+buf{width:g}")
        pts = [p.result.connectivity.mean for p in series.points if p.x in speeds]
        return sum(pts) / len(pts)

    # View synchronization never hurts, and helps at least one protocol
    # materially at the mid buffer width.
    mid = sorted(bench_scale.buffer_widths)[len(bench_scale.buffer_widths) // 2]
    improvements = []
    for protocol in ("mst", "rng", "spt4", "spt2"):
        delta = mean_conn(fig9, protocol, mid) - mean_conn(fig7, protocol, mid)
        improvements.append(delta)
        assert delta >= -0.08, f"{protocol}: view sync materially hurt connectivity"
    assert max(improvements) > 0.02

    # With view sync, RNG should not need a wider buffer than baseline RNG.
    vs_rng = minimal_tolerating_buffer(fig9, "rng")
    base_rng = minimal_tolerating_buffer(fig7, "rng")
    if base_rng is not None:
        assert vs_rng is not None and vs_rng <= base_rng
