"""Speed-range equivalence bench (Section 5.1's scaling claim).

The paper extrapolates its high-speed sweep to dense short-range networks
via the mobility index ``v / R``.  This bench runs the grid and asserts:

1. within one mobility index, connectivity is similar across ranges
   (the equivalence);
2. across indices, connectivity strictly degrades (the index, not the raw
   speed, is what hurts).
"""

from __future__ import annotations

import numpy as np

from conftest import save_and_print
from repro.analysis.equivalence import generate_equivalence_study
from repro.analysis.report import format_table


def test_speed_range_equivalence(benchmark, bench_scale, results_dir):
    points = benchmark.pedantic(
        generate_equivalence_study, args=(bench_scale,), rounds=1, iterations=1
    )
    save_and_print(
        results_dir,
        "equivalence",
        format_table(
            [p.row() for p in points],
            title="Speed-range equivalence (constant v/R should mean constant connectivity)",
        ),
    )
    by_index: dict[float, list[float]] = {}
    for p in points:
        by_index.setdefault(p.mobility_index, []).append(p.connectivity)

    # 1. equal index => similar connectivity across ranges
    for index, values in by_index.items():
        spread = max(values) - min(values)
        assert spread < 0.35, (
            f"v/R = {index}: connectivity spread {spread:.2f} across ranges "
            "breaks the equivalence claim"
        )

    # 2. higher index => (weakly) lower mean connectivity
    indices = sorted(by_index)
    means = [float(np.mean(by_index[i])) for i in indices]
    assert all(b <= a + 0.05 for a, b in zip(means, means[1:])), (
        f"connectivity must degrade with the mobility index, got {means}"
    )
    # and the extremes differ materially
    assert means[0] > means[-1] + 0.1
