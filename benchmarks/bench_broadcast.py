"""Broadcast-overhead bench: flooding vs CDS forward sets.

Section 4.1 argues the reactive scheme is expensive because its initiation
is "a 'flooding' process instead of a broadcast process", where an
efficient broadcast "can be efficiently implemented by selecting a small
forward node set [34]".  This bench quantifies that gap on the paper's
snapshots: transmissions per broadcast for flooding (= n) versus the
Wu-Li/Dai-Wu CDS forward set, at full coverage.
"""

from __future__ import annotations

import numpy as np

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec, build_world
from repro.analysis.report import format_table
from repro.geometry.graphs import is_connected
from repro.sim.broadcast import cds_broadcast


def test_broadcast_overhead(benchmark, bench_scale, results_dir):
    cfg = bench_scale.config()
    spec = ExperimentSpec(protocol="none", mean_speed=10.0, config=cfg)

    def measure():
        rows = []
        for seed in range(bench_scale.repetitions):
            world = build_world(spec, seed=6000 + seed)
            world.run_until(cfg.warmup + 2.0)
            snap = world.snapshot()
            adj = snap.original_topology()
            if not is_connected(adj):
                continue
            n = adj.shape[0]
            outcome = cds_broadcast(adj, source=0)
            rows.append(
                {
                    "seed": 6000 + seed,
                    "nodes": n,
                    "flooding_tx": n,
                    "cds_tx": outcome.transmissions,
                    "cds_coverage": outcome.coverage,
                    "savings": 1.0 - outcome.transmissions / n,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "broadcast_overhead",
        format_table(rows, title="Broadcast overhead — flooding vs CDS forward set"),
    )
    assert rows, "no connected snapshot found"
    for row in rows:
        assert row["cds_coverage"] == 1.0  # CDS broadcast must still cover
        assert row["cds_tx"] < row["flooding_tx"]  # and cost less
    assert float(np.mean([r["savings"] for r in rows])) > 0.15
