"""AODV-over-maintained-topology bench: route discovery cost and survival.

Reactive routing exposes a different face of topology quality than floods:
every route discovery costs a network-wide RREQ, and every link break
costs a rediscovery.  A well-maintained topology should (1) deliver, and
(2) amortise — cached routes must survive between packets.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec, build_world
from repro.analysis.report import format_table
from repro.routing.aodv import AodvRouting


def test_aodv_over_maintained_topologies(benchmark, bench_scale, results_dir):
    cfg = bench_scale.config(duration=max(bench_scale.duration, 12.0))
    speed = 20.0

    def measure():
        rows = []
        for label, protocol, mechanism, buffer_width in [
            ("bare mst", "mst", "baseline", 0.0),
            ("managed mst", "mst", "view-sync", 50.0),
            ("managed gabriel", "gabriel", "view-sync", 50.0),
            ("no topology control", "none", "baseline", 0.0),
        ]:
            spec = ExperimentSpec(
                protocol=protocol, mechanism=mechanism, buffer_width=buffer_width,
                mean_speed=speed, config=cfg,
            )
            world = build_world(spec, seed=8800)
            world.run_until(cfg.warmup + 2.0)
            aodv = AodvRouting(world)
            pairs = [(i, cfg.n_nodes - 1 - i) for i in range(6)]
            for s, d in pairs:
                aodv.send(s, d)
            world.run_until(cfg.warmup + 4.0)
            # second wave: cached routes should cut discovery cost
            for s, d in pairs:
                aodv.send(s, d)
            world.run_until(cfg.duration)
            stats = aodv.stats()
            rows.append(
                {
                    "configuration": label,
                    "delivery": stats.delivery_ratio,
                    "mean_discoveries": stats.mean_discoveries,
                    "mean_rreq_tx": stats.mean_rreq_cost,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "aodv_study",
        format_table(rows, title=f"AODV reactive routing at {speed:g} m/s"),
    )
    by_label = {r["configuration"]: r for r in rows}
    # The uncontrolled network is the delivery ceiling.
    assert by_label["no topology control"]["delivery"] > 0.8
    # Management must not hurt, and should help the fragile MST topology.
    assert (
        by_label["managed mst"]["delivery"] >= by_label["bare mst"]["delivery"]
    )
    # Cached-route amortisation: on average well under one discovery per
    # packet for the healthy configurations.
    assert by_label["managed gabriel"]["mean_discoveries"] < 1.5
