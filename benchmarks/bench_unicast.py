"""Unicast-over-maintained-topology bench (the mobility-tolerant payoff).

Section 2.2's promise: with a connected effective topology "a normal
routing protocol can be used".  This bench routes GFG/GPSR unicast over
the topologies each configuration maintains and checks that the paper's
mechanisms translate into end-to-end delivery — and that topology control
pays a bounded hop-stretch price for its short links.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec
from repro.analysis.report import format_table
from repro.analysis.routing_study import run_unicast_study


def test_unicast_over_maintained_topologies(benchmark, bench_scale, results_dir):
    cfg = bench_scale.config()
    speed = 20.0

    def measure():
        rows = []
        for label, spec in [
            ("baseline (no mgmt)", ExperimentSpec(
                protocol="rng", mechanism="baseline", buffer_width=0.0,
                mean_speed=speed, config=cfg)),
            ("view-sync + 30m buffer", ExperimentSpec(
                protocol="rng", mechanism="view-sync", buffer_width=30.0,
                mean_speed=speed, config=cfg)),
            ("gabriel + view-sync + 30m", ExperimentSpec(
                protocol="gabriel", mechanism="view-sync", buffer_width=30.0,
                mean_speed=speed, config=cfg)),
            ("no topology control", ExperimentSpec(
                protocol="none", mechanism="baseline", buffer_width=0.0,
                mean_speed=speed, config=cfg)),
        ]:
            result = run_unicast_study(spec, seed=8000, n_snapshots=3,
                                       pairs_per_snapshot=8)
            row = result.row()
            row["configuration"] = label
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "unicast_study",
        format_table(rows, title=f"GFG/GPSR unicast at {speed:g} m/s"),
    )
    by_label = {r["configuration"]: r for r in rows}
    # The maintained topology must deliver at least as well as the
    # unmanaged one.
    assert (
        by_label["view-sync + 30m buffer"]["delivery"]
        >= by_label["baseline (no mgmt)"]["delivery"]
    )
    # The uncontrolled network routes well (it has every link).
    assert by_label["no topology control"]["delivery"] > 0.85
    # Unicast needs BIDIRECTIONAL effective links (ACKs), which is harder
    # than the paper's directed flood metric: sparse RNG selections go
    # asymmetric under mobility, while Gabriel's extra redundancy keeps
    # symmetric paths alive — the managed Gabriel stack must route well.
    assert by_label["gabriel + view-sync + 30m"]["delivery"] > 0.75
    assert (
        by_label["gabriel + view-sync + 30m"]["delivery"]
        >= by_label["view-sync + 30m buffer"]["delivery"]
    )
    # Hop stretch over the reduced topology is a real but bounded cost.
    stretch = by_label["gabriel + view-sync + 30m"]["hop_stretch"]
    assert 1.0 <= stretch < 8.0
