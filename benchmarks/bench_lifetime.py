"""Network-lifetime bench: energy savings as operational lifetime.

Table 1's range savings are the means; this bench checks the end — under a
fixed per-node budget, topology-controlled networks must burn less
data-plane energy per probe than the uncontrolled network, with the
protocol ordering of Table 1 (MST cheapest, none most expensive).
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec
from repro.analysis.lifetime_study import run_lifetime_study
from repro.analysis.report import format_table


def test_lifetime_ordering(benchmark, bench_scale, results_dir):
    cfg = bench_scale.config()

    def measure():
        rows = []
        for protocol in ("mst", "rng", "spt2", "none"):
            spec = ExperimentSpec(
                protocol=protocol, mechanism="view-sync", buffer_width=10.0,
                mean_speed=10.0, config=cfg,
            )
            result = run_lifetime_study(spec, budget=5e6, seed=8600)
            row = result.row()
            row["protocol"] = protocol
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "lifetime",
        format_table(rows, title="Per-probe data energy and lifetime by protocol"),
    )
    by_proto = {r["protocol"]: r for r in rows}
    # Energy-per-probe ordering follows the range ordering of Table 1.
    assert (
        by_proto["mst"]["data_energy_per_probe"]
        <= by_proto["spt2"]["data_energy_per_probe"]
    )
    assert (
        by_proto["spt2"]["data_energy_per_probe"]
        < by_proto["none"]["data_energy_per_probe"]
    )
    # Everyone survives a generous budget except possibly the uncontrolled
    # network; nobody outlives the controlled protocols.
    assert by_proto["mst"]["alive_at_end"] >= by_proto["none"]["alive_at_end"]
