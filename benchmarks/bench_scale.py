"""Large-n smoke: the 10k-node pipeline under a peak-memory gate.

Runs one sparse-first snapshot -> decide -> flood pipeline at n = 10000
(paper density, proactive mechanism) and enforces two budgets:

- **peak RSS** — the whole run must stay far below the ~800 MB a single
  dense ``(10000, 10000)`` float64 distance matrix would cost, proving no
  quadratic structure was materialized anywhere in the hot path.  The
  ``DENSE_MATERIALIZE_LIMIT`` guard (default 4096, env
  ``REPRO_DENSE_LIMIT``) is additionally asserted to raise if anything
  *does* ask for the dense view.
- **wall clock** — the end-to-end run must finish within the budget, so
  CI notices quadratic-time regressions too.

Run explicitly — it is not part of tier-1:

    PYTHONPATH=src python benchmarks/bench_scale.py [--n 10000]
        [--budget-s 420] [--rss-mb 600]
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

import numpy as np

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.analysis.scales import Scale
from repro.sim.flood import flood
from repro.sim.world import DENSE_MATERIALIZE_LIMIT
from repro.util.errors import DenseMaterializationError


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, MB (Linux: ru_maxrss in KB)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        return peak_kb / 1e6
    return peak_kb / 1e3


def run_smoke(n: int, warm_t: float = 3.0, seed: int = 7) -> dict:
    start = time.perf_counter()
    scale = Scale(
        name="scale-smoke",
        n_nodes=n,
        area_side=90.0 * float(np.sqrt(n)),  # paper density: 8100 m^2/node
        duration=warm_t + 2.0,
        sample_rate=1.0,
        repetitions=1,
    )
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="proactive",
        mean_speed=20.0,
        config=scale.config(),
    )
    world = build_world(spec, seed)
    world.run_until(warm_t)
    warm_s = time.perf_counter() - start

    t0 = time.perf_counter()
    snap = world.snapshot()
    snapshot_s = time.perf_counter() - t0
    if n > DENSE_MATERIALIZE_LIMIT:
        if snap.prefers_dense:
            raise AssertionError("snapshot at scale must be sparse-first")
        try:
            snap.dist
        except DenseMaterializationError:
            pass  # the guard is armed: nothing can silently go quadratic
        else:
            raise AssertionError("snap.dist must raise above the dense limit")

    t0 = time.perf_counter()
    world.redecide_all()
    decide_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = flood(world, 0)
    flood_s = time.perf_counter() - t0

    return {
        "n": n,
        "warmup_s": round(warm_s, 2),
        "snapshot_s": round(snapshot_s, 4),
        "redecide_s": round(decide_s, 2),
        "flood_s": round(flood_s, 2),
        "flood_transmissions": result.transmissions,
        "effective_edges": int(snap.effective_directed_csr().nnz),
        "total_s": round(time.perf_counter() - start, 2),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "neighbor_stats": world.neighbor_stats(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10000)
    parser.add_argument("--budget-s", type=float, default=420.0)
    parser.add_argument("--rss-mb", type=float, default=600.0)
    args = parser.parse_args()

    report = run_smoke(args.n)
    print(json.dumps(report, indent=2))

    failures = []
    if report["total_s"] > args.budget_s:
        failures.append(
            f"runtime {report['total_s']:.1f} s exceeds budget {args.budget_s:.0f} s"
        )
    if report["peak_rss_mb"] > args.rss_mb:
        failures.append(
            f"peak RSS {report['peak_rss_mb']:.0f} MB exceeds gate {args.rss_mb:.0f} MB "
            f"(a dense (n, n) matrix at n={args.n} would be "
            f"{args.n * args.n * 8 / 1e6:.0f} MB)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
