"""Fig. 7: connectivity with different buffer-zone widths (buffer alone).

Paper: buffers help monotonically but, alone, do not rescue every
protocol — SPT-2 tolerates moderate mobility with a 10 m buffer; RNG and
SPT-4 need ~100 m; MST is not rescued even at 100 m.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.figures import generate_fig7, minimal_tolerating_buffer


def test_fig7(benchmark, bench_scale, results_dir):
    fig = benchmark.pedantic(
        generate_fig7, args=(bench_scale,), rounds=1, iterations=1
    )
    lines = [fig.format(), "", "minimal tolerating buffer (>=90% at <=40 m/s):"]
    for protocol in ("mst", "rng", "spt4", "spt2"):
        width = minimal_tolerating_buffer(fig, protocol)
        lines.append(f"  {protocol:5s}: {width if width is not None else 'not achieved'}")
    save_and_print(results_dir, "fig7", "\n".join(lines))

    widest = max(bench_scale.buffer_widths)
    speeds = [s for s in bench_scale.speeds if s <= 40.0]

    def conn(protocol, width, speed):
        series = fig.series_by_label(f"{protocol}+buf{width:g}")
        for p in series.points:
            if p.x == speed:
                return p.result.connectivity.mean
        raise AssertionError("missing point")

    # Buffers help: widest vs none, averaged over moderate speeds.
    for protocol in ("mst", "rng", "spt4", "spt2"):
        with_buf = sum(conn(protocol, widest, s) for s in speeds) / len(speeds)
        without = sum(conn(protocol, 0.0, s) for s in speeds) / len(speeds)
        assert with_buf >= without - 0.02

    # SPT-2 needs a smaller buffer than MST (the paper's redundancy story).
    spt2_min = minimal_tolerating_buffer(fig, "spt2")
    mst_min = minimal_tolerating_buffer(fig, "mst")
    if spt2_min is not None and mst_min is not None:
        assert spt2_min <= mst_min
    elif spt2_min is None:
        # if SPT-2 is not rescued, MST must not be either
        assert mst_min is None
