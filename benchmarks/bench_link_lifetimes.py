"""Link-lifetime bench: the redundancy story as hazard rates.

Section 4.3 argues that protocols with low redundancy (MST: "a few link
failures will cause network partitioning") need wider buffers than
redundant ones (RNG, SPT).  This bench measures the underlying quantity —
how fast each protocol's links actually break — and checks the structural
orderings: faster mobility breaks links faster, and effective links never
outlive the normal-range links beneath them.
"""

from __future__ import annotations

import numpy as np

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec, build_world
from repro.analysis.report import format_table
from repro.metrics.links import LinkLifetimeTracker


def _summary(spec, seed, kind="effective"):
    world = build_world(spec, seed=seed)
    cfg = spec.config
    tracker = LinkLifetimeTracker(kind=kind)
    for t in np.arange(cfg.warmup, cfg.duration + 1e-9, 1.0 / cfg.sample_rate):
        world.run_until(float(t))
        tracker.observe(world.snapshot())
    return tracker.finish()


def test_link_lifetimes(benchmark, bench_scale, results_dir):
    cfg = bench_scale.config()

    def measure():
        rows = []
        for protocol in ("mst", "rng", "spt2", "none"):
            for speed in (5.0, 40.0):
                spec = ExperimentSpec(
                    protocol=protocol, mechanism="baseline", buffer_width=0.0,
                    mean_speed=speed, config=cfg,
                )
                summary = _summary(spec, seed=8900)
                rows.append(
                    {
                        "protocol": protocol,
                        "speed": speed,
                        "breaks": summary.completed,
                        "mean_life_s": summary.mean,
                        "break_rate_per_s": summary.break_rate,
                    }
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "link_lifetimes",
        format_table(rows, title="Effective-link lifetimes by protocol and speed"),
    )
    by_key = {(r["protocol"], r["speed"]): r for r in rows}
    # Faster mobility breaks links faster, for every protocol.
    for protocol in ("mst", "rng", "spt2", "none"):
        assert (
            by_key[(protocol, 40.0)]["break_rate_per_s"]
            >= by_key[(protocol, 5.0)]["break_rate_per_s"]
        )
    # The uncontrolled network's links (normal range, any direction) are
    # the most stable: its break rate bounds the controlled ones below.
    for protocol in ("mst", "rng", "spt2"):
        assert (
            by_key[(protocol, 40.0)]["break_rate_per_s"]
            >= by_key[("none", 40.0)]["break_rate_per_s"] - 1e-6
        )
