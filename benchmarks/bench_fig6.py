"""Fig. 6: connectivity ratio of baseline protocols vs mobility.

Paper: every baseline is vulnerable; ordering SPT-2 > RNG >~ SPT-4 > MST;
MST collapses (~10 %) even at 1 m/s; connectivity decays with speed.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.figures import generate_fig6


def test_fig6(benchmark, bench_scale, results_dir):
    fig = benchmark.pedantic(
        generate_fig6, args=(bench_scale,), rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig6", fig.format())

    low_speed = min(bench_scale.speeds)
    high_speed = max(bench_scale.speeds)

    def conn(protocol, speed):
        series = fig.series_by_label(protocol)
        for p in series.points:
            if p.x == speed:
                return p.result.connectivity.mean
        raise AssertionError(f"missing speed {speed} for {protocol}")

    # Redundancy ordering at the gentlest sweep point.
    assert conn("spt2", low_speed) >= conn("mst", low_speed)
    assert conn("rng", low_speed) >= conn("mst", low_speed)

    # Everyone decays with speed.
    for protocol in ("mst", "rng", "spt4", "spt2"):
        assert conn(protocol, high_speed) <= conn(protocol, low_speed) + 0.05

    # The paper's headline: even the best baseline is not mobility-tolerant.
    moderate = [s for s in bench_scale.speeds if 10 <= s <= 40]
    if moderate:
        assert conn("mst", moderate[0]) < 0.9
