"""Digest a seeded n=600 end-to-end run — the bit-identity probe.

Hashes every decision-relevant observable of a mid-scale seeded run
(positions, logical adjacency, in-force ranges, channel counters and the
per-sample series of ``run_once``) so refactors of the reachability seam
can prove byte-identity against the recorded pre-change digest.

Run: ``PYTHONPATH=src python benchmarks/digest_e2e.py``
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.analysis.experiment import ExperimentSpec, run_once
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig


def e2e_digest(n_nodes: int = 600, seed: int = 20260807) -> str:
    """Sha256 over the full observable surface of one seeded run."""
    side = float(np.sqrt(n_nodes * 8100.0))
    spec = ExperimentSpec(
        protocol="rng",
        mechanism="view-sync",
        buffer_width=20.0,
        mean_speed=10.0,
        config=ScenarioConfig(
            n_nodes=n_nodes,
            area=Area(side, side),
            duration=6.0,
            warmup=2.0,
            sample_rate=2.0,
        ),
    )
    result = run_once(spec, seed=seed)
    h = hashlib.sha256()
    for arr in (
        result.delivery_ratios,
        result.mean_actual_ranges,
        result.mean_extended_ranges,
        result.mean_logical_degrees,
        result.mean_physical_degrees,
        result.strict_connected,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(json.dumps(result.stats.as_dict(), sort_keys=True).encode())
    return h.hexdigest()


if __name__ == "__main__":
    print(e2e_digest())
