"""Micro-benchmarks of the hot paths (regression tracking).

These are conventional pytest-benchmark timings — the engine's event
throughput, one protocol selection, one snapshot + flood — so performance
regressions in the simulator core show up without running full sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.core.costs import DistanceCost
from repro.core.framework import LocalCostGraph, apply_removal_condition, mst_removable
from repro.core.views import Hello, LocalView
from repro.mobility.base import Area
from repro.protocols import MstProtocol, RngProtocol, Spt2Protocol
from repro.sim.config import ScenarioConfig
from repro.sim.engine import Engine
from repro.sim.flood import flood


def _view(n_neighbors: int = 18, seed: int = 0) -> LocalView:
    rng = np.random.default_rng(seed)
    own = Hello(0, 1, (125.0, 125.0), 0.0, 0.0)
    neighbors = {
        i: Hello(i, 1, tuple(rng.random(2) * 250.0), 0.0, 0.0)
        for i in range(1, n_neighbors + 1)
    }
    return LocalView(0, own, neighbors, normal_range=250.0, sampled_at=0.0)


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        eng = Engine()
        count = [0]
        def tick():
            count[0] += 1
            if count[0] < 10_000:
                eng.schedule_after(0.001, tick)
        eng.schedule_at(0.0, tick)
        eng.run(until=100.0)
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_rng_selection_speed(benchmark):
    view = _view()
    proto = RngProtocol()
    result = benchmark(proto.select, view)
    assert result.owner == 0


def test_mst_selection_speed(benchmark):
    view = _view()
    proto = MstProtocol()
    result = benchmark(proto.select, view)
    assert result.owner == 0


def test_spt_selection_speed(benchmark):
    view = _view()
    proto = Spt2Protocol()
    result = benchmark(proto.select, view)
    assert result.owner == 0


def test_cost_graph_construction_speed(benchmark):
    view = _view()
    graph = benchmark(LocalCostGraph.from_local_view, view, DistanceCost())
    assert graph.size == 19


def test_removal_condition_speed(benchmark):
    graph = LocalCostGraph.from_local_view(_view(), DistanceCost())
    result = benchmark(apply_removal_condition, graph, mst_removable)
    assert result.owner == 0


def test_snapshot_and_flood_speed(benchmark):
    cfg = ScenarioConfig(
        n_nodes=100,
        area=Area(900.0, 900.0),
        normal_range=250.0,
        duration=6.0,
        warmup=2.0,
        sample_rate=1.0,
    )
    spec = ExperimentSpec(protocol="rng", mean_speed=20.0, config=cfg)
    world = build_world(spec, seed=1)
    world.run_until(4.0)

    def probe():
        return flood(world, source=0).delivery_ratio

    ratio = benchmark(probe)
    assert 0.0 <= ratio <= 1.0


def test_disarmed_telemetry_world_speed(benchmark):
    """Hello-protocol throughput with the default (Null) telemetry.

    Tracks the disarmed-seam overhead: this run must stay within noise of
    the same scenario before the telemetry subsystem existed, because
    every seam is one ``is None`` branch when no collector is armed.
    """
    cfg = ScenarioConfig(
        n_nodes=100,
        area=Area(900.0, 900.0),
        normal_range=250.0,
        duration=6.0,
        warmup=2.0,
        sample_rate=1.0,
    )
    spec = ExperimentSpec(protocol="rng", mean_speed=20.0, config=cfg)

    def run_world():
        world = build_world(spec, seed=1)
        world.run_until(6.0)
        return world.engine.events_processed

    events = benchmark(run_world)
    assert events > 0
