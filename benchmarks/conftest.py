"""Benchmark-suite configuration.

Every paper artifact (Table 1, Figs. 6-10) has one benchmark that runs its
generator exactly once (``pedantic(rounds=1)``) at a reduced scale, prints
the paper-vs-measured rows, asserts the qualitative *shape*, and stores the
ASCII table under ``benchmarks/results/``.

Environment knobs:

- ``REPRO_BENCH_SCALE``: ``smoke`` | ``quick`` (default) | ``standard`` |
  ``paper`` — trade fidelity for wall clock.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.scales import PAPER, QUICK, SMOKE, STANDARD

_SCALES = {"paper": PAPER, "standard": STANDARD, "quick": QUICK, "smoke": SMOKE}

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    """Scale preset selected by REPRO_BENCH_SCALE (default: quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


@pytest.fixture(scope="session")
def results_dir():
    """Directory where benchmark tables are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered artifact and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
