"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Hello-interval sweep** — Section 3.2's claim that inconsistency
   "cannot be solved by reducing the Hello interval": halving the interval
   must not rescue a baseline protocol.
2. **History-depth sweep** — weak consistency with k = 1, 2, 3 retained
   Hellos (Theorem 3/Corollary 1: 2-3 suffice; more adds conservatism, not
   correctness).
3. **Theorem 5 width vs empirical need** — the worst-case buffer law is
   safe but, per the paper's observation (via [35]), much thinner buffers
   already preserve most links in practice.
4. **Mechanism comparison at a fixed operating point** — connectivity and
   control-message overhead of all five consistency mechanisms (the
   reactive scheme's flooding cost is its documented drawback).
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.experiment import ExperimentSpec, run_once, run_repetitions
from repro.analysis.report import format_table
from repro.core.buffer_zone import buffer_width, max_delay_bound


def _cfg(bench_scale, **overrides):
    return bench_scale.config(**overrides)


def test_ablation_hello_interval(benchmark, bench_scale, results_dir):
    """Faster Hellos alone do not fix the baseline (paper, Section 3.2)."""

    def sweep():
        rows = []
        for interval in (0.5, 1.0, 2.0):
            cfg = _cfg(
                bench_scale,
                hello_interval=interval,
                hello_jitter=interval / 4,
                hello_expiry=2.5 * interval,
            )
            spec = ExperimentSpec(
                protocol="mst", mechanism="baseline", mean_speed=20.0, config=cfg
            )
            agg = run_repetitions(spec, repetitions=bench_scale.repetitions, base_seed=5100)
            rows.append(
                {
                    "hello_interval_s": interval,
                    "connectivity": agg.connectivity.mean,
                    "ci": agg.connectivity.half_width,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ablation_hello_interval",
        format_table(rows, title="Ablation — Hello interval (MST baseline, 20 m/s)"),
    )
    # Even the fastest interval leaves MST far from mobility-tolerant.
    fastest = rows[0]["connectivity"]
    assert fastest < 0.9


def test_ablation_history_depth(benchmark, bench_scale, results_dir):
    """Weak consistency vs k: degree rises with k, connectivity holds."""

    def sweep():
        rows = []
        for k in (1, 2, 3):
            cfg = _cfg(bench_scale, history_depth=k)
            spec = ExperimentSpec(
                protocol="rng",
                mechanism="weak",
                buffer_width=10.0,
                mean_speed=20.0,
                config=cfg,
            )
            result = run_once(spec, seed=5200)
            rows.append(
                {
                    "k": k,
                    "connectivity": result.connectivity_ratio,
                    "logical_degree": result.mean_logical_degree,
                    "tx_range": result.mean_transmission_range,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ablation_history_depth",
        format_table(rows, title="Ablation — weak-consistency history depth k"),
    )
    # Conservatism grows with k: degree and range are non-decreasing.
    degrees = [r["logical_degree"] for r in rows]
    assert degrees == sorted(degrees)
    # k >= 2 (Corollary 1's instantaneous-updating bound) keeps the network
    # at least as connected as k = 1.
    assert rows[1]["connectivity"] >= rows[0]["connectivity"] - 0.05


def test_ablation_theorem5_width(benchmark, bench_scale, results_dir):
    """Worst-case buffer law vs empirically sufficient width."""
    speed = 20.0
    worst_case = buffer_width(
        max_speed=2.0 * speed,
        max_delay=max_delay_bound("baseline", 1.25),
    )

    def sweep():
        rows = []
        for frac in (0.0, 0.1, 0.25, 0.5, 1.0):
            width = worst_case * frac
            spec = ExperimentSpec(
                protocol="rng",
                mechanism="view-sync",
                buffer_width=width,
                mean_speed=speed,
                config=_cfg(bench_scale),
            )
            result = run_once(spec, seed=5300)
            rows.append(
                {
                    "fraction_of_theorem5": frac,
                    "width_m": width,
                    "connectivity": result.connectivity_ratio,
                    "tx_range": result.mean_transmission_range,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ablation_theorem5",
        format_table(
            rows,
            title=f"Ablation — buffer width as fraction of Theorem 5 ({worst_case:.0f} m)",
        ),
    )
    # The full worst-case width is (near) sufficient...
    assert rows[-1]["connectivity"] > 0.85
    # ...and some strictly thinner buffer already gets within 10% of it —
    # the paper's "much narrower buffer suffices with high probability".
    assert any(
        r["connectivity"] >= rows[-1]["connectivity"] - 0.1 for r in rows[:-1]
    )


def test_ablation_hello_loss_vs_history(benchmark, bench_scale, results_dir):
    """Section 4.2: under Hello loss, deeper histories restore weak
    consistency's robustness — sweep loss rate x history depth."""

    def sweep():
        rows = []
        for loss in (0.0, 0.3):
            for k in (1, 3):
                cfg = _cfg(bench_scale, hello_loss_rate=loss, history_depth=k)
                spec = ExperimentSpec(
                    protocol="rng",
                    mechanism="weak",
                    buffer_width=10.0,
                    mean_speed=20.0,
                    config=cfg,
                )
                result = run_once(spec, seed=5500)
                rows.append(
                    {
                        "loss_rate": loss,
                        "k": k,
                        "connectivity": result.connectivity_ratio,
                        "hello_losses": result.stats.hello_losses,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ablation_hello_loss",
        format_table(rows, title="Ablation — Hello loss rate x history depth (weak RNG)"),
    )
    by_key = {(r["loss_rate"], r["k"]): r for r in rows}
    # Losses only occur when configured.
    assert by_key[(0.0, 1)]["hello_losses"] == 0
    assert by_key[(0.3, 3)]["hello_losses"] > 0
    # Under loss, k = 3 does at least as well as k = 1 (the paper's point).
    assert (
        by_key[(0.3, 3)]["connectivity"] >= by_key[(0.3, 1)]["connectivity"] - 0.05
    )


def test_ablation_mechanisms(benchmark, bench_scale, results_dir):
    """All five consistency mechanisms at one operating point + overhead."""

    def sweep():
        rows = []
        for mechanism in ("baseline", "view-sync", "proactive", "reactive", "weak"):
            spec = ExperimentSpec(
                protocol="rng",
                mechanism=mechanism,
                buffer_width=30.0,
                mean_speed=20.0,
                config=_cfg(bench_scale),
            )
            result = run_once(spec, seed=5400)
            stats = result.stats
            rows.append(
                {
                    "mechanism": mechanism,
                    "connectivity": result.connectivity_ratio,
                    "logical_degree": result.mean_logical_degree,
                    "hello_msgs": stats.hello_messages,
                    "sync_msgs": stats.sync_messages,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_and_print(
        results_dir,
        "ablation_mechanisms",
        format_table(rows, title="Ablation — consistency mechanisms (RNG, 30 m, 20 m/s)"),
    )
    by_name = {r["mechanism"]: r for r in rows}
    # Only the reactive scheme pays flooding overhead.
    assert by_name["reactive"]["sync_msgs"] > 0
    for name in ("baseline", "view-sync", "proactive", "weak"):
        assert by_name[name]["sync_msgs"] == 0
    # Every mobility mechanism should at least match the baseline.
    base = by_name["baseline"]["connectivity"]
    for name in ("view-sync", "reactive", "weak"):
        assert by_name[name]["connectivity"] >= base - 0.05
