"""Fig. 10: connectivity before/after physical-neighbor forwarding.

Paper: letting receivers accept packets from any in-range sender rescues
every protocol — SPT-2 tolerates moderate mobility with a 1 m buffer,
RNG/SPT-4 with 10 m, MST with ~30-100 m; at 100 m buffers every protocol
reaches ~100 % even at 160 m/s.
"""

from __future__ import annotations

from conftest import save_and_print
from repro.analysis.figures import (
    generate_fig7,
    generate_fig10,
    minimal_tolerating_buffer,
)


def test_fig10(benchmark, bench_scale, results_dir):
    fig10 = benchmark.pedantic(
        generate_fig10, args=(bench_scale,), rounds=1, iterations=1
    )
    # Same base seed => identical worlds and decisions; PN mode only
    # relaxes packet acceptance, so the comparison is exactly paired.
    fig7 = generate_fig7(bench_scale, base_seed=4100)

    lines = [fig10.format(), "", "minimal tolerating buffer with PN forwarding:"]
    for protocol in ("mst", "rng", "spt4", "spt2"):
        width = minimal_tolerating_buffer(fig10, protocol)
        lines.append(f"  {protocol:5s}: {width if width is not None else 'not achieved'}")
    save_and_print(results_dir, "fig10", "\n".join(lines))

    widest = max(bench_scale.buffer_widths)
    top_speed = max(bench_scale.speeds)

    def conn(fig, protocol, width, speed):
        for p in fig.series_by_label(f"{protocol}+buf{width:g}").points:
            if p.x == speed:
                return p.result.connectivity.mean
        raise AssertionError("missing point")

    # PN forwarding never reaches fewer nodes than strict filtering
    # (paired seeds make this a pointwise dominance, not a statistic).
    for protocol in ("mst", "rng", "spt4", "spt2"):
        for width in bench_scale.buffer_widths:
            for speed in bench_scale.speeds:
                assert (
                    conn(fig10, protocol, width, speed)
                    >= conn(fig7, protocol, width, speed) - 1e-9
                )

    # The paper's extreme-mobility claim: wide buffer + PN ~ full coverage
    # even at the highest simulated speed.
    for protocol in ("rng", "spt2"):
        assert conn(fig10, protocol, widest, top_speed) > 0.9
