"""Benchmarks for the fault-injection seams (repro.faults).

Two claims worth tracking:

- **Disabled injection is free.** A world built without a schedule takes
  the exact pre-faults hot paths (``fault_filter is None``, no wrapper
  objects), so its run time must match a plain world's within noise.
- **Armed injection is cheap.** A busy schedule (loss burst + outage +
  noise) should cost little over the clean run — the seams are O(active
  events) per delivery, not O(schedule).
"""

from __future__ import annotations

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.faults import (
    FaultSchedule,
    HelloLossBurst,
    NodeOutage,
    PositionNoise,
)
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig

CFG = ScenarioConfig(
    n_nodes=100,
    area=Area(900.0, 900.0),
    normal_range=250.0,
    duration=6.0,
    warmup=2.0,
    sample_rate=1.0,
)
SPEC = ExperimentSpec(protocol="rng", mean_speed=20.0, config=CFG)

BUSY = FaultSchedule(
    events=(
        HelloLossBurst(start=2.0, end=5.0, probability=0.3),
        NodeOutage(node=7, start=3.0, end=5.5),
        PositionNoise(amplitude=3.0, start=2.5, end=6.0),
    )
)


def _run(faults: FaultSchedule | None) -> float:
    world = build_world(SPEC, seed=3, faults=faults)
    world.run_until(CFG.duration)
    return world.engine.now


def test_run_without_schedule(benchmark):
    """The zero-cost baseline: no schedule, no injector, no seams armed."""
    assert benchmark(_run, None) == CFG.duration


def test_run_with_empty_schedule(benchmark):
    """An empty schedule must not arm any seam either."""
    world = build_world(SPEC, seed=3, faults=FaultSchedule())
    assert world.fault_injector is None or not world.fault_injector.schedule
    assert benchmark(_run, FaultSchedule()) == CFG.duration


def test_run_with_busy_schedule(benchmark):
    """Armed seams: loss draws + outage filtering + advertised noise."""
    assert benchmark(_run, BUSY) == CFG.duration


def test_injection_actually_happened():
    """Guard: the busy benchmark measures real injection, not a no-op."""
    world = build_world(SPEC, seed=3, faults=BUSY)
    world.run_until(CFG.duration)
    stats = world.fault_stats()
    assert stats["fault_hello_drops"] > 0
    assert stats["fault_noisy_positions"] > 0
