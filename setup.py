"""Legacy shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
setuptools develop-mode fallback on environments whose pip cannot build
editable wheels (e.g. offline boxes without the `wheel` distribution).
"""

from setuptools import setup

setup()
