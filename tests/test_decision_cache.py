"""Tests for the view-fingerprint decision cache.

Two layers:

- manager-level invalidation semantics on hand-built tables — every input
  the mechanisms declare must flip a hit into a miss when it changes;
- world-level equivalence — simulations at every mechanism x protocol pair
  must produce bit-identical metrics with the cache on and off, and
  packet-time recomputation between Hello generations must be all hits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_hello
from repro.analysis.experiment import ExperimentSpec, build_world, run_once
from repro.analysis.scales import Scale
from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import (
    BaselineConsistency,
    ProactiveConsistency,
    ViewSynchronization,
)
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.core.tables import NeighborTable
from repro.protocols.rng import RngProtocol

TINY = Scale(
    name="tiny",
    n_nodes=16,
    area_side=360.0,  # 8100 m^2 per node, the paper's density
    duration=4.0,
    sample_rate=1.0,
    warmup=2.0,
    repetitions=1,
)


def make_table(owner: int = 0, expiry: float = 2.5) -> NeighborTable:
    table = NeighborTable(owner, normal_range=100.0, expiry=expiry)
    table.record_own(make_hello(owner, (0.0, 0.0), version=1, sent_at=0.0))
    table.record_hello(make_hello(1, (30.0, 0.0), version=1, sent_at=0.0))
    table.record_hello(make_hello(2, (0.0, 40.0), version=1, sent_at=0.0))
    return table


def make_manager(mechanism=None, **kwargs) -> MobilitySensitiveTopologyControl:
    return MobilitySensitiveTopologyControl(
        RngProtocol(), mechanism=mechanism or ViewSynchronization(), **kwargs
    )


class TestCacheHits:
    def test_identical_inputs_hit(self):
        manager = make_manager()
        table = make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        first = manager.decide(table, 1.0, hello)
        second = manager.decide(table, 1.0, hello)
        assert manager.cache_misses == 1
        assert manager.cache_hits == 1
        assert first == second

    def test_hit_refreshes_decided_at_only(self):
        manager = make_manager()
        table = make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        first = manager.decide(table, 1.0, hello)
        later = manager.decide(table, 1.5, hello)
        assert manager.cache_hits == 1
        assert later.decided_at == 1.5
        assert later.logical_neighbors == first.logical_neighbors
        assert later.actual_range == first.actual_range
        assert later.extended_range == first.extended_range

    def test_view_sync_ignores_current_position_drift(self):
        # view-sync decides from the *advertised* own position, so a moving
        # node still hits between Hello generations (the redecide_all case)
        manager = make_manager()
        table = make_table()
        manager.decide(table, 1.0, make_hello(0, (1.0, 0.0), version=2, sent_at=1.0))
        manager.decide(table, 1.2, make_hello(0, (5.0, 0.0), version=2, sent_at=1.2))
        assert manager.cache_hits == 1

    def test_disabled_cache_never_counts(self):
        manager = make_manager(decision_cache=False)
        table = make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        manager.decide(table, 1.0, hello)
        manager.decide(table, 1.0, hello)
        assert manager.cache_info() == {
            "decision_cache_hits": 0,
            "decision_cache_misses": 0,
            "decision_cache_uncacheable": 0,
        }

    def test_uncacheable_mechanism_counts(self):
        class Opaque(BaselineConsistency):
            def decision_fingerprint(self, table, now, current_hello, version=None):
                return None

        manager = make_manager(mechanism=Opaque())
        table = make_table()
        hello = make_hello(0, (0.0, 0.0), version=2, sent_at=1.0)
        manager.decide(table, 1.0, hello)
        manager.decide(table, 1.0, hello)
        assert manager.cache_uncacheable == 2
        assert manager.cache_hits == 0


class TestCacheInvalidation:
    def test_new_hello_misses(self):
        manager = make_manager()
        table = make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        manager.decide(table, 1.0, hello)
        table.record_hello(make_hello(1, (35.0, 0.0), version=2, sent_at=1.1))
        manager.decide(table, 1.2, hello)
        assert manager.cache_hits == 0
        assert manager.cache_misses == 2

    def test_expired_entry_misses(self):
        manager = make_manager()
        table = make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        first = manager.decide(table, 1.0, hello)
        assert 1 in first.logical_neighbors or 2 in first.logical_neighbors
        # no mutation — neighbors expire purely by time passing (> 2.5 s)
        stale = manager.decide(table, 4.0, hello)
        assert manager.cache_hits == 0
        assert manager.cache_misses == 2
        assert stale.logical_neighbors == frozenset()

    def test_buffer_width_change_misses(self):
        manager = make_manager()
        table = make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        narrow = manager.decide(table, 1.0, hello)
        manager.buffer_policy = BufferZonePolicy(width=10.0, cap=250.0)
        wide = manager.decide(table, 1.0, hello)
        assert manager.cache_hits == 0
        assert manager.cache_misses == 2
        assert wide.extended_range == pytest.approx(narrow.extended_range + 10.0)

    def test_version_override_misses(self):
        manager = make_manager(mechanism=ProactiveConsistency())
        table = make_table()
        table.record_own(make_hello(0, (2.0, 0.0), version=2, sent_at=1.0))
        table.record_hello(make_hello(1, (32.0, 0.0), version=2, sent_at=1.0))
        table.record_hello(make_hello(2, (0.0, 42.0), version=2, sent_at=1.0))
        hello = make_hello(0, (2.0, 0.0), version=3, sent_at=1.5)
        manager.decide(table, 1.5, hello, version=1)
        manager.decide(table, 1.5, hello, version=2)
        assert manager.cache_misses == 2
        manager.decide(table, 1.5, hello, version=2)
        assert manager.cache_hits == 1

    def test_baseline_misses_when_own_position_moves(self):
        manager = make_manager(mechanism=BaselineConsistency())
        table = make_table()
        manager.decide(table, 1.0, make_hello(0, (0.0, 0.0), version=2, sent_at=1.0))
        manager.decide(table, 1.2, make_hello(0, (3.0, 0.0), version=2, sent_at=1.2))
        assert manager.cache_misses == 2

    def test_two_tables_same_owner_do_not_alias(self):
        manager = make_manager()
        a, b = make_table(), make_table()
        hello = make_hello(0, (1.0, 1.0), version=2, sent_at=1.0)
        manager.decide(a, 1.0, hello)
        manager.decide(b, 1.0, hello)
        assert manager.cache_hits == 0
        assert manager.cache_misses == 2


def _world_decisions(world) -> list:
    return [
        (
            node.node_id,
            None
            if node.decision is None
            else (
                node.decision.logical_neighbors,
                node.decision.actual_range,
                node.decision.extended_range,
            ),
        )
        for node in world.nodes
    ]


class TestWorldLevelCache:
    def test_redecide_all_between_hellos_is_all_hits(self):
        spec = ExperimentSpec(
            protocol="rng",
            mechanism="view-sync",
            mean_speed=20.0,
            config=TINY.config(),
        )
        world = build_world(spec, seed=5)
        world.run_until(2.5)
        world.redecide_all()  # warm: standing results enter the cache
        baseline = _world_decisions(world)
        hits_before = world.manager.cache_hits
        misses_before = world.manager.cache_misses
        world.redecide_all()
        assert world.manager.cache_hits == hits_before + len(world.nodes)
        assert world.manager.cache_misses == misses_before
        assert _world_decisions(world) == baseline

    @pytest.mark.parametrize(
        "mechanism", ["baseline", "view-sync", "proactive", "reactive", "weak"]
    )
    @pytest.mark.parametrize("protocol", ["rng", "spt2", "mst"])
    def test_run_once_identical_cache_on_and_off(
        self, mechanism, protocol, monkeypatch
    ):
        spec = ExperimentSpec(
            protocol=protocol,
            mechanism=mechanism,
            buffer_width=10.0,
            mean_speed=20.0,
            config=TINY.config(),
        )
        cached = run_once(spec, seed=9)
        monkeypatch.setattr(
            MobilitySensitiveTopologyControl, "decision_cache_default", False
        )
        uncached = run_once(spec, seed=9)
        assert np.array_equal(cached.delivery_ratios, uncached.delivery_ratios)
        assert np.array_equal(cached.mean_actual_ranges, uncached.mean_actual_ranges)
        assert np.array_equal(
            cached.mean_extended_ranges, uncached.mean_extended_ranges
        )
        assert np.array_equal(cached.mean_logical_degrees, uncached.mean_logical_degrees)
        assert np.array_equal(
            cached.mean_physical_degrees, uncached.mean_physical_degrees
        )
        assert np.array_equal(cached.strict_connected, uncached.strict_connected)
        for key, value in uncached.stats.as_dict().items():
            if not key.startswith("decision_cache_"):
                assert cached.stats.as_dict()[key] == value
        assert uncached.stats.decision_cache_hits == 0
        assert uncached.stats.decision_cache_misses == 0


class TestCacheUnderHelloLoss:
    """Property: lossy channels must not perturb cache equivalence.

    Hello loss changes *when* tables mutate, which is exactly the input
    the fingerprints must pin; if any mechanism's fingerprint missed a
    loss-dependent input, the cached run would diverge from the uncached
    one.  Hypothesis drives mechanism x protocol under randomized nonzero
    ``hello_loss_rate`` and seeds, asserting bit-identical decisions.
    """

    @staticmethod
    def _final_decisions(mechanism, protocol, loss_rate, seed, cache_enabled):
        spec = ExperimentSpec(
            protocol=protocol,
            mechanism=mechanism,
            buffer_width=10.0,
            mean_speed=20.0,
            config=TINY.config(hello_loss_rate=loss_rate),
        )
        world = build_world(spec, seed=seed)
        world.manager.decision_cache_enabled = cache_enabled
        states = []
        for t in (2.0, 3.0, 4.0):
            world.run_until(t)
            world.redecide_all()
            states.append(_world_decisions(world))
        return states, world.channel.stats.as_dict()

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        mechanism=st.sampled_from(
            ["baseline", "view-sync", "proactive", "reactive", "weak"]
        ),
        protocol=st.sampled_from(["rng", "spt2", "mst"]),
        loss_rate=st.floats(min_value=0.05, max_value=0.6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_cache_on_off_bit_identical_under_loss(
        self, mechanism, protocol, loss_rate, seed
    ):
        cached, cached_stats = self._final_decisions(
            mechanism, protocol, loss_rate, seed, cache_enabled=True
        )
        uncached, uncached_stats = self._final_decisions(
            mechanism, protocol, loss_rate, seed, cache_enabled=False
        )
        assert cached == uncached
        # the channel itself (losses included) must be untouched by caching
        assert cached_stats == uncached_stats
        assert cached_stats["hello_losses"] > 0, "loss rate must actually bite"
