"""Tests for repro.geometry.points: vectorized planar kernels."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.points import (
    angle_of,
    angular_difference,
    as_points,
    distance,
    distances_from,
    neighbors_within,
    pairwise_distances,
)


class TestAsPoints:
    def test_accepts_2d_array(self):
        pts = as_points(np.zeros((5, 2)))
        assert pts.shape == (5, 2)

    def test_promotes_single_point(self):
        pts = as_points(np.array([1.0, 2.0]))
        assert pts.shape == (1, 2)

    def test_accepts_list_of_pairs(self):
        pts = as_points([(0, 0), (3, 4)])
        assert pts.dtype == np.float64

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="shape"):
            as_points(np.zeros((4, 3)))

    def test_no_copy_for_float64(self):
        src = np.zeros((3, 2), dtype=np.float64)
        assert as_points(src) is src


class TestDistance:
    def test_three_four_five(self):
        assert distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_zero_distance(self):
        p = np.array([1.5, -2.5])
        assert distance(p, p) == 0.0

    def test_symmetry(self, rng):
        p, q = rng.random(2), rng.random(2)
        assert distance(p, q) == pytest.approx(distance(q, p))


class TestPairwiseDistances:
    def test_matches_naive(self, rng):
        pts = rng.random((12, 2)) * 50
        d = pairwise_distances(pts)
        for i in range(12):
            for j in range(12):
                expected = math.hypot(*(pts[i] - pts[j]))
                assert d[i, j] == pytest.approx(expected)

    def test_symmetric_zero_diagonal(self, rng):
        pts = rng.random((8, 2))
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_single_point(self):
        d = pairwise_distances(np.array([[1.0, 1.0]]))
        assert d.shape == (1, 1) and d[0, 0] == 0.0


class TestDistancesFrom:
    def test_matches_pairwise_row(self, rng):
        pts = rng.random((10, 2)) * 10
        d = pairwise_distances(pts)
        row = distances_from(pts[3], pts)
        assert np.allclose(row, d[3])


class TestNeighborsWithin:
    def test_boundary_inclusive(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [5.0001, 0.0]])
        idx = neighbors_within(pts[0], pts, 5.0)
        assert list(idx) == [0, 1]

    def test_exact_boundary_distance_is_included(self):
        # The unit-disk convention is d <= r: a point *exactly* at the
        # radius is reachable (what the docstring promises).
        pts = np.array([[0.0, 0.0], [7.5, 0.0], [0.0, 7.5], [7.5000001, 0.0]])
        assert list(neighbors_within(pts[0], pts, 7.5)) == [0, 1, 2]

    def test_includes_self(self):
        pts = np.array([[0.0, 0.0], [100.0, 0.0]])
        assert 0 in neighbors_within(pts[0], pts, 1.0)

    def test_grid_index_matches_dense_scan(self):
        from repro.geometry.grid import GridIndex

        rng = np.random.default_rng(99)
        pts = rng.random((60, 2)) * 100
        for radius in (10.0, 35.0):
            index = GridIndex(pts, cell_size=radius)
            for probe in (pts[0], pts[31], np.array([50.0, 50.0])):
                assert np.array_equal(
                    neighbors_within(probe, pts, radius, index=index),
                    neighbors_within(probe, pts, radius),
                )


class TestAngles:
    def test_angle_of_cardinals(self):
        o = np.array([0.0, 0.0])
        assert angle_of(o, np.array([1.0, 0.0])) == pytest.approx(0.0)
        assert angle_of(o, np.array([0.0, 1.0])) == pytest.approx(math.pi / 2)
        assert abs(angle_of(o, np.array([-1.0, 0.0]))) == pytest.approx(math.pi)

    def test_angular_difference_wraps(self):
        assert angular_difference(0.1, 2 * math.pi - 0.1) == pytest.approx(0.2)

    def test_angular_difference_bounds(self, rng):
        for _ in range(50):
            a, b = rng.uniform(-10, 10, 2)
            diff = angular_difference(float(a), float(b))
            assert 0.0 <= diff <= math.pi + 1e-12

    def test_angular_difference_symmetric(self):
        assert angular_difference(1.0, 2.5) == pytest.approx(angular_difference(2.5, 1.0))
