"""Tests for the campaign orchestrator: units, store, pool, resume."""

from __future__ import annotations

import json
import os
import re
import sqlite3
import time

import numpy as np
import pytest

from repro.analysis.experiment import (
    ExperimentSpec,
    run_once,
    run_repetitions_many,
)
from repro.mobility.base import Area
from repro.orchestrator import (
    OrchestrationContext,
    RunStore,
    WorkUnit,
    content_unit_id,
    execute_unit,
    result_from_dict,
    result_to_dict,
    unit_id,
)
from repro.orchestrator.pool import (
    WorkerPool,
    clear_unit_timeout,
    install_unit_timeout,
)
from repro.orchestrator.runner import CampaignInterrupted
from repro.sim.config import ScenarioConfig
from repro.util.errors import (
    ConfigurationError,
    OrchestrationError,
    UnitTimeoutError,
    WorkUnitError,
)

TINY = ScenarioConfig(
    n_nodes=10,
    area=Area(285.0, 285.0),
    normal_range=250.0,
    duration=5.0,
    warmup=2.0,
    sample_rate=1.0,
)

SPEC = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)

#: Pinned canonical form of SPEC: any drift here silently invalidates every
#: existing run store, so it must be a deliberate SCHEMA_VERSION bump.
PINNED_JSON = (
    '{"buffer_width":0.0,"config":{"area":[285.0,285.0],"duration":5.0,'
    '"hello_expiry":2.5,"hello_interval":1.0,"hello_jitter":0.25,'
    '"hello_loss_rate":0.0,"hello_tx_duration":0.0,"history_depth":3,'
    '"max_clock_skew":0.01,"n_nodes":10,"normal_range":250.0,'
    '"propagation_delay":0.0005,"reactive_flood_delay":0.02,'
    '"sample_rate":1.0,"warmup":2.0},"label":"","mean_speed":10.0,'
    '"mechanism":"baseline","mechanism_kwargs":{},'
    '"physical_neighbor_mode":false,"protocol":"rng","protocol_kwargs":{}}'
)
PINNED_UNIT_ID = "fa457cddb4c0577450404aa604cf8c1e19f0518ed798bc849c8e3187ff7762b1"


class TestSpecCanonicalJson:
    def test_round_trip(self):
        clone = ExperimentSpec.from_json(SPEC.to_json())
        assert clone == SPEC
        assert clone.to_json() == SPEC.to_json()

    def test_pinned_canonical_form(self):
        assert SPEC.to_json() == PINNED_JSON

    def test_numeric_coercion_canonicalizes(self):
        a = SPEC.with_(buffer_width=10)
        b = SPEC.with_(buffer_width=10.0)
        assert a.to_json() == b.to_json()

    def test_from_dict_tolerates_missing_keys(self):
        data = json.loads(SPEC.to_json())
        del data["label"]
        del data["config"]["hello_loss_rate"]
        del data["config"]["hello_tx_duration"]
        spec = ExperimentSpec.from_dict(data)
        assert spec == SPEC

    def test_kwargs_round_trip(self):
        spec = SPEC.with_(protocol="yao", protocol_kwargs={"k": 7})
        assert ExperimentSpec.from_json(spec.to_json()) == spec


class TestUnitIdentity:
    def test_pinned_hash(self):
        assert unit_id(SPEC, 7) == PINNED_UNIT_ID

    def test_stable_and_seed_sensitive(self):
        assert unit_id(SPEC, 7) == unit_id(SPEC, 7)
        assert unit_id(SPEC, 7) != unit_id(SPEC, 8)
        assert unit_id(SPEC, 7) != unit_id(SPEC.with_(mean_speed=11.0), 7)

    def test_kind_namespacing(self):
        payload = SPEC.to_json()
        assert content_unit_id("run", payload, 7) != content_unit_id(
            "fuzz", payload, 7
        )

    def test_int_float_specs_share_identity(self):
        assert unit_id(SPEC.with_(buffer_width=10), 7) == unit_id(
            SPEC.with_(buffer_width=10.0), 7
        )

    def test_work_unit_precomputed_json(self):
        unit = WorkUnit(spec=SPEC, seed=7, spec_json=SPEC.to_json())
        assert unit.unit_id == PINNED_UNIT_ID
        assert unit.label == f"{SPEC.describe()} seed=7"
        bare = WorkUnit(spec=SPEC, seed=7)
        assert bare.unit_id == unit.unit_id


class TestResultRoundTrip:
    def test_exact(self):
        result = run_once(SPEC, seed=3)
        doc = result_to_dict(result)
        clone = result_from_dict(SPEC, 3, json.loads(json.dumps(doc)))
        np.testing.assert_array_equal(clone.delivery_ratios, result.delivery_ratios)
        np.testing.assert_array_equal(clone.strict_connected, result.strict_connected)
        assert result_to_dict(clone) == doc
        assert clone.stats == result.stats


class TestRunStore:
    def test_register_and_counts(self, tmp_path):
        with RunStore(tmp_path / "s.db") as store:
            units = [WorkUnit(spec=SPEC, seed=s) for s in (1, 2)]
            store.register(units)
            store.register(units)  # idempotent
            assert store.counts() == {"pending": 2, "done": 0, "quarantined": 0}

    def test_record_result_upsert_idempotent(self, tmp_path):
        unit = WorkUnit(spec=SPEC, seed=1)
        with RunStore(tmp_path / "s.db") as store:
            store.register([unit])
            store.record_result(unit, {"series": {}, "stats": {}}, attempts=1)
            store.record_result(unit, {"series": {}, "stats": {}}, attempts=2)
            assert store.counts()["done"] == 1
            row = store.get(unit.unit_id)
            assert row.attempts == 2
            assert row.status == "done"

    def test_completed_only_returns_done(self, tmp_path):
        done, pending = WorkUnit(spec=SPEC, seed=1), WorkUnit(spec=SPEC, seed=2)
        with RunStore(tmp_path / "s.db") as store:
            store.register([done, pending])
            store.record_result(done, {"x": 1})
            out = store.completed([done.unit_id, pending.unit_id])
            assert out == {done.unit_id: {"x": 1}}

    def test_quarantine_row(self, tmp_path):
        unit = WorkUnit(spec=SPEC, seed=1)
        with RunStore(tmp_path / "s.db") as store:
            store.record_quarantine(unit, "it broke", attempts=3)
            row = store.get(unit.unit_id)
            assert row.status == "quarantined"
            assert row.error == "it broke"
            assert store.completed([unit.unit_id]) == {}

    def test_get_by_prefix(self, tmp_path):
        unit = WorkUnit(spec=SPEC, seed=1)
        with RunStore(tmp_path / "s.db") as store:
            store.register([unit])
            assert store.get(unit.unit_id[:12]).unit_id == unit.unit_id
            assert store.get("nope00") is None

    def test_schema_mismatch_refuses_to_open(self, tmp_path):
        path = tmp_path / "s.db"
        RunStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE meta SET value = 'repro-unit/0' WHERE key = 'unit_schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(ConfigurationError, match="repro-unit/0"):
            RunStore(path)

    def test_export_jsonl_round_trip(self, tmp_path):
        unit = WorkUnit(spec=SPEC, seed=1)
        result = run_once(SPEC, seed=1)
        out = tmp_path / "units.jsonl"
        with RunStore(tmp_path / "s.db") as store:
            store.record_result(unit, result_to_dict(result))
            lines = store.export_jsonl(out)
        docs = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines == len(docs) == 2
        assert docs[0]["schema"] == "repro-runstore/1"
        assert docs[0]["units"] == 1
        assert docs[1]["unit_id"] == unit.unit_id
        assert docs[1]["spec"] == json.loads(SPEC.to_json())
        assert docs[1]["result"] == result_to_dict(result)

    def test_export_csv_scalars(self, tmp_path):
        import csv

        unit = WorkUnit(spec=SPEC, seed=1)
        result = run_once(SPEC, seed=1)
        out = tmp_path / "units.csv"
        with RunStore(tmp_path / "s.db") as store:
            store.record_result(unit, result_to_dict(result))
            assert store.export_csv(out) == 1
        with open(out, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert float(rows[0]["connectivity"]) == pytest.approx(
            float(result.delivery_ratios.mean())
        )


# ----------------------------------------------------------------------- #
# pool worker functions (top-level so children can unpickle them)


def _flaky_worker(payload: dict) -> dict:
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("tried")
        raise RuntimeError("transient failure")
    return {"ok": True}


def _crashy_worker(payload: dict) -> dict:
    if payload.get("crash"):
        os._exit(13)
    return {"value": payload["value"]}


def _sleepy_worker(payload: dict) -> dict:
    install_unit_timeout(payload["timeout"])
    try:
        time.sleep(payload["sleep"])
        return {"ok": True}
    finally:
        clear_unit_timeout()


def _failing_worker(payload: dict) -> dict:
    raise ValueError(f"unit {payload['name']} always fails")


class TestWorkerPool:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            WorkerPool(_crashy_worker, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(_crashy_worker, retries=-1)

    def _collect(self, pool, payloads):
        results, failures = {}, {}
        pool.run(
            payloads,
            lambda uid, result, attempts: results.__setitem__(uid, (result, attempts)),
            lambda uid, error, attempts: failures.__setitem__(uid, (error, attempts)),
        )
        return results, failures

    def test_inline_retry_then_success(self, tmp_path):
        pool = WorkerPool(_flaky_worker, workers=1, retries=1, backoff=0.0)
        results, failures = self._collect(
            pool, {"u1": {"marker": str(tmp_path / "m")}}
        )
        assert failures == {}
        assert results["u1"] == ({"ok": True}, 2)

    def test_inline_quarantine_after_retries(self):
        pool = WorkerPool(_failing_worker, workers=1, retries=2, backoff=0.0)
        results, failures = self._collect(pool, {"u1": {"name": "u1"}})
        assert results == {}
        error, attempts = failures["u1"]
        assert attempts == 3
        assert "always fails" in error

    def test_pooled_crash_quarantines_without_aborting(self):
        pool = WorkerPool(_crashy_worker, workers=2, retries=1, backoff=0.0)
        payloads = {f"u{i}": {"value": i} for i in range(4)}
        payloads["boom"] = {"crash": True}
        results, failures = self._collect(pool, payloads)
        assert set(results) == {f"u{i}" for i in range(4)}
        assert results["u2"][0] == {"value": 2}
        error, attempts = failures["boom"]
        assert attempts == 2
        assert "died" in error

    def test_pooled_timeout_quarantines(self):
        pool = WorkerPool(_sleepy_worker, workers=2, retries=0, backoff=0.0)
        payloads = {
            "slow": {"timeout": 0.2, "sleep": 30.0},
            "fast": {"timeout": 5.0, "sleep": 0.0},
        }
        results, failures = self._collect(pool, payloads)
        assert "fast" in results
        assert "slow" in failures
        assert "timeout" in failures["slow"][0]


class TestExecuteUnit:
    def test_returns_result_document(self):
        doc = execute_unit(
            {"spec_json": SPEC.to_json(), "seed": 3, "timeout": None, "telemetry": False}
        )
        assert doc == result_to_dict(run_once(SPEC, seed=3))

    def test_timeout_raises_unit_timeout(self):
        with pytest.raises(UnitTimeoutError):
            execute_unit(
                {
                    "spec_json": SPEC.to_json(),
                    "seed": 3,
                    "timeout": 0.001,
                    "telemetry": False,
                }
            )

    def test_wraps_failures_with_unit_name(self):
        bad = SPEC.with_(protocol="yao", protocol_kwargs={"k": -1})
        with pytest.raises(WorkUnitError) as excinfo:
            execute_unit(
                {"spec_json": bad.to_json(), "seed": 5, "timeout": None, "telemetry": False}
            )
        assert excinfo.value.seed == 5
        assert bad.describe() in str(excinfo.value)


class TestOrchestratedRuns:
    SPECS = [SPEC, SPEC.with_(mean_speed=20.0)]

    def _cold(self):
        return run_repetitions_many(self.SPECS, repetitions=3, base_seed=50, workers=1)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_interrupt_then_resume_bit_identical(self, tmp_path, workers):
        cold = self._cold()
        store_path = tmp_path / "campaign.db"
        with RunStore(store_path) as store:
            first = OrchestrationContext(store=store, workers=workers, max_units=3)
            with pytest.raises(CampaignInterrupted):
                with first:
                    run_repetitions_many(self.SPECS, repetitions=3, base_seed=50)
            assert first.executed_units == 3
            assert store.counts()["done"] == 3
        with RunStore(store_path) as store:
            second = OrchestrationContext(store=store, workers=workers)
            with second:
                aggs = run_repetitions_many(self.SPECS, repetitions=3, base_seed=50)
            assert aggs == cold
            assert second.resumed_units == 3
            assert second.executed_units == 3
            assert store.counts() == {"pending": 0, "done": 6, "quarantined": 0}

    def test_storeless_context_matches_cold(self):
        cold = self._cold()
        context = OrchestrationContext(workers=2)
        with context:
            aggs = run_repetitions_many(self.SPECS, repetitions=3, base_seed=50)
        assert aggs == cold
        assert context.executed_units == 6

    def test_no_resume_reexecutes(self, tmp_path):
        with RunStore(tmp_path / "s.db") as store:
            with OrchestrationContext(store=store):
                run_repetitions_many([SPEC], repetitions=2, base_seed=50)
            again = OrchestrationContext(store=store, resume=False)
            with again:
                run_repetitions_many([SPEC], repetitions=2, base_seed=50)
            assert again.executed_units == 2
            assert again.resumed_units == 0

    def test_all_repetitions_quarantined_raises_named_error(self, tmp_path):
        bad = SPEC.with_(protocol="yao", protocol_kwargs={"k": -1})
        with RunStore(tmp_path / "s.db") as store:
            context = OrchestrationContext(store=store, retries=0, backoff=0.0)
            with context:
                with pytest.raises(OrchestrationError, match=re.escape(bad.describe())):
                    run_repetitions_many([SPEC, bad], repetitions=2, base_seed=50)
            # The healthy spec's units completed and were checkpointed.
            assert store.counts() == {"pending": 0, "done": 2, "quarantined": 2}
            assert len(context.quarantined) == 2
            assert all(q.label == bad.describe() for q in context.quarantined)

    def test_summary_line(self, tmp_path):
        with RunStore(tmp_path / "s.db") as store:
            context = OrchestrationContext(store=store)
            with context:
                run_repetitions_many([SPEC], repetitions=1, base_seed=50)
            line = context.summary_line()
            assert "1 executed" in line
            assert "1 done" in line


class TestTelemetryMerge:
    def test_absorb_merges_counters_spans_events(self):
        from repro.telemetry import Telemetry

        worker = Telemetry()
        worker.count("decisions", 3.0)
        worker.count("drops", 1.0, reason="loss")
        worker.gauge("depth", 4.0)
        worker.observe("latency", 2.0)
        worker.observe("latency", 4.0)
        with worker.span("phase"):
            pass
        worker.event("fault", t=1.0, node=2)
        parent = Telemetry()
        parent.count("decisions", 1.0)
        parent.absorb(worker.summary())
        assert parent.registry.counter("decisions").value == 4.0
        assert parent.registry.counter("drops", reason="loss").value == 1.0
        assert parent.registry.gauge("depth").value == 4.0
        hist = parent.registry.histogram("latency")
        assert hist.count == 2
        assert hist.total == 6.0
        assert parent.spans["phase"].count == 1
        assert parent.events.kind_counts() == {"fault": 1}
        assert parent.events.recorded == 1
        assert parent.events.dropped == 1  # absorbed, not retained

    def test_summary_survives_json_round_trip(self):
        from repro.telemetry import Telemetry, TelemetrySummary

        tel = Telemetry()
        tel.count("x", 2.0, kind="a")
        tel.event("fault", t=0.5)
        summary = tel.summary()
        clone = TelemetrySummary.from_dict(json.loads(json.dumps(summary.as_dict())))
        assert clone == summary

    def test_parallel_run_collects_worker_telemetry(self):
        from repro.telemetry import Telemetry, use_telemetry

        sequential = Telemetry()
        with use_telemetry(sequential):
            run_repetitions_many([SPEC], repetitions=2, base_seed=50, workers=1)
        parallel = Telemetry()
        with use_telemetry(parallel):
            run_repetitions_many([SPEC], repetitions=2, base_seed=50, workers=2)
        assert dict(parallel.summary().counters) == dict(sequential.summary().counters)
        assert dict(parallel.summary().event_counts) == dict(
            sequential.summary().event_counts
        )

    def test_orchestrated_run_collects_worker_telemetry(self, tmp_path):
        from repro.telemetry import Telemetry, use_telemetry

        sequential = Telemetry()
        with use_telemetry(sequential):
            run_repetitions_many([SPEC], repetitions=2, base_seed=50, workers=1)
        merged = Telemetry()
        with RunStore(tmp_path / "s.db") as store:
            with use_telemetry(merged):
                with OrchestrationContext(store=store, workers=2):
                    run_repetitions_many([SPEC], repetitions=2, base_seed=50)
        assert dict(merged.summary().counters) == dict(sequential.summary().counters)


class TestFuzzStore:
    def test_fuzz_persists_and_resumes(self, tmp_path, monkeypatch):
        from repro.faults import fuzz as fuzz_mod

        with RunStore(tmp_path / "f.db") as store:
            report = fuzz_mod.fuzz(runs=2, seed=7, differential=False, store=store)
            assert store.counts()["done"] == 2
            rows = store.units(kind="fuzz")
            assert len(rows) == 2

            # Resuming must replay verdicts without re-simulating anything.
            def _boom(*args, **kwargs):
                raise AssertionError("resume must not re-run cases")

            monkeypatch.setattr(fuzz_mod, "run_case", _boom)
            replayed = fuzz_mod.fuzz(
                runs=2, seed=7, differential=False, store=store
            )
            assert replayed.ok == report.ok
            assert len(replayed.failures) == len(report.failures)


class TestErrorTypes:
    def test_work_unit_error_is_picklable_and_named(self):
        import pickle

        error = WorkUnitError("rng+baseline+v10", 42, "KeyError: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.label == "rng+baseline+v10"
        assert clone.seed == 42
        assert "seed 42" in str(clone)

    def test_unit_timeout_is_work_unit_error(self):
        assert issubclass(UnitTimeoutError, WorkUnitError)
