"""Tests for repro.routing.geographic: GFG/GPSR over effective topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.graphs import is_connected, unit_disk_graph
from repro.routing.geographic import GeographicRouter, gabriel_planarise


def grid_positions(rows, cols, spacing=10.0):
    pts = [(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]
    return np.asarray(pts, dtype=np.float64)


class TestGabrielPlanarise:
    def test_removes_crossing_diagonals(self):
        # Square + center, complete graph: the center sits strictly inside
        # each diagonal's diametral disk, so both crossing diagonals go;
        # the sides stay (the center is exactly ON their diametral circle).
        pts = np.array(
            [[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0], [5.0, 5.0]]
        )
        adj = np.ones((5, 5), dtype=bool) & ~np.eye(5, dtype=bool)
        planar = gabriel_planarise(adj, pts)
        assert not planar[0, 2] and not planar[1, 3]
        assert planar[0, 1] and planar[1, 2] and planar[2, 3] and planar[3, 0]

    def test_subset_of_input(self, rng):
        pts = rng.random((20, 2)) * 100
        adj = unit_disk_graph(pts, 40.0)
        planar = gabriel_planarise(adj, pts)
        assert not (planar & ~adj).any()

    def test_preserves_connectivity(self, rng):
        pts = rng.random((25, 2)) * 100
        adj = unit_disk_graph(pts, 45.0)
        if not is_connected(adj):
            pytest.skip("disconnected input")
        assert is_connected(gabriel_planarise(adj, pts))

    def test_witness_must_be_common_neighbor(self):
        # A node inside the diametral disk but adjacent to neither
        # endpoint cannot remove the edge (local planarisation rule).
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 1.0]])
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        planar = gabriel_planarise(adj, pts)
        assert planar[0, 1]


class TestGreedyRouting:
    def test_direct_neighbor(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0]])
        adj = np.array([[False, True], [True, False]])
        result = GeographicRouter(adj, pts).route(0, 1)
        assert result.delivered and result.path == (0, 1)
        assert result.greedy_hops == 1 and result.perimeter_hops == 0

    def test_straight_chain(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0], [30.0, 0.0]])
        adj = unit_disk_graph(pts, 12.0)
        result = GeographicRouter(adj, pts).route(0, 3)
        assert result.delivered
        assert result.path == (0, 1, 2, 3)

    def test_source_is_destination(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0]])
        adj = unit_disk_graph(pts, 10.0)
        result = GeographicRouter(adj, pts).route(1, 1)
        assert result.delivered and result.hops == 0

    def test_grid_routing_full_pairwise(self):
        pts = grid_positions(4, 4)
        adj = unit_disk_graph(pts, 15.0)  # 4-neighborhood + diagonals
        router = GeographicRouter(adj, pts)
        for s in range(16):
            for d in range(16):
                assert router.route(s, d).delivered

    def test_invalid_nodes(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0]])
        adj = unit_disk_graph(pts, 10.0)
        with pytest.raises(ValueError):
            GeographicRouter(adj, pts).route(0, 7)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            GeographicRouter(np.zeros((2, 2), dtype=bool), np.zeros((3, 2)))


class TestPerimeterRecovery:
    def _void_topology(self):
        """A C-shaped wall: greedy from the left tip dead-ends; only face
        routing gets around the void."""
        pts = np.array([
            [0.0, 0.0],    # 0 source
            [10.0, 10.0],  # 1 upper wall
            [10.0, -10.0], # 2 lower wall
            [20.0, 14.0],  # 3
            [20.0, -14.0], # 4
            [30.0, 10.0],  # 5
            [30.0, -10.0], # 6
            [40.0, 0.0],   # 7 destination (behind the void)
        ])
        adj = np.zeros((8, 8), dtype=bool)
        edges = [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7), (6, 7)]
        for u, v in edges:
            adj[u, v] = adj[v, u] = True
        return pts, adj

    def test_routes_around_void(self):
        pts, adj = self._void_topology()
        result = GeographicRouter(adj, pts).route(0, 7)
        assert result.delivered
        assert result.hops >= 4

    def test_perimeter_mode_engaged_when_greedy_stuck(self):
        # Source's only neighbors are both FARTHER from the destination.
        pts = np.array([
            [20.0, 0.0],   # 0 source (local minimum towards dest at x=40)
            [10.0, 15.0],  # 1
            [10.0, -15.0], # 2
            [25.0, 25.0],  # 3
            [25.0, -25.0], # 4
            [40.0, 0.1],   # 5 destination
        ])
        adj = np.zeros((6, 6), dtype=bool)
        for u, v in [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]:
            adj[u, v] = adj[v, u] = True
        result = GeographicRouter(adj, pts).route(0, 5)
        assert result.delivered
        assert result.perimeter_hops >= 1

    def test_unreachable_component_not_delivered(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [100.0, 0.0]])
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        result = GeographicRouter(adj, pts).route(0, 2)
        assert not result.delivered

    def test_ttl_terminates(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [100.0, 0.0]])
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        result = GeographicRouter(adj, pts, max_hops=3).route(0, 2)
        assert result.hops <= 3


class TestOnEffectiveTopology:
    """GFG over the simulator's snapshots — the integration the paper's
    mobility-tolerant story promises."""

    def _snapshot(self, mechanism="view-sync", buffer=30.0, seed=0):
        from repro.analysis.experiment import ExperimentSpec, build_world
        from repro.mobility.base import Area
        from repro.sim.config import ScenarioConfig

        cfg = ScenarioConfig(
            n_nodes=30, area=Area(493.0, 493.0), normal_range=250.0,
            duration=8.0, warmup=2.0, sample_rate=1.0,
        )
        spec = ExperimentSpec(
            protocol="gabriel", mechanism=mechanism, buffer_width=buffer,
            mean_speed=10.0, config=cfg,
        )
        world = build_world(spec, seed=seed)
        world.run_until(6.0)
        return world.snapshot()

    def test_unicast_works_on_maintained_topology(self):
        snap = self._snapshot()
        adj = snap.effective_bidirectional()
        if not is_connected(adj):
            pytest.skip("snapshot disconnected for this seed")
        router = GeographicRouter(adj, snap.positions)
        results = router.route_many([(0, 29), (5, 20), (12, 3)])
        assert all(r.delivered for r in results)

    def test_gabriel_topology_is_its_own_planarisation(self):
        # Gabriel-protocol logical topologies satisfy the Gabriel
        # condition by construction — face routing needs no extra pruning.
        snap = self._snapshot()
        adj = snap.logical & snap.logical.T
        planar = gabriel_planarise(adj, snap.positions)
        # planarisation removes (almost) nothing: allow asymmetric
        # decisions at the mobility boundary.
        removed = (adj & ~planar).sum()
        assert removed <= 0.1 * max(adj.sum(), 1)
