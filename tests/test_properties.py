"""Property-based tests (hypothesis) for the paper's theorems.

- Theorem 1: consistent views + any removal condition => connected logical
  topology whenever the original topology is connected.
- Theorem 2: one Hello version per node in use => views are consistent.
- Theorem 3: bounded view-time spread + k = ceil(delta/Delta)+1 retained
  Hellos => weakly consistent views.
- Theorem 4: weakly consistent views + enhanced conditions => connected
  logical topology.
- Engine determinism and trajectory sanity under random inputs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_hello, make_view
from repro.core.tables import NeighborTable
from repro.core.views import views_consistent, views_weakly_consistent
from repro.geometry.graphs import is_connected, unit_disk_graph
from repro.mobility.base import Area
from repro.mobility.waypoint import RandomWaypoint
from repro.protocols import MstProtocol, RngProtocol, Spt2Protocol, Spt4Protocol

CONDITION_PROTOCOLS = [RngProtocol(), Spt2Protocol(), Spt4Protocol(), MstProtocol()]


def _points(draw, n_min=4, n_max=12, span=100.0):
    n = draw(st.integers(n_min, n_max))
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(0, span, allow_nan=False, width=32),
                st.floats(0, span, allow_nan=False, width=32),
            ),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return np.asarray(coords, dtype=np.float64)


def consistent_views_of(points: np.ndarray, normal_range: float):
    views = []
    n = len(points)
    for owner in range(n):
        members = {owner: tuple(points[owner])}
        for other in range(n):
            d = math.hypot(*(points[other] - points[owner]))
            if other != owner and d <= normal_range:
                members[other] = tuple(points[other])
        views.append(make_view(owner, members, normal_range=normal_range))
    return views


def logical_union(protocol, views, n):
    adj = np.zeros((n, n), dtype=bool)
    for view in views:
        for v in protocol.select(view).logical_neighbors:
            adj[view.owner, v] = True
    # The logical topology is the union of logical neighbor sets.
    return adj | adj.T


class TestTheorem1:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_consistent_views_preserve_connectivity(self, data):
        points = _points(data.draw)
        normal_range = data.draw(st.floats(30.0, 160.0))
        if not is_connected(unit_disk_graph(points, normal_range)):
            return  # premise not met
        views = consistent_views_of(points, normal_range)
        for protocol in CONDITION_PROTOCOLS:
            adj = logical_union(protocol, views, len(points))
            assert is_connected(adj), f"{protocol.name} partitioned the topology"

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_consistent_views_predicate_holds(self, data):
        points = _points(data.draw)
        views = consistent_views_of(points, 80.0)
        assert views_consistent(views)


class TestTheorem2:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_single_version_in_use_implies_consistency(self, data):
        # Every node's table holds exactly the version-1 Hello of everyone.
        points = _points(data.draw, n_min=3, n_max=8)
        n = len(points)
        views = []
        for owner in range(n):
            table = NeighborTable(owner=owner, normal_range=200.0, expiry=100.0)
            table.record_own(make_hello(owner, tuple(points[owner]), version=1))
            for other in range(n):
                if other != owner:
                    table.record_hello(
                        make_hello(other, tuple(points[other]), version=1)
                    )
            views.append(table.versioned_view(1.0, version=1))
        assert views_consistent(views)


class TestTheorem3:
    @settings(max_examples=15, deadline=None)
    @given(
        delta=st.floats(0.1, 3.0),
        interval=st.floats(0.5, 2.0),
        seed=st.integers(0, 10_000),
    )
    def test_history_depth_guarantees_weak_consistency(self, delta, interval, seed):
        """Nodes move, advertise every *interval*, and sample views at
        times spread over *delta*; k = ceil(delta/interval)+1 retained
        Hellos must leave a common version => weak consistency."""
        from repro.core.buffer_zone import required_history_depth

        rng = np.random.default_rng(seed)
        k = required_history_depth(delta, interval)
        n = 5
        base = rng.random((n, 2)) * 50
        drift = rng.normal(0, 5.0, size=(n, 2))

        def position(node: int, t: float) -> tuple[float, float]:
            p = base[node] + drift[node] * t
            return (float(p[0]), float(p[1]))

        # Hello m of node i is sent at t = m * interval (synchronous
        # enough; Theorem 3 only needs the fixed interval).
        horizon = 10.0 * interval
        n_hellos = int(horizon / interval)
        sample_base = 6.0 * interval
        sample_times = sample_base + rng.random(n) * delta

        views = []
        for owner in range(n):
            tau = float(sample_times[owner])
            table = NeighborTable(
                owner=owner, normal_range=1e9, history_depth=k, expiry=1e9
            )
            for m in range(n_hellos):
                t_send = m * interval
                if t_send > tau:
                    break
                for node in range(n):
                    hello = make_hello(
                        node, position(node, t_send), version=m + 1, sent_at=t_send
                    )
                    if node == owner:
                        table.record_own(hello)
                    else:
                        table.record_hello(hello)
            views.append(table.multi_view(tau))
        assert views_weakly_consistent(views)


class TestTheorem4:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 9999))
    def test_enhanced_conditions_preserve_connectivity(self, data, seed):
        """Two Hello generations with movement in between; every node
        retains both (k = 2, weakly consistent by shared versions); the
        conservative selections must keep the logical topology connected
        as long as the original (conservative any-pair) topology is."""
        rng = np.random.default_rng(seed)
        n = data.draw(st.integers(4, 9))
        normal_range = 80.0
        old = rng.random((n, 2)) * 100
        new = old + rng.normal(0, 8.0, size=(n, 2))

        # Original topology: links supported by the OLD generation (the
        # common version all nodes hold).
        if not is_connected(unit_disk_graph(old, normal_range)):
            return

        # Each node samples either before or after the second generation
        # lands, so some views have one version of some neighbors.
        views = []
        for owner in range(n):
            table = NeighborTable(
                owner=owner, normal_range=normal_range, history_depth=2, expiry=1e9
            )
            table.record_own(make_hello(owner, tuple(old[owner]), version=1, sent_at=0.0))
            sees_new_own = rng.random() < 0.5
            if sees_new_own:
                table.record_own(
                    make_hello(owner, tuple(new[owner]), version=2, sent_at=1.0)
                )
            for other in range(n):
                if other == owner:
                    continue
                table.record_hello(
                    make_hello(other, tuple(old[other]), version=1, sent_at=0.0)
                )
                if rng.random() < 0.7:
                    table.record_hello(
                        make_hello(other, tuple(new[other]), version=2, sent_at=1.0)
                    )
            views.append(table.multi_view(2.0))

        assert views_weakly_consistent(views)

        for protocol in CONDITION_PROTOCOLS:
            adj = np.zeros((n, n), dtype=bool)
            for view in views:
                for v in protocol.select_conservative(view).logical_neighbors:
                    adj[view.owner, v] = True
            adj = adj | adj.T
            # Every old-generation link is in the conservative views, so
            # the union selection must keep the old graph connected.
            assert is_connected(adj), f"{protocol.name} broke Theorem 4"


class TestEngineDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        times=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=40)
    )
    def test_events_always_fire_in_sorted_order(self, times):
        from repro.sim.engine import Engine

        eng = Engine()
        fired = []
        for t in times:
            eng.schedule_at(t, lambda t=t: fired.append(t))
        eng.run(until=101.0)
        assert fired == sorted(times)


class TestTrajectoryProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 99999),
        speed=st.floats(0.5, 120.0),
        n=st.integers(2, 20),
    )
    def test_waypoint_positions_always_inside_and_continuous(self, seed, speed, n):
        area = Area(300.0, 300.0)
        model = RandomWaypoint(
            area, n, horizon=15.0, mean_speed=speed, rng=np.random.default_rng(seed)
        )
        prev = model.positions(0.0)
        vmax = model.max_speed()
        assert vmax <= 2.0 * speed + 1e-9
        for t in np.linspace(0.0, 15.0, 31):
            pts = model.positions(float(t))
            assert area.contains(pts).all()
            step = np.linalg.norm(pts - prev, axis=1)
            assert (step <= vmax * 0.5 + 1e-6).all()
            prev = pts
