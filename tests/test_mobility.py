"""Tests for repro.mobility: trajectories and all mobility models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    Area,
    GaussMarkov,
    RandomWalk,
    RandomWaypoint,
    StaticPlacement,
    TrajectorySet,
)
from repro.util.errors import ConfigurationError


class TestArea:
    def test_contains_inside(self, area):
        assert area.contains(np.array([[450.0, 450.0]]))[0]

    def test_contains_boundary(self, area):
        assert area.contains(np.array([[0.0, 900.0]]))[0]

    def test_excludes_outside(self, area):
        assert not area.contains(np.array([[901.0, 0.0]]))[0]

    def test_sample_inside(self, area, rng):
        pts = area.sample(rng, 500)
        assert area.contains(pts).all()

    def test_diagonal(self):
        assert Area(3.0, 4.0).diagonal == pytest.approx(5.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Area(0.0, 10.0)


class TestTrajectorySet:
    def _simple(self):
        # One node: at (0,0) until t=1, then moving +x at 2 m/s.
        times = np.array([[0.0, 1.0]])
        points = np.array([[[0.0, 0.0], [0.0, 0.0]]])
        velocities = np.array([[[0.0, 0.0], [2.0, 0.0]]])
        return TrajectorySet(times, points, velocities, horizon=10.0)

    def test_interpolates_within_leg(self):
        traj = self._simple()
        assert traj.position(0, 2.5)[0] == pytest.approx(3.0)

    def test_positions_matches_position(self):
        traj = self._simple()
        assert np.allclose(traj.positions(2.5)[0], traj.position(0, 2.5))

    def test_clamps_before_zero_and_after_horizon(self):
        traj = self._simple()
        assert traj.position(0, -5.0)[0] == pytest.approx(0.0)
        assert traj.position(0, 50.0)[0] == pytest.approx(traj.position(0, 10.0)[0])

    def test_velocities_lookup(self):
        traj = self._simple()
        assert traj.velocities(0.5)[0, 0] == 0.0
        assert traj.velocities(1.5)[0, 0] == 2.0

    def test_max_speed(self):
        assert self._simple().max_speed() == pytest.approx(2.0)

    def test_rejects_inconsistent_shapes(self):
        with pytest.raises(ConfigurationError):
            TrajectorySet(
                np.zeros((1, 2)), np.zeros((1, 3, 2)), np.zeros((1, 2, 2)), 1.0
            )

    def test_rejects_nonzero_start(self):
        with pytest.raises(ConfigurationError):
            TrajectorySet(
                np.array([[1.0]]), np.zeros((1, 1, 2)), np.zeros((1, 1, 2)), 1.0
            )

    def test_rejects_decreasing_times(self):
        with pytest.raises(ConfigurationError):
            TrajectorySet(
                np.array([[0.0, 2.0, 1.0]]),
                np.zeros((1, 3, 2)),
                np.zeros((1, 3, 2)),
                5.0,
            )


class TestRandomWaypoint:
    @pytest.fixture
    def model(self, area, rng):
        return RandomWaypoint(area, 20, horizon=30.0, mean_speed=10.0, rng=rng)

    def test_stays_inside_area(self, model, area):
        for t in np.linspace(0, 30, 40):
            assert area.contains(model.positions(float(t))).all()

    def test_continuous_paths(self, model):
        # Positions over small dt move at most max_speed * dt.
        dt = 0.1
        vmax = model.max_speed()
        for t in np.linspace(0, 29, 30):
            step = np.linalg.norm(
                model.positions(float(t) + dt) - model.positions(float(t)), axis=1
            )
            assert (step <= vmax * dt + 1e-6).all()

    def test_max_speed_below_two_mean(self, model):
        assert model.max_speed() <= 2.0 * 10.0

    def test_speeds_bounded_below(self, area, rng):
        model = RandomWaypoint(area, 10, 20.0, mean_speed=10.0, rng=rng, speed_ratio=0.5)
        speeds = np.linalg.norm(model.trajectories.leg_velocities, axis=2)
        moving = speeds[speeds > 0]
        assert (moving >= 5.0 - 1e-9).all()
        assert (moving <= 15.0 + 1e-9).all()

    def test_nodes_actually_move(self, model):
        assert not np.allclose(model.positions(0.0), model.positions(10.0))

    def test_deterministic_given_rng_seed(self, area):
        a = RandomWaypoint(area, 5, 10.0, 10.0, np.random.default_rng(3)).positions(5.0)
        b = RandomWaypoint(area, 5, 10.0, 10.0, np.random.default_rng(3)).positions(5.0)
        assert np.allclose(a, b)

    def test_pause_time_freezes_at_waypoints(self, area, rng):
        model = RandomWaypoint(
            area, 5, 20.0, mean_speed=10.0, rng=rng, pause_time=2.0
        )
        vel = model.trajectories.leg_velocities
        speeds = np.linalg.norm(vel, axis=2)
        assert (speeds < 1e-9).any()  # some legs are pauses

    def test_rejects_speed_ratio_one(self, area, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(area, 5, 10.0, 10.0, rng, speed_ratio=1.0)


class TestRandomWalk:
    @pytest.fixture
    def model(self, area, rng):
        return RandomWalk(area, 15, horizon=20.0, speed=12.0, rng=rng)

    def test_stays_inside(self, model, area):
        for t in np.linspace(0, 20, 30):
            assert area.contains(model.positions(float(t))).all()

    def test_constant_speed_on_moving_legs(self, model):
        speeds = np.linalg.norm(model.trajectories.leg_velocities, axis=2)
        moving = speeds[speeds > 1e-9]
        assert np.allclose(moving, 12.0)

    def test_reflection_changes_direction(self, model):
        # With a 20s horizon at 12 m/s in a 900m box, direction changes occur.
        vel = model.trajectories.leg_velocities
        assert vel.shape[1] > 1


class TestGaussMarkov:
    @pytest.fixture
    def model(self, area, rng):
        return GaussMarkov(area, 15, horizon=20.0, mean_speed=10.0, rng=rng)

    def test_stays_inside(self, model, area):
        for t in np.linspace(0, 20, 30):
            assert area.contains(model.positions(float(t))).all()

    def test_alpha_one_keeps_direction(self, area, rng):
        model = GaussMarkov(
            area, 5, 5.0, mean_speed=10.0, rng=rng, alpha=1.0, direction_sigma=0.0
        )
        vel = model.trajectories.leg_velocities
        # with alpha=1 and no noise, velocity only changes on wall bounces
        first = vel[:, 0]
        speeds = np.linalg.norm(first, axis=1)
        assert np.allclose(speeds, 10.0, rtol=1e-6)

    def test_speed_floor(self, model):
        speeds = np.linalg.norm(model.trajectories.leg_velocities, axis=2)
        moving = speeds[speeds > 0]
        assert (moving >= 0.05 * 10.0 - 1e-9).all()


class TestStaticPlacement:
    def test_never_moves(self, area, rng):
        model = StaticPlacement(area, 10, horizon=50.0, rng=rng)
        assert np.allclose(model.positions(0.0), model.positions(50.0))

    def test_explicit_positions(self, area):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        model = StaticPlacement(area, 2, 10.0, positions=pts)
        assert np.allclose(model.positions(5.0), pts)

    def test_max_speed_zero(self, area, rng):
        assert StaticPlacement(area, 3, 10.0, rng=rng).max_speed() == 0.0

    def test_rejects_wrong_shape(self, area):
        with pytest.raises(ConfigurationError):
            StaticPlacement(area, 3, 10.0, positions=np.zeros((2, 2)))

    def test_rejects_positions_outside(self, area):
        with pytest.raises(ConfigurationError):
            StaticPlacement(area, 1, 10.0, positions=np.array([[1000.0, 0.0]]))

    def test_requires_rng_or_positions(self, area):
        with pytest.raises(ConfigurationError):
            StaticPlacement(area, 3, 10.0)


class TestModelValidation:
    def test_rejects_zero_nodes(self, area, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(area, 0, 10.0, 10.0, rng)

    def test_rejects_zero_horizon(self, area, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(area, 5, 0.0, 10.0, rng)

    def test_trajectories_cached(self, area, rng):
        model = RandomWaypoint(area, 5, 10.0, 10.0, rng)
        assert model.trajectories is model.trajectories
