"""Exact-equivalence tests: vectorized kernels vs. the loop oracle.

The vectorized witness-elimination / cone-scan kernels in
:mod:`repro.geometry.graphs` and the grid-backed unit-disk construction in
:mod:`repro.geometry.grid` must be *bit-identical* to the original loop
implementations (preserved in :mod:`repro.geometry._reference`) on every
layout — randomized clouds across sizes, collinear sets, duplicate points
and boundary-distance ties.  Any divergence is a correctness bug, not a
tolerance issue: downstream protocol validation compares adjacency
matrices exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry._reference import (
    gabriel_graph_loop,
    relative_neighborhood_graph_loop,
    unit_disk_graph_loop,
    yao_graph_loop,
)
from repro.geometry.graphs import (
    gabriel_graph,
    relative_neighborhood_graph,
    unit_disk_graph,
    yao_graph,
)
from repro.geometry.grid import DENSE_THRESHOLD, GraphBackend, GridIndex
from repro.geometry.points import pairwise_distances

SIZES = [1, 2, 10, 100, 500]
RADII = [None, 50.0, 250.0]


def random_layout(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random((n, 2)) * 900.0


def collinear_layout(n: int) -> np.ndarray:
    return np.stack([np.linspace(0.0, 900.0, max(n, 1)), np.zeros(max(n, 1))], axis=1)


def duplicate_layout(n: int, seed: int) -> np.ndarray:
    base = np.random.default_rng(seed).random((max(n // 2, 1), 2)) * 900.0
    return np.repeat(base, 2, axis=0)[:n]


def layouts(n: int, seed: int):
    yield "random", random_layout(n, seed)
    yield "collinear", collinear_layout(n)
    yield "duplicates", duplicate_layout(n, seed)


@pytest.mark.parametrize("n", SIZES)
def test_rng_gabriel_match_loop_oracle(n):
    for name, pts in layouts(n, seed=n):
        for radius in RADII:
            got = relative_neighborhood_graph(pts, radius)
            want = relative_neighborhood_graph_loop(pts, radius)
            assert np.array_equal(got, want), f"RNG n={n} {name} r={radius}"
            got = gabriel_graph(pts, radius)
            want = gabriel_graph_loop(pts, radius)
            assert np.array_equal(got, want), f"Gabriel n={n} {name} r={radius}"


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [1, 4, 6])
def test_yao_matches_loop_oracle(n, k):
    for name, pts in layouts(n, seed=3 * n + k):
        for radius in (None, 250.0):
            got = yao_graph(pts, k, radius)
            want = yao_graph_loop(pts, k, radius)
            assert np.array_equal(got, want), f"Yao n={n} k={k} {name} r={radius}"


def test_yao_tie_break_matches_argmin_semantics():
    # Two equidistant neighbors in the same cone: the loop oracle keeps the
    # one with the smaller index (np.argmin takes the first minimum).
    pts = np.array([[0.0, 0.0], [10.0, 1.0], [10.0, -1.0], [10.0, 1.0]])
    assert np.array_equal(yao_graph(pts, 1), yao_graph_loop(pts, 1))


@pytest.mark.parametrize("n", SIZES)
def test_unit_disk_grid_matches_dense(n):
    for name, pts in layouts(n, seed=7 * n + 1):
        for radius in (25.0, 250.0):
            dense = unit_disk_graph_loop(pts, radius)
            assert np.array_equal(
                GridIndex(pts, cell_size=radius).unit_disk(radius), dense
            ), f"grid n={n} {name} r={radius}"
            assert np.array_equal(
                GraphBackend(pts, mode="grid").unit_disk(radius), dense
            ), f"backend n={n} {name} r={radius}"
            assert np.array_equal(unit_disk_graph(pts, radius), dense)


def test_unit_disk_boundary_tie_identical_on_grid_and_dense():
    # Distance exactly equal to the radius, including across a cell border.
    pts = np.array([[0.0, 0.0], [30.0, 0.0], [60.0, 0.0], [30.0, 30.0]])
    dense = unit_disk_graph_loop(pts, 30.0)
    assert dense[0, 1] and dense[1, 3]
    assert np.array_equal(GridIndex(pts, cell_size=30.0).unit_disk(30.0), dense)


def test_unit_disk_dispatches_to_grid_at_scale():
    n = DENSE_THRESHOLD + 10
    pts = random_layout(n, seed=5)
    dense = unit_disk_graph_loop(pts, 100.0)
    assert np.array_equal(unit_disk_graph(pts, 100.0), dense)


def test_unit_disk_accepts_precomputed_dist():
    pts = random_layout(50, seed=11)
    dist = pairwise_distances(pts)
    assert np.array_equal(
        unit_disk_graph(pts, 100.0, dist=dist), unit_disk_graph_loop(pts, 100.0)
    )


def test_kernels_accept_precomputed_dist():
    pts = random_layout(80, seed=13)
    dist = pairwise_distances(pts)
    assert np.array_equal(
        relative_neighborhood_graph(pts, 250.0, dist=dist),
        relative_neighborhood_graph_loop(pts, 250.0),
    )
    assert np.array_equal(
        gabriel_graph(pts, 250.0, dist=dist), gabriel_graph_loop(pts, 250.0)
    )
    assert np.array_equal(
        yao_graph(pts, 6, 250.0, dist=dist), yao_graph_loop(pts, 6, 250.0)
    )


def test_dist_shape_mismatch_rejected():
    pts = random_layout(10, seed=1)
    with pytest.raises(ValueError, match="dist has shape"):
        relative_neighborhood_graph(pts, 100.0, dist=np.zeros((4, 4)))


class TestGridIndex:
    def test_empty_and_single_point(self):
        empty = GridIndex(np.empty((0, 2)), cell_size=10.0)
        assert empty.unit_disk(10.0).shape == (0, 0)
        assert empty.neighbors_within(np.array([0.0, 0.0]), 10.0).size == 0
        one = GridIndex(np.array([[3.0, 4.0]]), cell_size=10.0)
        assert not one.unit_disk(10.0).any()
        assert list(one.neighbors_within(np.array([0.0, 0.0]), 5.0)) == [0]

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex(np.zeros((2, 2)), cell_size=0.0)

    def test_negative_coordinates(self):
        pts = np.array([[-100.0, -100.0], [-70.0, -100.0], [100.0, 100.0]])
        dense = unit_disk_graph_loop(pts, 30.0)
        assert np.array_equal(GridIndex(pts, cell_size=30.0).unit_disk(30.0), dense)

    def test_query_radius_larger_than_cell(self):
        pts = random_layout(100, seed=21)
        index = GridIndex(pts, cell_size=20.0)
        dense = unit_disk_graph_loop(pts, 75.0)
        assert np.array_equal(index.unit_disk(75.0), dense)

    def test_backend_caches_distance_matrix(self):
        pts = random_layout(30, seed=2)
        backend = GraphBackend(pts, mode="dense")
        assert backend.distances() is backend.distances()

    def test_backend_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            GraphBackend(np.zeros((2, 2)), mode="quantum")
