"""Tests for repro.analysis: specs, runners, scales, report formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import (
    ExperimentSpec,
    build_manager,
    build_mobility,
    build_world,
    run_once,
    run_repetitions,
)
from repro.analysis.figures import (
    FigurePoint,
    FigureResult,
    FigureSeries,
    minimal_tolerating_buffer,
)
from repro.analysis.report import format_kv, format_table, rows_to_csv, write_csv
from repro.analysis.scales import PAPER, QUICK, SMOKE, Scale
from repro.metrics.stats import Estimate
from repro.mobility.base import Area
from repro.mobility.static import StaticPlacement
from repro.mobility.waypoint import RandomWaypoint
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError
from repro.util.randomness import SeedSequenceFactory


TINY = ScenarioConfig(
    n_nodes=12,
    area=Area(300.0, 300.0),
    normal_range=150.0,
    duration=6.0,
    warmup=2.0,
    sample_rate=1.0,
)


class TestExperimentSpec:
    def test_describe_encodes_config(self):
        spec = ExperimentSpec(
            protocol="mst", mechanism="view-sync", buffer_width=10.0,
            physical_neighbor_mode=True, mean_speed=40.0,
        )
        assert spec.describe() == "mst+view-sync+buf10+pn+v40"

    def test_custom_label_wins(self):
        assert ExperimentSpec(label="hello").describe() == "hello"

    def test_with_creates_modified_copy(self):
        spec = ExperimentSpec(mean_speed=1.0)
        fast = spec.with_(mean_speed=80.0)
        assert fast.mean_speed == 80.0 and spec.mean_speed == 1.0

    def test_rejects_negative_buffer(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(buffer_width=-1.0)


class TestBuilders:
    def test_build_manager_wires_all_parts(self):
        spec = ExperimentSpec(
            protocol="spt4", mechanism="weak", buffer_width=5.0,
            physical_neighbor_mode=True,
        )
        manager = build_manager(spec)
        assert manager.protocol.name == "spt4"
        assert manager.mechanism.name == "weak"
        assert manager.buffer_policy.width == 5.0
        assert manager.physical_neighbor_mode

    def test_buffer_capped_at_normal_range(self):
        spec = ExperimentSpec(buffer_width=1000.0, config=TINY)
        manager = build_manager(spec)
        assert manager.buffer_policy.cap == TINY.normal_range

    def test_zero_speed_gives_static_model(self):
        spec = ExperimentSpec(mean_speed=0.0, config=TINY)
        rng = SeedSequenceFactory(0).rng("m")
        assert isinstance(build_mobility(spec, rng), StaticPlacement)

    def test_positive_speed_gives_waypoint(self):
        spec = ExperimentSpec(mean_speed=5.0, config=TINY)
        rng = SeedSequenceFactory(0).rng("m")
        assert isinstance(build_mobility(spec, rng), RandomWaypoint)

    def test_build_world_deterministic(self):
        spec = ExperimentSpec(mean_speed=5.0, config=TINY)
        a = build_world(spec, seed=4)
        b = build_world(spec, seed=4)
        assert np.allclose(a.positions(3.0), b.positions(3.0))


class TestRunOnce:
    def test_series_lengths_match_samples(self):
        spec = ExperimentSpec(mean_speed=5.0, config=TINY)
        result = run_once(spec, seed=1)
        expected = TINY.n_samples + 1  # inclusive endpoint grid
        assert len(result.delivery_ratios) == expected
        assert len(result.mean_extended_ranges) == expected

    def test_metrics_in_valid_ranges(self):
        spec = ExperimentSpec(mean_speed=20.0, config=TINY)
        result = run_once(spec, seed=2)
        assert 0.0 <= result.connectivity_ratio <= 1.0
        assert 0.0 <= result.mean_transmission_range <= TINY.normal_range
        assert result.mean_logical_degree >= 0.0

    def test_reproducible(self):
        spec = ExperimentSpec(mean_speed=10.0, config=TINY)
        a = run_once(spec, seed=3)
        b = run_once(spec, seed=3)
        assert np.array_equal(a.delivery_ratios, b.delivery_ratios)

    def test_channel_stats_propagated(self):
        spec = ExperimentSpec(mean_speed=5.0, config=TINY)
        result = run_once(spec, seed=1)
        assert result.stats.hello_messages > 0


class TestRunRepetitions:
    def test_aggregates_carry_ci(self):
        spec = ExperimentSpec(mean_speed=10.0, config=TINY)
        agg = run_repetitions(spec, repetitions=3, base_seed=10)
        assert agg.n_repetitions == 3
        assert isinstance(agg.connectivity, Estimate)
        assert agg.connectivity.n == 3

    def test_row_structure(self):
        spec = ExperimentSpec(mean_speed=10.0, config=TINY)
        agg = run_repetitions(spec, repetitions=2, base_seed=10)
        row = agg.row()
        assert {"label", "connectivity", "tx_range", "speed"} <= set(row)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            run_repetitions(ExperimentSpec(config=TINY), repetitions=0)


class TestScales:
    def test_paper_scale_matches_section_5(self):
        assert PAPER.n_nodes == 100
        assert PAPER.duration == 100.0
        assert PAPER.sample_rate == 10.0
        assert PAPER.repetitions == 20
        assert PAPER.speeds == (1.0, 20.0, 40.0, 80.0, 160.0)

    def test_config_materialisation(self):
        cfg = QUICK.config()
        assert cfg.n_nodes == QUICK.n_nodes
        assert cfg.duration == QUICK.duration

    def test_config_overrides(self):
        cfg = QUICK.config(n_nodes=7)
        assert cfg.n_nodes == 7

    def test_rejects_empty_speeds(self):
        with pytest.raises(ValueError):
            Scale(name="bad", speeds=())

    def test_smoke_is_smallest(self):
        assert SMOKE.n_nodes <= QUICK.n_nodes <= PAPER.n_nodes


class TestFigureStructures:
    def _figure(self):
        def agg(conn):
            from repro.analysis.experiment import AggregateResult

            est = Estimate(mean=conn, half_width=0.01, n=3)
            spec = ExperimentSpec(config=TINY)
            return AggregateResult(
                spec=spec, n_repetitions=3, connectivity=est,
                transmission_range=est, logical_degree=est,
                physical_degree=est, strict_connectivity=est,
            )

        series = [
            FigureSeries(
                label="rng+buf10",
                x_name="speed_mps",
                points=(
                    FigurePoint(1.0, agg(0.95)),
                    FigurePoint(40.0, agg(0.92)),
                    FigurePoint(160.0, agg(0.4)),
                ),
            ),
            FigureSeries(
                label="rng+buf0",
                x_name="speed_mps",
                points=(FigurePoint(1.0, agg(0.5)), FigurePoint(40.0, agg(0.2))),
            ),
        ]
        return FigureResult(
            figure_id="figX", title="test", scale=SMOKE, series=tuple(series)
        )

    def test_rows_flatten_series(self):
        fig = self._figure()
        rows = fig.rows()
        assert len(rows) == 5
        assert rows[0]["series"] == "rng+buf10"

    def test_series_lookup(self):
        fig = self._figure()
        assert fig.series_by_label("rng+buf0").xs() == [1.0, 40.0]
        with pytest.raises(KeyError):
            fig.series_by_label("nope")

    def test_y_extraction(self):
        fig = self._figure()
        assert fig.series_by_label("rng+buf10").y() == [0.95, 0.92, 0.4]

    def test_minimal_tolerating_buffer(self):
        fig = self._figure()
        # buf10 holds >= 0.9 at speeds <= 40; buf0 does not.
        assert minimal_tolerating_buffer(fig, "rng") == 10.0

    def test_minimal_tolerating_buffer_none(self):
        fig = self._figure()
        assert minimal_tolerating_buffer(fig, "rng", target=0.99) is None

    def test_format_contains_title(self):
        assert "figX" in self._figure().format()


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1.0, "b": "x"}, {"a": 22.5, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_table_bools_and_none(self):
        text = format_table([{"x": True, "y": None}])
        assert "yes" in text

    def test_rows_to_csv(self):
        csv_text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert csv_text.splitlines()[0] == "a,b"
        assert "3,4" in csv_text

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [{"a": 1}])
        assert path.read_text().startswith("a")

    def test_format_kv(self):
        text = format_kv({"alpha": 1, "beta": "two"}, title="cfg")
        assert text.splitlines()[0] == "cfg"
        assert "alpha" in text and "two" in text


class TestCompareFigures:
    def _figure(self, offset):
        from repro.analysis.experiment import AggregateResult
        from repro.analysis.figures import FigurePoint, FigureResult, FigureSeries
        from repro.analysis.scales import SMOKE

        def agg(conn):
            est = Estimate(mean=conn, half_width=0.0, n=1)
            return AggregateResult(
                spec=ExperimentSpec(config=TINY), n_repetitions=1,
                connectivity=est, transmission_range=est, logical_degree=est,
                physical_degree=est, strict_connectivity=est,
            )

        series = [
            FigureSeries(
                label="rng+buf10", x_name="speed_mps",
                points=(FigurePoint(1.0, agg(0.5 + offset)), FigurePoint(40.0, agg(0.3 + offset))),
            )
        ]
        return FigureResult(figure_id="f", title="t", scale=SMOKE, series=tuple(series))

    def test_deltas_computed(self):
        from repro.analysis.figures import compare_figures

        rows = compare_figures(self._figure(0.0), self._figure(0.2))
        assert len(rows) == 2
        for row in rows:
            assert row["delta"] == pytest.approx(0.2)

    def test_mismatched_series_skipped(self):
        from repro.analysis.figures import compare_figures

        a = self._figure(0.0)
        b = self._figure(0.0)
        object.__setattr__(b.series[0], "label", "other")
        assert compare_figures(a, b) == []
