"""Shared fixtures and view-building helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.views import Hello, LocalView, MultiVersionView
from repro.mobility.base import Area


@pytest.fixture
def rng():
    """A fixed-seed Generator; tests needing other seeds spawn their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def area():
    """The paper's 900 x 900 m deployment area."""
    return Area(900.0, 900.0)


def make_hello(
    sender: int,
    position: tuple[float, float],
    version: int = 1,
    sent_at: float = 0.0,
    timestamp: float | None = None,
) -> Hello:
    """Build a Hello with sensible defaults."""
    return Hello(
        sender=sender,
        version=version,
        position=(float(position[0]), float(position[1])),
        sent_at=sent_at,
        timestamp=sent_at if timestamp is None else timestamp,
    )


def make_view(
    owner: int,
    positions: dict[int, tuple[float, float]],
    normal_range: float = 100.0,
    sampled_at: float = 0.0,
) -> LocalView:
    """Single-version view of *owner*; *positions* maps every member
    (including the owner) to its advertised position."""
    own = make_hello(owner, positions[owner], sent_at=sampled_at)
    neighbors = {
        nid: make_hello(nid, pos, sent_at=sampled_at)
        for nid, pos in positions.items()
        if nid != owner
    }
    return LocalView(
        owner=owner,
        own_hello=own,
        neighbor_hellos=neighbors,
        normal_range=normal_range,
        sampled_at=sampled_at,
    )


def make_multi_view(
    owner: int,
    histories: dict[int, list[tuple[float, float]]],
    normal_range: float = 100.0,
    sampled_at: float = 0.0,
) -> MultiVersionView:
    """Multi-version view; *histories* maps members to position lists
    (oldest first), owner included."""
    def hellos(nid: int) -> list[Hello]:
        return [
            make_hello(nid, pos, version=i + 1, sent_at=sampled_at - (len(hist) - 1 - i))
            for i, pos in enumerate(hist)
        ]

    out = {}
    for nid, hist in histories.items():
        out[nid] = hellos(nid)
    return MultiVersionView(
        owner=owner,
        own_hellos=out[owner],
        neighbor_hellos={nid: hs for nid, hs in out.items() if nid != owner},
        normal_range=normal_range,
        sampled_at=sampled_at,
    )
