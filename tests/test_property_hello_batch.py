"""Batched vs scalar Hello pipeline: the bit-identity contract.

The batched pipeline (``hello_pipeline="batched"`` / the ``"auto"``
dispatch) must be observationally indistinguishable from the historical
scalar per-receiver path: same retained Hello histories, same table
tokens, same channel counters, same RNG stream consumption — across
consistency mechanisms, Hello loss, the collision model and clock
jitter.  These tests build *twin worlds* from identical configuration
and seed, run both, and compare every observable that decisions and
``RunStats`` derive from.

Also here: the scalar-route oracle discipline (faults force the scalar
path; ``"batched"`` + faults is a configuration error), the
``_drop_collided`` expiry boundary, :class:`NeighborState` ring/prune
semantics and the engine's handle-free ``schedule_batch``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import (
    BaselineConsistency,
    ProactiveConsistency,
    ReactiveConsistency,
    ViewSynchronization,
    WeakConsistency,
)
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.core.neighbor_state import NeighborState
from repro.core.tables import ColumnarNeighborTable, NeighborTable
from repro.core.views import Hello
from repro.faults.schedule import FaultSchedule, NodeOutage
from repro.mobility import Area, RandomWaypoint
from repro.protocols import RngProtocol
from repro.sim.config import ScenarioConfig
from repro.sim.engine import Engine
from repro.sim.world import NetworkWorld
from repro.util.errors import ConfigurationError, ScheduleError
from repro.util.randomness import SeedSequenceFactory

MECHANISMS = {
    "baseline": BaselineConsistency,
    "view-sync": ViewSynchronization,
    "proactive": ProactiveConsistency,
    "reactive": ReactiveConsistency,
    "weak": WeakConsistency,
}


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        n_nodes=10,
        area=Area(300.0, 300.0),
        normal_range=150.0,
        duration=5.0,
        sample_rate=2.0,
        warmup=1.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _world(cfg: ScenarioConfig, mechanism: str, seed: int, pipeline: str) -> NetworkWorld:
    """One world; twin calls with different *pipeline* share everything else."""
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWaypoint(
        cfg.area, cfg.n_nodes, cfg.duration, mean_speed=8.0, rng=seeds.rng("m")
    )
    manager = MobilitySensitiveTopologyControl(
        RngProtocol(),
        mechanism=MECHANISMS[mechanism](),
        buffer_policy=BufferZonePolicy(width=20.0, cap=cfg.normal_range),
    )
    return NetworkWorld(
        cfg, mobility, manager, seed=seed, hello_pipeline=pipeline
    )


def _assert_twins_identical(batched: NetworkWorld, scalar: NetworkWorld) -> None:
    """Every decision-relevant observable must match bit-for-bit.

    Table uids are process-global and differ between any two worlds, so
    tokens are compared component-wise past the uid.
    """
    assert batched._batched and not scalar._batched
    now = batched.engine.now
    assert now == scalar.engine.now
    assert batched.channel.stats.as_dict() == scalar.channel.stats.as_dict()
    for nb, ns in zip(batched.nodes, scalar.nodes):
        tb, ts = nb.table, ns.table
        assert nb.hellos_sent == ns.hellos_sent
        assert tb.mutations == ts.mutations
        assert tb.hellos_received == ts.hellos_received
        assert tb.full_token()[1:] == ts.full_token()[1:]
        assert tb.live_view_token(now)[1:] == ts.live_view_token(now)[1:]
        assert tb.known_neighbors() == ts.known_neighbors()
        assert tb.known_neighbors(now) == ts.known_neighbors(now)
        for neighbor in tb.known_neighbors():
            # Hello is a frozen value type: materialised columnar copies
            # must compare equal to the scalar deque contents, in order.
            assert tb.history_of(neighbor) == ts.history_of(neighbor)
            assert tb.message_versions_in_use(neighbor) == ts.message_versions_in_use(neighbor)
        assert tb.own_history == ts.own_history


class TestBatchedScalarBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        mechanism=st.sampled_from(sorted(MECHANISMS)),
        seed=st.integers(0, 2**16),
    )
    def test_ideal_channel(self, mechanism, seed):
        cfg = _config()
        batched = _world(cfg, mechanism, seed, "batched")
        scalar = _world(cfg, mechanism, seed, "scalar")
        batched.run_until(cfg.duration)
        scalar.run_until(cfg.duration)
        _assert_twins_identical(batched, scalar)

    @settings(max_examples=6, deadline=None)
    @given(
        mechanism=st.sampled_from(["baseline", "proactive", "weak"]),
        seed=st.integers(0, 2**16),
        loss=st.sampled_from([0.1, 0.3]),
    )
    def test_lossy_channel_consumes_rng_identically(self, mechanism, seed, loss):
        # The i.i.d. loss model draws one uniform per candidate receiver,
        # positionally: identical receiver arrays are the only way the twin
        # runs can agree on losses, deliveries and every downstream view.
        cfg = _config(hello_loss_rate=loss)
        batched = _world(cfg, mechanism, seed, "batched")
        scalar = _world(cfg, mechanism, seed, "scalar")
        batched.run_until(cfg.duration)
        scalar.run_until(cfg.duration)
        assert batched.channel.stats.hello_losses > 0
        _assert_twins_identical(batched, scalar)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_collision_model(self, seed):
        cfg = _config(hello_tx_duration=0.05)
        batched = _world(cfg, "view-sync", seed, "batched")
        scalar = _world(cfg, "view-sync", seed, "scalar")
        batched.run_until(cfg.duration)
        scalar.run_until(cfg.duration)
        _assert_twins_identical(batched, scalar)

    def test_snapshots_and_decisions_agree(self):
        cfg = _config(duration=6.0)
        batched = _world(cfg, "view-sync", 11, "batched")
        scalar = _world(cfg, "view-sync", 11, "scalar")
        batched.run_until(cfg.duration)
        scalar.run_until(cfg.duration)
        sb, ss = batched.snapshot(), scalar.snapshot()
        assert np.array_equal(sb.positions, ss.positions)
        assert np.array_equal(sb.extended_ranges, ss.extended_ranges)
        assert np.array_equal(sb.logical, ss.logical)


class TestPipelineDispatch:
    def test_auto_is_batched_without_faults(self):
        world = _world(_config(), "baseline", 1, "auto")
        assert world._batched
        assert all(isinstance(n.table, ColumnarNeighborTable) for n in world.nodes)

    def test_auto_routes_scalar_when_faults_armed(self):
        cfg = _config()
        seeds = SeedSequenceFactory(2)
        mobility = RandomWaypoint(
            cfg.area, cfg.n_nodes, cfg.duration, mean_speed=8.0, rng=seeds.rng("m")
        )
        schedule = FaultSchedule(events=(NodeOutage(node=0, start=1.0, end=3.0),))
        world = NetworkWorld(
            cfg,
            mobility,
            MobilitySensitiveTopologyControl(RngProtocol()),
            seed=2,
            faults=schedule,
        )
        assert not world._batched
        assert all(type(n.table) is NeighborTable for n in world.nodes)
        world.run_until(cfg.duration)  # the forced-scalar route still runs
        assert world.fault_stats()["fault_suppressed_sends"] > 0
        assert world.hello_pipeline_stats() == {}

    def test_batched_with_faults_is_a_configuration_error(self):
        cfg = _config()
        seeds = SeedSequenceFactory(3)
        mobility = RandomWaypoint(
            cfg.area, cfg.n_nodes, cfg.duration, mean_speed=8.0, rng=seeds.rng("m")
        )
        schedule = FaultSchedule(events=(NodeOutage(node=0, start=1.0, end=3.0),))
        with pytest.raises(ConfigurationError, match="fault"):
            NetworkWorld(
                cfg,
                mobility,
                MobilitySensitiveTopologyControl(RngProtocol()),
                seed=3,
                faults=schedule,
                hello_pipeline="batched",
            )

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ConfigurationError, match="hello_pipeline"):
            _world(_config(), "baseline", 1, "vectorised")

    def test_pipeline_stats_reported_on_batched_route(self):
        world = _world(_config(), "baseline", 4, "batched")
        world.run_until(3.0)
        stats = world.hello_pipeline_stats()
        assert stats["oracle_queries"] > 0
        assert stats["oracle_rebuilds"] >= 1
        assert stats["neighbor_slots"] > 0


class TestDropCollidedBoundary:
    """The airtime window is boundary-inclusive: age == window still collides."""

    @staticmethod
    def _world(window: float) -> NetworkWorld:
        return _world(_config(hello_tx_duration=window), "baseline", 5, "scalar")

    def test_entry_exactly_at_window_edge_still_on_air(self):
        world = self._world(0.1)
        origin = np.array([0.0, 0.0])
        none = np.empty(0, dtype=np.intp)
        world._drop_collided(0.0, 0, origin, none, np.empty((0, 2)))
        # Exactly window seconds later: t - entry[0] == window, kept on air,
        # so a receiver inside the earlier sender's range collides.
        receivers = np.array([3], dtype=np.intp)
        survivors = world._drop_collided(
            0.1, 1, np.array([50.0, 0.0]), receivers, np.array([[10.0, 0.0]])
        )
        assert survivors.size == 0
        assert world.channel.stats.collisions == 1

    def test_entry_just_past_window_is_pruned(self):
        world = self._world(0.1)
        origin = np.array([0.0, 0.0])
        none = np.empty(0, dtype=np.intp)
        world._drop_collided(0.0, 0, origin, none, np.empty((0, 2)))
        receivers = np.array([3], dtype=np.intp)
        survivors = world._drop_collided(
            0.1 + 1e-9, 1, np.array([50.0, 0.0]), receivers, np.array([[10.0, 0.0]])
        )
        assert survivors.tolist() == [3]
        assert world.channel.stats.collisions == 0
        assert len(world._recent_hellos) == 1  # only the new transmission


def _hello(sender: int, version: int, sent_at: float, x: float = 1.0) -> Hello:
    return Hello(
        sender=sender,
        version=version,
        position=(x, 2.0),
        sent_at=sent_at,
        timestamp=sent_at + 0.001,
    )


class TestNeighborState:
    def test_ring_evicts_oldest_beyond_depth(self):
        state = NeighborState(4, history_depth=3)
        for v in range(5):
            state.record_one(0, _hello(1, v, float(v)))
        history = state.history(0, 1)
        assert [h.version for h in history] == [2, 3, 4]
        assert state.hellos_received[0] == 5 and state.mutations[0] == 5

    def test_record_batch_equals_record_one(self):
        batch, one = NeighborState(6, 2), NeighborState(6, 2)
        receivers = np.array([0, 2, 5], dtype=np.intp)
        for v in range(3):
            hello = _hello(1, v, float(v))
            batch.record_batch(hello, receivers)  # second call hits the slot cache
            for rid in receivers:
                one.record_one(int(rid), hello)
        for rid in receivers:
            assert batch.history(int(rid), 1) == one.history(int(rid), 1)
            assert batch.senders(int(rid)) == one.senders(int(rid))
        assert np.array_equal(batch.mutations, one.mutations)
        assert np.array_equal(batch.hellos_received, one.hellos_received)

    def test_prune_drops_stale_and_restarts_history(self):
        state = NeighborState(2, 3)
        for v in range(3):
            state.record_batch(_hello(1, v, float(v)), np.array([0], dtype=np.intp))
        assert state.prune(0, now=10.0, expiry=2.5)
        assert state.history(0, 1) == ()
        assert state.senders(0) == []
        assert state.mutations[0] == 4  # one bump per pruning pass with drops
        # A later Hello starts a fresh depth-1 history, like a new deque.
        state.record_batch(_hello(1, 9, 11.0), np.array([0], dtype=np.intp))
        assert [h.version for h in state.history(0, 1)] == [9]

    def test_prune_without_stale_is_a_noop(self):
        state = NeighborState(2, 3)
        state.record_one(0, _hello(1, 0, 5.0))
        assert not state.prune(0, now=6.0, expiry=2.5)
        assert state.mutations[0] == 1

    def test_live_ids_preserve_insertion_order(self):
        state = NeighborState(2, 3)
        for sender in (7, 3, 5):
            state.record_one(0, _hello(sender, 0, 1.0))
        assert state.live_ids(0, now=2.0, expiry=2.5) == (7, 3, 5)
        assert list(state.latest_live(0, 2.0, 2.5)) == [7, 3, 5]


class TestScheduleBatch:
    def test_interleaves_with_schedule_at_in_seq_order(self):
        engine = Engine()
        seen: list[str] = []
        engine.schedule_at(1.0, seen.append, "a")
        engine.schedule_batch(1.0, seen.append, "b")
        engine.schedule_at(1.0, seen.append, "c")
        engine.run(until=2.0)
        assert seen == ["a", "b", "c"]

    def test_validates_like_schedule_at(self):
        engine = Engine()
        engine.run(until=1.0)
        with pytest.raises(ScheduleError, match="past"):
            engine.schedule_batch(0.5, lambda: None)
        with pytest.raises(ScheduleError, match="finite"):
            engine.schedule_batch(float("nan"), lambda: None)

    def test_counts_as_pending_and_clears(self):
        engine = Engine()
        engine.schedule_batch(1.0, lambda: None)
        handle = engine.schedule_at(1.5, lambda: None)
        assert engine.pending_events == 2
        engine.clear()
        assert engine.pending_events == 0
        assert handle.cancelled

    def test_compaction_keeps_handle_free_entries(self):
        engine = Engine()
        fired: list[int] = []
        engine.schedule_batch(1.0, fired.append, 1)
        # Cancel enough handled events that tombstones dominate and the
        # heap compacts; the handle-free entry must survive compaction.
        handles = [engine.schedule_at(2.0, fired.append, 99) for _ in range(8)]
        for handle in handles:
            handle.cancel()
        engine.run(until=3.0)
        assert fired == [1]
