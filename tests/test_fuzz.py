"""Tests for the differential fuzzer (repro.faults.fuzz).

The two load-bearing guarantees:

- shipped mechanisms survive a randomized fault campaign with zero
  oracle findings (soundness of both the stack and the oracles' slack
  accounting), and
- a deliberately broken mechanism (view synchronization without expiry
  filtering) is caught and shrunk to a minimal fault schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec
from repro.faults.fuzz import (
    BrokenViewSync,
    FuzzCase,
    build_fuzz_world,
    fuzz,
    load_case,
    random_case,
    run_case,
    save_case,
    shrink_case,
)
from repro.faults.schedule import FaultSchedule, HelloLossBurst, NodeOutage
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError
from repro.util.randomness import SeedSequenceFactory


def static_case(mechanism: str, schedule: FaultSchedule, seed: int = 11) -> FuzzCase:
    """A dense static scenario: stale views can only come from faults."""
    cfg = ScenarioConfig(
        n_nodes=14,
        area=Area(340.0, 340.0),
        duration=8.0,
        warmup=2.0,
        sample_rate=2.0,
    )
    spec = ExperimentSpec(
        protocol="rng", mechanism=mechanism, buffer_width=10.0,
        mean_speed=0.0, config=cfg,
    )
    return FuzzCase(spec=spec, schedule=schedule, seed=seed)


LONG_OUTAGE = FaultSchedule(
    events=(
        NodeOutage(node=2, start=2.0, end=7.5),
        HelloLossBurst(start=3.0, end=4.0, probability=0.5),
        NodeOutage(node=9, start=6.0, end=6.5),
    )
)


class TestCampaign:
    def test_shipped_mechanisms_survive_campaign(self):
        report = fuzz(runs=12, seed=0, differential=True)
        assert report.ok, [f.findings for f in report.failures]
        assert report.runs == 12

    def test_campaign_is_deterministic(self):
        a = fuzz(runs=4, seed=5, differential=False, shrink=False)
        b = fuzz(runs=5, seed=5, differential=False, shrink=False)
        # same seed => same case sequence, independent of run count
        assert a.seed == b.seed
        factory = SeedSequenceFactory(5)
        c1 = random_case(factory.rng("fuzz-case-0"), index=0)
        factory = SeedSequenceFactory(5)
        c2 = random_case(factory.rng("fuzz-case-0"), index=0)
        assert c1 == c2

    def test_deep_mode_runs_clean(self):
        report = fuzz(runs=3, seed=1, deep=True, differential=False)
        assert report.ok, [f.findings for f in report.failures]


class TestBrokenMechanismDetection:
    def test_broken_view_sync_caught_and_shrunk(self):
        case = static_case("broken-view-sync", LONG_OUTAGE)
        result = run_case(case)
        assert result.failed
        assert any("freshness" in f for f in result.findings)
        small = shrink_case(case)
        assert 1 <= len(small.schedule) <= 5
        assert run_case(small).failed
        # the surviving event is the long outage — the one fault whose
        # removal would mask the bug
        assert any(isinstance(e, NodeOutage) for e in small.schedule)

    def test_healthy_view_sync_passes_same_case(self):
        result = run_case(static_case("view-sync", LONG_OUTAGE))
        assert not result.failed, result.findings

    def test_broken_mechanism_passes_without_faults(self):
        # fault-free and static, nothing ever goes stale: the mutation is
        # observationally healthy, which is exactly why fuzzing needs
        # fault injection to expose it
        result = run_case(static_case("broken-view-sync", FaultSchedule()))
        assert not result.failed, result.findings

    def test_fuzz_campaign_finds_broken_mechanism(self, tmp_path):
        report = fuzz(
            runs=20,
            seed=3,
            differential=False,
            mechanisms=("broken-view-sync",),
            out_dir=tmp_path,
        )
        assert not report.ok
        assert report.saved, "failing cases must be serialized"
        for result in report.failures:
            assert len(result.case.schedule) <= 5
        replayed = load_case(report.saved[0])
        assert run_case(replayed).failed


class TestCaseSerialization:
    def test_json_round_trip(self):
        case = static_case("weak", LONG_OUTAGE)
        restored = FuzzCase.from_json(case.to_json())
        assert restored == case

    def test_save_load_with_findings(self, tmp_path):
        case = static_case("view-sync", LONG_OUTAGE, seed=3)
        path = save_case(case, tmp_path / "case.json", findings=["[x] boom"])
        assert load_case(path) == case

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            FuzzCase.from_dict({"format": "other/9"})

    def test_replay_reproduces_run_bit_identically(self):
        case = static_case("view-sync", LONG_OUTAGE, seed=21)
        replay = FuzzCase.from_json(case.to_json())
        a, b = build_fuzz_world(case), build_fuzz_world(replay)
        a.run_until(8.0)
        b.run_until(8.0)
        assert np.array_equal(a.positions(8.0), b.positions(8.0))
        assert a.channel.stats.as_dict() == b.channel.stats.as_dict()
        assert a.fault_stats() == b.fault_stats()


class TestBrokenViewSyncUnit:
    def test_matches_real_mechanism_on_fresh_views(self):
        fresh = static_case("view-sync", FaultSchedule(), seed=8)
        broken = static_case("broken-view-sync", FaultSchedule(), seed=8)
        a, b = build_fuzz_world(fresh), build_fuzz_world(broken)
        a.run_until(6.0)
        b.run_until(6.0)
        decisions_a = [
            (n.node_id, n.decision and n.decision.logical_neighbors)
            for n in a.nodes
        ]
        decisions_b = [
            (n.node_id, n.decision and n.decision.logical_neighbors)
            for n in b.nodes
        ]
        assert decisions_a == decisions_b

    def test_never_cached(self):
        case = static_case("broken-view-sync", FaultSchedule(), seed=8)
        world = build_fuzz_world(case)
        world.run_until(6.0)
        assert world.manager.cache_hits == 0
        assert world.manager.cache_misses == 0
        assert world.manager.cache_uncacheable > 0

    def test_registered_name(self):
        assert BrokenViewSync.name == "broken-view-sync"
        assert BrokenViewSync().decision_fingerprint(None, 0.0, None) is None
