"""Tests for repro.core.views: Hellos, local views, consistency predicates."""

from __future__ import annotations

import pytest

from conftest import make_hello, make_multi_view, make_view
from repro.core.costs import DistanceCost, EnergyCost
from repro.core.views import (
    Hello,
    LocalView,
    MultiVersionView,
    link_cost,
    views_consistent,
    views_weakly_consistent,
)
from repro.util.errors import ViewError


class TestHello:
    def test_distance_to(self):
        a = make_hello(0, (0.0, 0.0))
        b = make_hello(1, (3.0, 4.0))
        assert a.distance_to(b) == 5.0

    def test_frozen(self):
        h = make_hello(0, (0.0, 0.0))
        with pytest.raises(AttributeError):
            h.position = (1.0, 1.0)  # type: ignore[misc]

    def test_link_cost_uses_model(self):
        a = make_hello(0, (0.0, 0.0))
        b = make_hello(1, (2.0, 0.0))
        assert link_cost(a, b, DistanceCost()) == 2.0
        assert link_cost(a, b, EnergyCost(alpha=2)) == 4.0


class TestLocalView:
    def test_members_owner_first(self):
        view = make_view(5, {5: (0, 0), 2: (1, 0), 9: (2, 0)})
        assert view.members == [5, 2, 9]

    def test_position_and_hello_lookup(self):
        view = make_view(0, {0: (0, 0), 1: (3, 4)})
        assert view.position_of(1) == (3.0, 4.0)
        assert view.hello_of(0).sender == 0

    def test_missing_member_raises(self):
        view = make_view(0, {0: (0, 0), 1: (1, 1)})
        with pytest.raises(ViewError):
            view.hello_of(99)

    def test_has_link_respects_range(self):
        view = make_view(0, {0: (0, 0), 1: (50, 0), 2: (200, 0)}, normal_range=100.0)
        assert view.has_link(0, 1)
        assert not view.has_link(0, 2)
        assert not view.has_link(1, 1)

    def test_neighbor_to_neighbor_links_visible(self):
        view = make_view(0, {0: (0, 0), 1: (50, 0), 2: (80, 0)}, normal_range=100.0)
        assert view.has_link(1, 2)

    def test_owner_in_neighbors_rejected(self):
        own = make_hello(0, (0, 0))
        with pytest.raises(ViewError):
            LocalView(0, own, {0: own}, 100.0, 0.0)

    def test_wrong_own_sender_rejected(self):
        with pytest.raises(ViewError):
            LocalView(0, make_hello(1, (0, 0)), {}, 100.0, 0.0)

    def test_contains_and_len(self):
        view = make_view(0, {0: (0, 0), 1: (1, 1)})
        assert 0 in view and 1 in view and 7 not in view
        assert len(view) == 2

    def test_positions_ordering(self):
        view = make_view(3, {3: (1, 2), 1: (3, 4)})
        ids, pts = view.positions()
        assert ids == [3, 1]
        assert pts[0].tolist() == [1.0, 2.0]


class TestMultiVersionView:
    def test_cost_set_cross_product(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(4, 0), (6, 0)]})
        costs = view.cost_set(0, 1, DistanceCost())
        assert sorted(costs) == [4.0, 6.0]

    def test_cost_bounds(self):
        view = make_multi_view(0, {0: [(0, 0), (1, 0)], 1: [(4, 0), (6, 0)]})
        lo, hi = view.cost_bounds(0, 1, DistanceCost())
        assert lo == 3.0 and hi == 6.0

    def test_has_link_any_pair(self):
        view = make_multi_view(
            0, {0: [(0, 0)], 1: [(150, 0), (90, 0)]}, normal_range=100.0
        )
        assert view.has_link(0, 1)

    def test_no_link_when_all_pairs_far(self):
        view = make_multi_view(
            0, {0: [(0, 0)], 1: [(150, 0), (120, 0)]}, normal_range=100.0
        )
        assert not view.has_link(0, 1)

    def test_latest(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(4, 0), (6, 0)]})
        assert view.latest(1).position == (6.0, 0.0)

    def test_to_local_view_uses_latest(self):
        view = make_multi_view(0, {0: [(0, 0), (1, 1)], 1: [(4, 0), (6, 0)]})
        lv = view.to_local_view()
        assert lv.own_hello.position == (1.0, 1.0)
        assert lv.position_of(1) == (6.0, 0.0)

    def test_empty_own_history_rejected(self):
        with pytest.raises(ViewError):
            MultiVersionView(0, [], {}, 100.0, 0.0)

    def test_foreign_hello_in_history_rejected(self):
        with pytest.raises(ViewError):
            MultiVersionView(
                0,
                [make_hello(0, (0, 0))],
                {1: [make_hello(2, (1, 1))]},
                100.0,
                0.0,
            )


class TestViewsConsistent:
    def test_identical_views_consistent(self):
        a = make_view(0, {0: (0, 0), 1: (4, 0), 2: (8, 0)}, normal_range=10.0)
        b = make_view(1, {0: (0, 0), 1: (4, 0), 2: (8, 0)}, normal_range=10.0)
        assert views_consistent([a, b])

    def test_paper_fig2_views_inconsistent(self):
        # Fig. 2: w advertised at two positions; u sees the old, v the new.
        u_view = make_view(0, {0: (0, 0), 1: (5, 0), 2: (2, 5.6)}, normal_range=10.0)
        v_view = make_view(1, {0: (0, 0), 1: (5, 0), 2: (2, 3.2)}, normal_range=10.0)
        assert not views_consistent([u_view, v_view])

    def test_single_view_trivially_consistent(self):
        assert views_consistent([make_view(0, {0: (0, 0), 1: (1, 0)})])

    def test_disjoint_links_consistent(self):
        a = make_view(0, {0: (0, 0), 1: (4, 0)}, normal_range=10.0)
        b = make_view(2, {2: (100, 100), 3: (104, 100)}, normal_range=10.0)
        assert views_consistent([a, b])

    def test_tolerance_respected(self):
        a = make_view(0, {0: (0, 0), 1: (4, 0)}, normal_range=10.0)
        b = make_view(1, {0: (0, 0), 1: (4 + 1e-12, 0)}, normal_range=10.0)
        assert views_consistent([a, b])


class TestViewsWeaklyConsistent:
    def test_paper_example_weakly_consistent(self):
        # Section 4.2: Ce = {1,3,5} in u's view and {2,4,6} in v's view:
        # cMinMax = 5 >= cMaxMin = 2.  Realise costs as 1-D positions.
        u = make_multi_view(0, {0: [(0, 0)], 1: [(1, 0), (3, 0), (5, 0)]}, normal_range=50.0)
        v = make_multi_view(1, {1: [(0, 0)], 0: [(2, 0), (4, 0), (6, 0)]}, normal_range=50.0)
        assert views_weakly_consistent([u, v])

    def test_paper_example_weakly_inconsistent(self):
        # Ce = {1,3} vs {4,5}: cMinMax = 3 < cMaxMin = 4.
        u = make_multi_view(0, {0: [(0, 0)], 1: [(1, 0), (3, 0)]}, normal_range=50.0)
        v = make_multi_view(1, {1: [(0, 0)], 0: [(4, 0), (5, 0)]}, normal_range=50.0)
        assert not views_weakly_consistent([u, v])

    def test_overlapping_histories_consistent(self):
        # Both nodes retain the same two versions of each other.
        u = make_multi_view(0, {0: [(0, 0)], 1: [(4, 0), (6, 0)]}, normal_range=50.0)
        v = make_multi_view(1, {1: [(6, 0)], 0: [(0, 0)]}, normal_range=50.0)
        assert views_weakly_consistent([u, v])

    def test_single_view_trivially_weak_consistent(self):
        v = make_multi_view(0, {0: [(0, 0)], 1: [(4, 0)]})
        assert views_weakly_consistent([v])
