"""Tests for the energy metric, the collision MAC option, and topology maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, build_world, run_once
from repro.analysis.plotting import topology_map
from repro.metrics.energy import EnergyModel, flood_energy, mean_transmit_power_proxy
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.sim.flood import FloodResult, flood
from repro.sim.world import WorldSnapshot
from repro.util.errors import ConfigurationError


def snapshot_of(positions, logical, ranges):
    positions = np.asarray(positions, dtype=np.float64)
    diff = positions[:, None] - positions[None]
    dist = np.sqrt((diff**2).sum(-1))
    return WorldSnapshot(
        time=1.0, positions=positions, dist=dist,
        logical=np.asarray(logical, dtype=bool),
        actual_ranges=np.asarray(ranges, dtype=np.float64),
        extended_ranges=np.asarray(ranges, dtype=np.float64),
        normal_range=100.0,
    )


class TestEnergyModel:
    def test_per_message_scalar(self):
        assert EnergyModel(alpha=2).per_message(3.0) == 9.0

    def test_per_message_with_overhead(self):
        assert EnergyModel(alpha=2, overhead=5.0).per_message(3.0) == 14.0

    def test_vectorised(self):
        out = EnergyModel(alpha=2).per_message(np.array([1.0, 2.0]))
        assert np.allclose(out, [1.0, 4.0])

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(alpha=0.0)

    def test_flood_energy_counts_forwarders(self):
        snap = snapshot_of(
            [[0, 0], [10, 0], [20, 0]],
            np.zeros((3, 3), dtype=bool),
            [10.0, 10.0, 10.0],
        )
        result = FloodResult(
            source=0, reached=np.array([True, True, False]), transmissions=2
        )
        assert flood_energy(snap, result, EnergyModel(alpha=2)) == 200.0

    def test_mean_power_proxy_ignores_silent_nodes(self):
        snap = snapshot_of(
            [[0, 0], [10, 0]], np.zeros((2, 2), dtype=bool), [10.0, 0.0]
        )
        assert mean_transmit_power_proxy(snap, EnergyModel(alpha=2)) == 50.0

    def test_mean_power_all_silent(self):
        snap = snapshot_of([[0, 0], [10, 0]], np.zeros((2, 2), dtype=bool), [0.0, 0.0])
        assert mean_transmit_power_proxy(snap) == 0.0

    def test_energy4_penalises_long_links_more(self):
        snap = snapshot_of(
            [[0, 0], [50, 0]], np.zeros((2, 2), dtype=bool), [50.0, 50.0]
        )
        e2 = mean_transmit_power_proxy(snap, EnergyModel(alpha=2))
        e4 = mean_transmit_power_proxy(snap, EnergyModel(alpha=4))
        assert e4 > e2


class TestCollisionMac:
    def _cfg(self, tx_duration):
        return ScenarioConfig(
            n_nodes=25, area=Area(450.0, 450.0), normal_range=250.0,
            duration=8.0, warmup=2.0, sample_rate=1.0,
            hello_tx_duration=tx_duration,
        )

    def test_no_collisions_when_disabled(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=self._cfg(0.0))
        result = run_once(spec, seed=4)
        assert result.stats.collisions == 0

    def test_collisions_recorded_with_wide_window(self):
        # An exaggerated 50 ms airtime forces overlaps among 25 nodes at
        # ~1 Hz each.
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=self._cfg(0.05))
        result = run_once(spec, seed=4)
        assert result.stats.collisions > 0

    def test_collisions_degrade_or_preserve_connectivity(self):
        base = run_once(
            ExperimentSpec(protocol="rng", mechanism="view-sync", buffer_width=20.0,
                           mean_speed=10.0, config=self._cfg(0.0)), seed=4)
        lossy = run_once(
            ExperimentSpec(protocol="rng", mechanism="view-sync", buffer_width=20.0,
                           mean_speed=10.0, config=self._cfg(0.05)), seed=4)
        assert lossy.connectivity_ratio <= base.connectivity_ratio + 0.1

    def test_rejects_airtime_near_interval(self):
        with pytest.raises(ValueError):
            self._cfg(1.0)

    def test_world_prunes_recent_hellos(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=self._cfg(0.01))
        world = build_world(spec, seed=1)
        world.run_until(6.0)
        # the retention list stays bounded by the collision window
        assert len(world._recent_hellos) <= 25


class TestTopologyMap:
    def test_renders_nodes_and_links(self):
        logical = np.zeros((3, 3), dtype=bool)
        logical[0, 1] = logical[1, 0] = True
        snap = snapshot_of(
            [[0.0, 0.0], [100.0, 0.0], [50.0, 80.0]], logical, [100.0] * 3
        )
        art = topology_map(snap, width=40, height=12)
        assert "0" in art and "1" in art and "2" in art
        assert "." in art  # the 0-1 link

    def test_empty_snapshot(self):
        snap = snapshot_of(np.zeros((0, 2)), np.zeros((0, 0), dtype=bool), np.zeros(0))
        assert topology_map(snap) == "(empty network)"

    def test_live_snapshot_renders(self):
        cfg = ScenarioConfig(
            n_nodes=12, area=Area(312.0, 312.0), normal_range=250.0,
            duration=6.0, warmup=2.0, sample_rate=1.0,
        )
        spec = ExperimentSpec(protocol="mst", mean_speed=5.0, config=cfg)
        world = build_world(spec, seed=2)
        world.run_until(4.0)
        art = topology_map(world.snapshot())
        assert "12 nodes" in art
