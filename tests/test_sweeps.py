"""Tests for repro.analysis.sweeps: the generic grid-sweep utility."""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentSpec
from repro.analysis.sweeps import grid_sweep, sweep_rows
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError

TINY = ScenarioConfig(
    n_nodes=10,
    area=Area(285.0, 285.0),
    normal_range=250.0,
    duration=5.0,
    warmup=2.0,
    sample_rate=1.0,
)

BASE = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)


class TestGridSweep:
    def test_cartesian_product_size(self):
        points = grid_sweep(
            BASE,
            {"buffer_width": [0.0, 10.0], "mean_speed": [5.0, 20.0, 40.0]},
            repetitions=1,
            base_seed=70,
        )
        assert len(points) == 6

    def test_last_axis_fastest(self):
        points = grid_sweep(
            BASE,
            {"buffer_width": [0.0, 10.0], "mean_speed": [5.0, 20.0]},
            repetitions=1,
            base_seed=70,
        )
        assignments = [p.assignment for p in points]
        assert assignments[0] == {"buffer_width": 0.0, "mean_speed": 5.0}
        assert assignments[1] == {"buffer_width": 0.0, "mean_speed": 20.0}
        assert assignments[2] == {"buffer_width": 10.0, "mean_speed": 5.0}

    def test_config_prefixed_axis(self):
        points = grid_sweep(
            BASE,
            {"config.hello_interval": [0.5, 1.0]},
            repetitions=1,
            base_seed=70,
        )
        assert len(points) == 2
        assert points[0].result.spec.config.hello_interval == 0.5

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(BASE, {"warp_factor": [9]}, repetitions=1)

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(BASE, {"config.warp": [9]}, repetitions=1)

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(BASE, {}, repetitions=1)

    def test_results_carry_modified_specs(self):
        points = grid_sweep(BASE, {"protocol": ["mst", "spt2"]}, repetitions=1, base_seed=70)
        assert [p.result.spec.protocol for p in points] == ["mst", "spt2"]


class TestSweepRows:
    def test_rows_contain_axes_and_metrics(self):
        points = grid_sweep(BASE, {"buffer_width": [0.0, 20.0]}, repetitions=1, base_seed=70)
        rows = sweep_rows(points)
        assert len(rows) == 2
        assert {"buffer_width", "connectivity", "tx_range"} <= set(rows[0])

    def test_rows_order_matches_points(self):
        points = grid_sweep(BASE, {"buffer_width": [0.0, 20.0]}, repetitions=1, base_seed=70)
        rows = sweep_rows(points)
        assert rows[0]["buffer_width"] == 0.0
        assert rows[1]["buffer_width"] == 20.0
