"""Tests for repro.core.buffer_zone: Theorems 3 & 5 arithmetic and policy."""

from __future__ import annotations

import pytest

from repro.core.buffer_zone import (
    BufferZonePolicy,
    buffer_width,
    max_delay_bound,
    required_history_depth,
)
from repro.util.errors import ConfigurationError


class TestMaxDelayBound:
    def test_proactive_is_twice_delta_prime(self):
        assert max_delay_bound("proactive", 1.0, clock_skew=0.1) == pytest.approx(2.2)

    def test_reactive_adds_flood_delay(self):
        assert max_delay_bound("reactive", 1.0, flood_delay=0.05) == pytest.approx(1.05)

    def test_weak_scales_with_history(self):
        assert max_delay_bound("weak", 1.0, history_depth=3) == pytest.approx(4.0)
        assert max_delay_bound("weak", 1.0, history_depth=2) == pytest.approx(3.0)

    def test_baseline_two_intervals(self):
        assert max_delay_bound("baseline", 1.25) == pytest.approx(2.5)

    def test_view_sync_same_as_baseline(self):
        assert max_delay_bound("view-sync", 1.0) == max_delay_bound("baseline", 1.0)

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            max_delay_bound("magic", 1.0)


class TestBufferWidth:
    def test_theorem5_formula(self):
        # l = 2 * Delta'' * v
        assert buffer_width(max_speed=20.0, max_delay=2.5) == pytest.approx(100.0)

    def test_paper_worked_example(self):
        # Section 5.2: worst-case Hello age 2.5 s, relative speed four
        # times the 10 m/s average => 100 m buffer.  In our formulation the
        # factor 2 covers both endpoints and max speed = 2 x average.
        assert buffer_width(max_speed=20.0, max_delay=2.5) == 100.0

    def test_zero_speed_zero_buffer(self):
        assert buffer_width(0.0, 10.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            buffer_width(-1.0, 1.0)


class TestRequiredHistoryDepth:
    def test_corollary1_instantaneous(self):
        # delta = d <= Delta  =>  k = 2
        assert required_history_depth(0.5, 1.0) == 2
        assert required_history_depth(1.0, 1.0) == 2

    def test_corollary1_periodic(self):
        # delta = Delta + d < 2 Delta  =>  k = 3
        assert required_history_depth(1.5, 1.0) == 3

    def test_zero_spread_needs_one(self):
        assert required_history_depth(0.0, 1.0) == 1

    def test_large_spread(self):
        assert required_history_depth(4.2, 1.0) == 6

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            required_history_depth(1.0, 0.0)


class TestBufferZonePolicy:
    def test_extends_range(self):
        policy = BufferZonePolicy(width=10.0)
        assert policy.extended_range(50.0) == 60.0

    def test_zero_actual_range_stays_zero(self):
        # A node with no logical neighbors has no links to protect.
        assert BufferZonePolicy(width=10.0).extended_range(0.0) == 0.0

    def test_cap_enforced(self):
        policy = BufferZonePolicy(width=100.0, cap=120.0)
        assert policy.extended_range(50.0) == 120.0

    def test_no_buffer_is_identity(self):
        assert BufferZonePolicy().extended_range(42.0) == 42.0

    def test_from_theorem5(self):
        policy = BufferZonePolicy.from_theorem5(
            max_speed=20.0, mechanism="baseline", hello_interval=1.25
        )
        assert policy.width == pytest.approx(100.0)

    def test_from_theorem5_weak(self):
        policy = BufferZonePolicy.from_theorem5(
            max_speed=10.0, mechanism="weak", hello_interval=1.0, history_depth=2
        )
        assert policy.width == pytest.approx(60.0)

    def test_rejects_negative_width(self):
        with pytest.raises(ConfigurationError):
            BufferZonePolicy(width=-5.0)
