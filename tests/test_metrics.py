"""Tests for repro.metrics: stats, connectivity, topology samples."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics.connectivity import (
    largest_effective_component,
    logical_topology_connected,
    original_topology_connected,
    pairwise_connectivity_ratio,
    strictly_connected,
)
from repro.metrics.stats import Estimate, mean_ci
from repro.metrics.topology import sample_topology
from repro.sim.world import WorldSnapshot


def snapshot_from(positions, logical, ranges, normal_range=100.0):
    positions = np.asarray(positions, dtype=np.float64)
    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diff**2).sum(-1))
    ranges = np.asarray(ranges, dtype=np.float64)
    return WorldSnapshot(
        time=0.0,
        positions=positions,
        dist=dist,
        logical=np.asarray(logical, dtype=bool),
        actual_ranges=ranges,
        extended_ranges=ranges,
        normal_range=normal_range,
    )


@pytest.fixture
def line_snapshot():
    """3 nodes in a line, each selecting its nearest neighbor(s)."""
    logical = np.array(
        [[False, True, False], [True, False, True], [False, True, False]]
    )
    return snapshot_from(
        [[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]], logical, [10.0, 10.0, 10.0]
    )


class TestMeanCi:
    def test_single_sample(self):
        est = mean_ci([3.0])
        assert est.mean == 3.0 and est.half_width == 0.0 and est.n == 1

    def test_empty_is_nan(self):
        est = mean_ci([])
        assert math.isnan(est.mean)

    def test_constant_samples_zero_width(self):
        est = mean_ci([2.0, 2.0, 2.0])
        assert est.half_width == 0.0

    def test_interval_contains_mean_generously(self, rng):
        samples = rng.normal(10.0, 1.0, size=50)
        est = mean_ci(samples)
        assert est.low < 10.0 < est.high

    def test_width_shrinks_with_n(self, rng):
        small = mean_ci(rng.normal(0, 1, 10))
        large = mean_ci(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_str_format(self):
        assert "±" in str(mean_ci([1.0, 2.0]))

    def test_bounds_accessors(self):
        est = Estimate(mean=5.0, half_width=1.0, n=3)
        assert est.low == 4.0 and est.high == 6.0


class TestStrictConnectivity:
    def test_connected_line(self, line_snapshot):
        assert strictly_connected(line_snapshot)

    def test_asymmetric_selection_breaks_strict_link(self):
        # 1 selects 0 but 0 does not select 1 => no bidirectional link.
        logical = np.array([[False, False], [True, False]])
        snap = snapshot_from([[0.0, 0.0], [5.0, 0.0]], logical, [10.0, 10.0])
        assert not strictly_connected(snap)

    def test_pn_mode_ignores_selection(self):
        logical = np.array([[False, False], [True, False]])
        snap = snapshot_from([[0.0, 0.0], [5.0, 0.0]], logical, [10.0, 10.0])
        assert strictly_connected(snap, physical_neighbor_mode=True)

    def test_out_of_range_breaks_link_even_in_pn_mode(self):
        logical = np.ones((2, 2), dtype=bool) & ~np.eye(2, dtype=bool)
        snap = snapshot_from([[0.0, 0.0], [50.0, 0.0]], logical, [10.0, 10.0])
        assert not strictly_connected(snap, physical_neighbor_mode=True)


class TestLargestComponent:
    def test_full_component(self, line_snapshot):
        assert largest_effective_component(line_snapshot) == 1.0

    def test_partition_fraction(self):
        logical = np.zeros((4, 4), dtype=bool)
        logical[0, 1] = logical[1, 0] = True
        snap = snapshot_from(
            [[0, 0], [5, 0], [50, 0], [55, 0]], logical, [10.0] * 4
        )
        assert largest_effective_component(snap) == pytest.approx(0.5)


class TestPairwiseRatio:
    def test_fully_connected(self, line_snapshot):
        assert pairwise_connectivity_ratio(line_snapshot) == 1.0

    def test_directed_chain_ratio(self):
        # 0 -> 1 -> 2 only (each node selects the next, ranges reach it).
        logical = np.array(
            [[False, True, False], [False, False, True], [False, False, False]]
        )
        snap = snapshot_from(
            [[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]], logical, [10.0, 10.0, 0.0]
        )
        # ordered reachable pairs: (0,1), (0,2), (1,2) of 6.
        assert pairwise_connectivity_ratio(snap) == pytest.approx(0.5)

    def test_isolated_nodes_zero(self):
        logical = np.zeros((3, 3), dtype=bool)
        snap = snapshot_from([[0, 0], [50, 0], [100, 0]], logical, [0.0] * 3)
        assert pairwise_connectivity_ratio(snap) == 0.0


class TestTopologyPredicates:
    def test_logical_topology_connected_union_semantics(self):
        # Only one direction selected still counts as a logical link.
        logical = np.array([[False, True], [False, False]])
        snap = snapshot_from([[0, 0], [5, 0]], logical, [5.0, 0.0])
        assert logical_topology_connected(snap)

    def test_original_topology_connected(self):
        snap = snapshot_from(
            [[0, 0], [50, 0]], np.zeros((2, 2), dtype=bool), [0.0, 0.0],
            normal_range=60.0,
        )
        assert original_topology_connected(snap)

    def test_original_topology_disconnected(self):
        snap = snapshot_from(
            [[0, 0], [500, 0]], np.zeros((2, 2), dtype=bool), [0.0, 0.0],
            normal_range=60.0,
        )
        assert not original_topology_connected(snap)


class TestSampleTopology:
    def test_means(self, line_snapshot):
        sample = sample_topology(line_snapshot)
        assert sample.mean_actual_range == pytest.approx(10.0)
        assert sample.mean_logical_degree == pytest.approx(4 / 3)
        assert sample.max_extended_range == 10.0

    def test_physical_degree_counts_in_range(self, line_snapshot):
        sample = sample_topology(line_snapshot)
        # node 0 hears 1; node 1 hears 0 and 2; node 2 hears 1.
        assert sample.mean_physical_degree == pytest.approx(4 / 3)

    def test_time_recorded(self, line_snapshot):
        assert sample_topology(line_snapshot).time == 0.0
