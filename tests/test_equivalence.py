"""Tests for repro.analysis.equivalence: the v/R scaling study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.equivalence import EquivalencePoint, generate_equivalence_study
from repro.analysis.scales import Scale

MICRO = Scale(
    name="micro-eq",
    n_nodes=15,
    area_side=349.0,
    duration=5.0,
    sample_rate=1.0,
    warmup=2.0,
    repetitions=1,
    speeds=(1.0,),
)


class TestEquivalenceStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return generate_equivalence_study(
            MICRO,
            base_seed=77,
            range_factors=(1.0, 0.5),
            mobility_indices=(0.05, 0.4),
        )

    def test_grid_size(self, points):
        assert len(points) == 4

    def test_rows_structure(self, points):
        row = points[0].row()
        assert {"range_m", "speed_mps", "v_over_R", "connectivity"} <= set(row)

    def test_speed_derived_from_index(self, points):
        for p in points:
            assert p.speed == pytest.approx(p.mobility_index * p.normal_range)

    def test_scaling_symmetry_is_exact(self, points):
        """With shared seeds, the simulated world scales linearly with the
        range, so equal v/R cells measure *identical* connectivity — the
        strongest possible form of the paper's equivalence claim."""
        by_index = {}
        for p in points:
            by_index.setdefault(p.mobility_index, []).append(p.connectivity)
        for values in by_index.values():
            assert max(values) - min(values) < 1e-9

    def test_higher_index_not_better(self, points):
        by_index = {}
        for p in points:
            by_index.setdefault(p.mobility_index, []).append(p.connectivity)
        low = float(np.mean(by_index[0.05]))
        high = float(np.mean(by_index[0.4]))
        assert high <= low + 0.05

    def test_point_immutability(self, points):
        with pytest.raises(AttributeError):
            points[0].speed = 1.0  # type: ignore[misc]

    def test_custom_protocol(self):
        points = generate_equivalence_study(
            MICRO, base_seed=77, protocol="mst",
            range_factors=(1.0,), mobility_indices=(0.05,),
        )
        assert len(points) == 1
        assert isinstance(points[0], EquivalencePoint)
