"""Tests for repro.core.manager: the mobility-sensitive TC orchestrator."""

from __future__ import annotations

import pytest

from conftest import make_hello
from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import ViewSynchronization, WeakConsistency
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.core.tables import NeighborTable
from repro.protocols import CbtcProtocol, RngProtocol
from repro.util.errors import ProtocolError


@pytest.fixture
def table():
    t = NeighborTable(owner=0, normal_range=100.0, expiry=10.0)
    t.record_own(make_hello(0, (0, 0), sent_at=0.0))
    t.record_hello(make_hello(1, (10, 0), sent_at=0.1))
    t.record_hello(make_hello(2, (5, 1), sent_at=0.2))
    return t


@pytest.fixture
def current():
    return make_hello(0, (0, 0), version=2, sent_at=1.0)


class TestDecide:
    def test_buffer_extends_range(self, table, current):
        mstc = MobilitySensitiveTopologyControl(
            RngProtocol(), buffer_policy=BufferZonePolicy(width=10.0)
        )
        decision = mstc.decide(table, 1.0, current)
        assert decision.extended_range == pytest.approx(decision.actual_range + 10.0)

    def test_no_buffer_by_default(self, table, current):
        mstc = MobilitySensitiveTopologyControl(RngProtocol())
        decision = mstc.decide(table, 1.0, current)
        assert decision.extended_range == decision.actual_range

    def test_decision_carries_time_and_owner(self, table, current):
        mstc = MobilitySensitiveTopologyControl(RngProtocol())
        decision = mstc.decide(table, 1.0, current)
        assert decision.owner == 0 and decision.decided_at == 1.0

    def test_logical_set_comes_from_protocol(self, table, current):
        mstc = MobilitySensitiveTopologyControl(RngProtocol())
        assert mstc.decide(table, 1.0, current).logical_neighbors == frozenset({2})


class TestConfiguration:
    def test_weak_mechanism_requires_conservative_protocol(self):
        with pytest.raises(ProtocolError):
            MobilitySensitiveTopologyControl(CbtcProtocol(), mechanism=WeakConsistency())

    def test_weak_with_condition_protocol_ok(self):
        mstc = MobilitySensitiveTopologyControl(RngProtocol(), mechanism=WeakConsistency())
        assert mstc.mechanism.name == "weak"

    def test_recompute_flag_delegates(self):
        mstc = MobilitySensitiveTopologyControl(
            RngProtocol(), mechanism=ViewSynchronization()
        )
        assert mstc.recompute_on_packet
        assert not mstc.synchronized_versions

    def test_describe_label(self):
        mstc = MobilitySensitiveTopologyControl(
            RngProtocol(),
            mechanism=ViewSynchronization(),
            buffer_policy=BufferZonePolicy(width=10.0),
            physical_neighbor_mode=True,
        )
        assert mstc.describe() == "rng+view-sync+buf10+pn"

    def test_describe_minimal(self):
        assert MobilitySensitiveTopologyControl(RngProtocol()).describe() == "rng+baseline"
