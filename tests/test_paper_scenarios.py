"""The paper's worked examples as deterministic regression scenarios.

- Fig. 1: inconsistent sampling of a mobile node's position makes both
  stationary nodes pick a 4-unit range, partitioning a network that is
  connected under range 4.5 at every instant.
- Fig. 2: MST-based selection on inconsistent views removes *both* links
  to the mobile node — a partitioned logical topology; consistent views
  (2e) remove only one.
- Fig. 4: enabling physical neighbors cannot compensate for outdated
  positions when d(u, v) >= d(u, w); only an (impractically large) range
  increase would.
- Section 4.2's weak-consistency example: the enhanced conditions keep
  link (v, w), producing the connected topology {(u, v), (u, w)}.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_hello, make_multi_view, make_view
from repro.core.consistency import BaselineConsistency, WeakConsistency
from repro.core.tables import NeighborTable
from repro.core.views import views_consistent
from repro.protocols import MstProtocol, RngProtocol

U, V, W = 0, 1, 2


class TestFig1:
    """u at (0,0), v at (10,0); w moves from (4,0) (seen by u at t) to
    (6,0) (seen by v at t+delta).  Both pick range 4 => partition."""

    def u_view(self):
        return make_view(U, {U: (0, 0), V: (10, 0), W: (4, 0)}, normal_range=10.0)

    def v_view(self):
        return make_view(V, {U: (0, 0), V: (10, 0), W: (6, 0)}, normal_range=10.0)

    def test_both_nodes_choose_range_4(self):
        proto = MstProtocol()
        ru = proto.select(self.u_view())
        rv = proto.select(self.v_view())
        assert ru.actual_range == pytest.approx(4.0)
        assert rv.actual_range == pytest.approx(4.0)

    def test_views_are_inconsistent(self):
        assert not views_consistent([self.u_view(), self.v_view()])

    def test_effective_topology_partitions_under_range_4(self):
        # At ANY true position of w on segment (4..6, 0), a 4-unit range at
        # u and v cannot bridge u--v (distance 10): whichever side w is
        # far from (> 4) loses its link.
        for wx in np.linspace(4.0, 6.0, 11):
            du_w = wx
            dv_w = 10.0 - wx
            links = int(du_w <= 4.0) + int(dv_w <= 4.0)
            assert links <= 1  # never both => u and v never connected via w

    def test_range_4_5_would_connect_at_each_instant(self):
        # The paper's premise: under the uniform initial range 4.5 the
        # *original* topology is connected at every instant shown.
        for wx in (4.0, 6.0):
            du_w, dv_w = wx, 10.0 - wx
            assert du_w <= 4.5 or dv_w <= 4.5
            # w reaches the nearer node, which reaches the other? No — u,v
            # are 10 apart; connectivity relies on w being within 4.5 of
            # BOTH at some instant... the figure states ranges of u and v
            # only; w's own (mobile) range covers the farther node.


class TestFig2:
    """Equilateral-ish triangle: w advertises two positions; u decides on
    the older, v on the newer; MST removes both (u,w) and (v,w)."""

    # Distances engineered to the figure's narrative:
    #   u's view: c(u,w) > max(c(u,v), c(v,w))  -> u removes (u,w)
    #   v's view: c(v,w) > max(c(u,v), c(u,w))  -> v removes (v,w)

    def u_view(self):
        # In u's view: d(u,w)=7, d(u,v)=5, d(v,w)=4  => u removes (u,w).
        return make_view(
            U, {U: (0, 0), V: (5, 0), W: (8.5, 2.6)}, normal_range=20.0
        )

    def v_view(self):
        # In v's view: d(v,w)=7, d(u,v)=5, d(u,w)=4  => v removes (v,w).
        return make_view(
            V, {U: (0, 0), V: (5, 0), W: (-3.4, 2.1)}, normal_range=20.0
        )

    def test_u_removes_link_to_w(self):
        result = MstProtocol().select(self.u_view())
        assert W not in result.logical_neighbors
        assert V in result.logical_neighbors

    def test_v_removes_link_to_w(self):
        result = MstProtocol().select(self.v_view())
        assert W not in result.logical_neighbors
        assert U in result.logical_neighbors

    def test_logical_topology_partitioned(self):
        # Union of selections: u-v only; w is isolated from u and v.
        u_sel = MstProtocol().select(self.u_view()).logical_neighbors
        v_sel = MstProtocol().select(self.v_view()).logical_neighbors
        assert W not in u_sel and W not in v_sel

    def test_consistent_views_remove_only_one_link(self):
        # Fig. 2e: both decide on w's OLD position (u's version).
        shared = {U: (0, 0), V: (5, 0), W: (8.5, 2.6)}
        u_res = MstProtocol().select(make_view(U, shared, normal_range=20.0))
        v_res = MstProtocol().select(make_view(V, shared, normal_range=20.0))
        # u removes (u,w); v keeps (v,w): w stays connected via v.
        assert W not in u_res.logical_neighbors
        assert W in v_res.logical_neighbors


class TestFig4:
    """When d(u,v) ~ d(u,w), covering w after it moved requires a large
    range increase — enabling physical neighbors alone cannot help."""

    def test_required_range_growth_is_dramatic(self):
        # u selects v at distance 5 (actual range 5); w believed at 4.
        # After movement w sits at 9: covering it needs range 9, an 80%
        # increase over the actual range — not a "slight" extension.
        believed_w, true_w = 4.0, 9.0
        actual_range = 5.0
        assert true_w > actual_range
        required_increase = true_w - actual_range
        assert required_increase / actual_range >= 0.5

    def test_physical_neighbors_do_not_create_out_of_range_links(self):
        # Physical neighbors are nodes within the CURRENT range; a node
        # beyond it is not reachable no matter the acceptance policy.
        from repro.sim.world import WorldSnapshot

        positions = np.array([[0.0, 0.0], [5.0, 0.0], [9.0, 0.0]])
        dist = np.sqrt(((positions[:, None] - positions[None]) ** 2).sum(-1))
        logical = np.zeros((3, 3), dtype=bool)
        logical[0, 1] = logical[1, 0] = True
        snap = WorldSnapshot(
            time=0.0,
            positions=positions,
            dist=dist,
            logical=logical,
            actual_ranges=np.array([5.0, 5.0, 5.0]),
            extended_ranges=np.array([5.0, 5.0, 5.0]),
            normal_range=20.0,
        )
        directed = snap.effective_directed(physical_neighbor_mode=True)
        assert not directed[0, 2]  # w unreachable from u even in PN mode


class TestWeakConsistencyWorkedExample:
    """Section 4.2's closing example: with two retained Hellos the enhanced
    MST condition keeps (u,w) in u's view... and (v,w) in v's view,
    yielding the connected topology {(u,v),(u,w) or (v,w)}."""

    def test_enhanced_conditions_keep_oscillating_link(self):
        # u's view at t1 - eps: C(u,w) = {6}, C(u,v) = {5}, C(v,w) = {4}.
        u_view = make_multi_view(
            U,
            {U: [(0.0, 0.0)], V: [(5.0, 0.0)], W: [(8.5, 2.6)]},
            normal_range=20.0,
        )
        # v's view at t1 + eps: w has two retained positions.
        v_view = make_multi_view(
            V,
            {U: [(0.0, 0.0)], V: [(5.0, 0.0)], W: [(8.5, 2.6), (-3.4, 2.1)]},
            normal_range=20.0,
        )
        u_sel = MstProtocol().select_conservative(u_view).logical_neighbors
        v_sel = MstProtocol().select_conservative(v_view).logical_neighbors
        # u may remove (u,w) (its single-version costs are unchanged), but
        # v must now KEEP (v,w): cMin(v,w) is no longer above every
        # witness's cMax.
        assert W in v_sel
        # the union contains links covering w
        assert (W in u_sel) or (W in v_sel)

    def test_paper_cost_sets(self):
        # Verify the bounds machinery reproduces the narrative cost sets.
        v_view = make_multi_view(
            V,
            {U: [(0.0, 0.0)], V: [(5.0, 0.0)], W: [(8.5, 2.6), (-3.4, 2.1)]},
            normal_range=20.0,
        )
        from repro.core.costs import DistanceCost

        lo, hi = v_view.cost_bounds(V, W, DistanceCost())
        assert lo < hi  # oscillation produced a genuine interval


class TestViewSynchronizationScenario:
    """The simulation's lightweight mechanism on the Fig. 2 topology."""

    def test_same_version_everywhere_is_consistent(self):
        shared = {U: (0, 0), V: (5, 0), W: (8.5, 2.6)}
        views = [make_view(nid, shared, normal_range=20.0) for nid in (U, V, W)]
        assert views_consistent(views)

    def test_advertised_own_position_rule(self):
        # A node that moved since its last Hello must decide from the
        # advertised position, reproducing neighbors' view of it.
        table = NeighborTable(owner=U, normal_range=20.0, expiry=50.0)
        table.record_own(make_hello(U, (0, 0), sent_at=0.0))
        table.record_hello(make_hello(V, (5, 0), sent_at=0.0))
        table.record_hello(make_hello(W, (8.5, 2.6), sent_at=0.0))
        current = make_hello(U, (3.0, 0.0), version=2, sent_at=1.0)  # u moved
        from repro.core.consistency import ViewSynchronization

        vs = ViewSynchronization().decide(MstProtocol(), table, 1.0, current)
        baseline = BaselineConsistency().decide(MstProtocol(), table, 1.0, current)
        # From (3,0), w at distance ~6.1 vs v at 2: baseline keeps different
        # links than the advertised-position decision.
        advertised = BaselineConsistency().decide(
            MstProtocol(), table, 1.0, table.last_advertised
        )
        assert vs.logical_neighbors == advertised.logical_neighbors
        assert vs.actual_range == advertised.actual_range
