"""Endpoint tests for the async HTTP experiment service.

A real :class:`BackgroundServer` binds a loopback port and the stdlib
:class:`ServiceClient` drives it — the same path ``repro submit`` takes.
The suite pins the service determinism contract: a campaign export is
byte-identical to a cold in-process run of the same specs and seed.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiment import ExperimentSpec
from repro.mobility.base import Area
from repro.orchestrator import OrchestrationContext, RunStore
from repro.service import (
    BackgroundServer,
    ExperimentService,
    ServiceClient,
    ServiceError,
    summary_records,
)
from repro.sim.config import ScenarioConfig
from repro.telemetry import Telemetry
from repro.telemetry.schema import validate_jsonl
from repro.telemetry.runtime import use_telemetry

TINY = ScenarioConfig(
    n_nodes=10,
    area=Area(285.0, 285.0),
    normal_range=250.0,
    duration=5.0,
    warmup=2.0,
    sample_rate=1.0,
)

SPEC = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)

SPEC_DOCS = [
    json.loads(SPEC.to_json()),
    json.loads(SPEC.with_(mean_speed=5.0).to_json()),
]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    service = ExperimentService(
        data_dir=tmp_path_factory.mktemp("service-data"),
        default_backend="local",
        default_workers=1,
    )
    background = BackgroundServer(service).start()
    yield background
    background.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, timeout=30.0)


@pytest.fixture(scope="module")
def finished_campaign(client):
    """One completed two-spec campaign shared by the read-only tests."""
    doc = client.submit({
        "specs": SPEC_DOCS, "repetitions": 2, "base_seed": 50,
        "backend": "local", "workers": 1,
    })
    return client.wait(doc["id"], timeout=300.0)


class TestHealthAndErrors:
    def test_healthz(self, client):
        doc = client.health()
        assert doc["status"] == "ok"

    def test_unknown_campaign_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.campaign("c9999")
        assert err.value.status == 404

    def test_bad_method_405(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request("PUT", "/campaigns")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_malformed_json_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request(
                "POST", "/campaigns", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    @pytest.mark.parametrize("document,fragment", [
        ({}, "specs"),
        ({"specs": []}, "specs"),
        ({"specs": [{"mean_speed": "fast"}]}, "bad experiment spec"),
        ({"specs": SPEC_DOCS, "backend": "cloud"}, "unknown backend"),
        ({"specs": SPEC_DOCS, "store": "../sneaky.db"}, "plain filename"),
        ({"specs": SPEC_DOCS, "store": ".hidden.db"}, "plain filename"),
        ({"specs": SPEC_DOCS, "repetitions": 0}, "repetitions"),
    ])
    def test_submit_validation_400(self, client, document, fragment):
        with pytest.raises(ServiceError) as err:
            client.submit(document)
        assert err.value.status == 400
        assert fragment in str(err.value)


class TestCampaignLifecycle:
    def test_done_with_tallies_and_aggregates(self, finished_campaign):
        doc = finished_campaign
        assert doc["state"] == "done"
        assert doc["executed_units"] + doc["resumed_units"] == 4
        assert doc["quarantined_units"] == 0
        assert [a["runs"] for a in doc["aggregates"]] == [2, 2]
        assert all(0.0 <= a["connectivity"] <= 1.0 for a in doc["aggregates"])

    def test_campaign_listed(self, client, finished_campaign):
        ids = [c["id"] for c in client.campaigns()]
        assert finished_campaign["id"] in ids

    def test_events_stream_is_schema_valid(
        self, client, finished_campaign, tmp_path
    ):
        lines = list(client.events(finished_campaign["id"]))
        assert lines, "finished campaign must still replay a final snapshot"
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(lines) + "\n")
        assert validate_jsonl(path) == []
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "header"
        assert records[0]["schema"] == "repro-telemetry/1"
        assert records[-1]["record"] == "summary"

    def test_export_byte_identical_to_cold_run(
        self, client, finished_campaign, tmp_path
    ):
        """The service determinism contract: an HTTP campaign's
        deterministic export matches a cold local run, byte for byte.

        The cold run arms telemetry like the service does, so both
        sides embed the (deterministic) per-run counters; the export
        itself sheds the wall-clock span timings.
        """
        service_export = client.export(
            finished_campaign["id"], deterministic=True
        )
        specs = [ExperimentSpec.from_dict(d) for d in SPEC_DOCS]
        store = RunStore(tmp_path / "cold.db")
        with use_telemetry(Telemetry()), OrchestrationContext(store=store) as ctx:
            ctx.run_spec_batch(specs, repetitions=2, base_seed=50)
        store.export_jsonl(tmp_path / "cold.jsonl", deterministic=True)
        store.close()
        assert service_export == (tmp_path / "cold.jsonl").read_bytes()

    def test_queue_backend_campaign_matches_local(
        self, client, finished_campaign
    ):
        """Same campaign through the multi-process queue backend — the
        export must not change."""
        doc = client.submit({
            "specs": SPEC_DOCS, "repetitions": 2, "base_seed": 50,
            "backend": "queue", "workers": 2,
        })
        finished = client.wait(doc["id"], timeout=300.0)
        assert finished["state"] == "done"
        assert client.export(doc["id"]) == client.export(
            finished_campaign["id"]
        )

    def test_max_units_interrupts_then_store_reuse_resumes(self, client):
        first = client.submit({
            "specs": SPEC_DOCS, "repetitions": 2, "base_seed": 50,
            "max_units": 1, "store": "resumable.db",
        })
        interrupted = client.wait(first["id"], timeout=300.0)
        assert interrupted["state"] == "interrupted"
        assert interrupted["executed_units"] == 1

        second = client.submit({
            "specs": SPEC_DOCS, "repetitions": 2, "base_seed": 50,
            "store": "resumable.db",
        })
        finished = client.wait(second["id"], timeout=300.0)
        assert finished["state"] == "done"
        assert finished["resumed_units"] == 1
        assert finished["executed_units"] == 3

    def test_cancel_reaches_terminal_state(self, client):
        doc = client.submit({
            "specs": SPEC_DOCS, "repetitions": 3, "base_seed": 900,
        })
        cancelled = client.cancel(doc["id"])
        assert cancelled["id"] == doc["id"]
        finished = client.wait(doc["id"], timeout=300.0)
        # Cooperative: in-flight units drain, so a fast campaign may
        # legitimately finish before the flag lands.
        assert finished["state"] in ("cancelled", "done")
        if finished["state"] == "cancelled":
            assert finished["executed_units"] < 6

    def test_export_before_store_exists_409(self, client, server):
        record = server.service.submit({
            "specs": SPEC_DOCS[:1], "repetitions": 1, "base_seed": 1,
        })
        # Point the record at a store path that was never created.
        record.finished.wait(timeout=300.0)
        record.store_path = record.store_path.with_name("never-made.db")
        with pytest.raises(ServiceError) as err:
            client.export(record.campaign_id)
        assert err.value.status == 409


class TestSummaryRecords:
    def test_block_is_schema_valid(self, tmp_path):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            telemetry.count("units_done")
            telemetry.observe("unit_seconds", 1.5)
            telemetry.gauge("progress", 0.5)
        records = summary_records(
            telemetry.summary(), {"campaign": "c0001", "state": "running"}
        )
        path = tmp_path / "block.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        assert validate_jsonl(path) == []
        header, summary = records[0], records[-1]
        assert header["record"] == "header"
        assert header["meta"]["campaign"] == "c0001"
        assert summary["record"] == "summary"
        names = {
            r["name"] for r in records if r.get("record") == "metric"
        }
        assert {"units_done", "unit_seconds", "progress"} <= names
