"""Tests for repro.core.framework: cost graphs and removal conditions."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_multi_view, make_view
from repro.core.costs import DistanceCost, EnergyCost
from repro.core.framework import (
    LocalCostGraph,
    SelectionResult,
    apply_removal_condition,
    mst_removable,
    rng_removable,
    rng_removable_batch,
    spt_removable,
)
from repro.util.errors import ProtocolError


def graph_of(positions, normal_range=100.0, cost_model=None, owner=0):
    view = make_view(owner, positions, normal_range=normal_range)
    return LocalCostGraph.from_local_view(view, cost_model or DistanceCost())


class TestLocalCostGraph:
    def test_owner_is_index_zero(self):
        g = graph_of({0: (0, 0), 3: (1, 0), 1: (2, 0)})
        assert g.ids[0] == 0

    def test_adjacency_within_normal_range(self):
        g = graph_of({0: (0, 0), 1: (50, 0), 2: (130, 0)}, normal_range=100.0)
        i, j, k = (g.index[n] for n in (0, 1, 2))
        assert g.adj[i, j] and g.adj[j, k]
        assert not g.adj[i, k]

    def test_costs_match_model(self):
        g = graph_of({0: (0, 0), 1: (3, 0)}, cost_model=EnergyCost(alpha=2))
        assert g.cost_low[0, g.index[1]] == pytest.approx(9.0)

    def test_single_version_bounds_coincide(self):
        g = graph_of({0: (0, 0), 1: (3, 0), 2: (1, 1)})
        assert np.allclose(g.cost_low, g.cost_high)

    def test_multi_version_bounds(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(4, 0), (6, 0)]}, normal_range=50.0)
        g = LocalCostGraph.from_multi_version_view(view, DistanceCost())
        j = g.index[1]
        assert g.cost_low[0, j] == 4.0
        assert g.cost_high[0, j] == 6.0

    def test_multi_version_conservative_adjacency(self):
        view = make_multi_view(
            0, {0: [(0, 0)], 1: [(90, 0), (150, 0)]}, normal_range=100.0
        )
        g = LocalCostGraph.from_multi_version_view(view, DistanceCost())
        assert g.adj[0, g.index[1]]

    def test_key_tie_break_by_ids(self):
        g = graph_of({0: (0, 0), 1: (5, 0), 2: (0, 5)})
        # (0,1) and (0,2) have equal cost 5; keys must differ.
        assert g.key_low(0, g.index[1]) != g.key_low(0, g.index[2])


class TestRngRemovable:
    def test_removes_long_side_of_triangle(self):
        g = graph_of({0: (0, 0), 1: (10, 0), 2: (5, 1)}, normal_range=50.0)
        assert rng_removable(g, 0, g.index[1])
        assert not rng_removable(g, 0, g.index[2])

    def test_witness_must_be_adjacent_to_both(self):
        # Witness beyond normal range of v cannot remove the link.
        g = graph_of({0: (0, 0), 1: (90, 0), 2: (-30, 0)}, normal_range=100.0)
        assert not rng_removable(g, 0, g.index[1])

    def test_no_witness_keeps_edge(self):
        g = graph_of({0: (0, 0), 1: (10, 0)})
        assert not rng_removable(g, 0, g.index[1])


class TestSptRemovable:
    def test_two_hop_energy_path_removes(self):
        # d(u,v)=10 direct energy 100; relay at midpoint: 25+25=50 < 100.
        g = graph_of(
            {0: (0, 0), 1: (10, 0), 2: (5, 0)}, cost_model=EnergyCost(alpha=2)
        )
        assert spt_removable(g, 0, g.index[1])

    def test_linear_cost_never_removes(self):
        # With c = d, triangle inequality means no relay path is shorter.
        g = graph_of({0: (0, 0), 1: (10, 0), 2: (5, 1)})
        assert not spt_removable(g, 0, g.index[1])

    def test_multi_hop_chain_removes(self):
        g = graph_of(
            {0: (0, 0), 1: (30, 0), 2: (10, 0), 3: (20, 0)},
            cost_model=EnergyCost(alpha=2),
        )
        # 3 hops of 10: 300 < 900 direct.
        assert spt_removable(g, 0, g.index[1])

    def test_tie_keeps_link(self):
        # Collinear relay with alpha=1: path cost equals direct cost.
        g = graph_of({0: (0, 0), 1: (10, 0), 2: (5, 0)})
        assert not spt_removable(g, 0, g.index[1])


class TestMstRemovable:
    def test_bottleneck_path_removes(self):
        g = graph_of({0: (0, 0), 1: (10, 0), 2: (5, 1)})
        assert mst_removable(g, 0, g.index[1])

    def test_long_path_with_cheap_links_removes(self):
        g = graph_of({0: (0, 0), 1: (12, 0), 2: (4, 1), 3: (8, 1)}, normal_range=50.0)
        # every hop < 12, so (0,1) is removable under MST but the total
        # path length exceeds the direct distance (SPT keeps it).
        assert mst_removable(g, 0, g.index[1])
        assert not spt_removable(g, 0, g.index[1])

    def test_isolated_edge_kept(self):
        g = graph_of({0: (0, 0), 1: (10, 0)})
        assert not mst_removable(g, 0, g.index[1])

    def test_equilateral_tiebreak_removes_exactly_one_edge_per_node(self):
        # Equal costs: ID tie-break must still produce a connected result.
        import math
        pts = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (5.0, 5.0 * math.sqrt(3))}
        g = graph_of(pts, normal_range=50.0)
        removable = [v for v in (1, 2) if mst_removable(g, 0, g.index[v])]
        # Edge (0,1) has the smallest key, (0,2) loses to (0,1)+(1,2)? both
        # witnesses have equal cost; keys decide: (0,1) < (0,2) < (1,2).
        # (0,2) cannot be removed via (0,1),(1,2) because key(1,2)>key(0,2).
        assert removable == []


class TestConditionStrengthOrdering:
    """Condition 1 (RNG) ⊂ condition 3 (MST); both imply removability
    under condition 3 — i.e. MST removes a superset of RNG's removals."""

    def test_rng_removals_subset_of_mst(self, rng):
        for _ in range(20):
            pts = {i: tuple(rng.random(2) * 60) for i in range(8)}
            g = graph_of(pts, normal_range=100.0)
            for j in np.flatnonzero(g.adj[0]):
                if rng_removable(g, 0, int(j)):
                    assert mst_removable(g, 0, int(j))

    def test_spt_removals_subset_of_mst(self, rng):
        model = EnergyCost(alpha=2)
        for _ in range(20):
            pts = {i: tuple(rng.random(2) * 60) for i in range(8)}
            view = make_view(0, pts, normal_range=100.0)
            g = LocalCostGraph.from_local_view(view, model)
            for j in np.flatnonzero(g.adj[0]):
                if spt_removable(g, 0, int(j)):
                    assert mst_removable(g, 0, int(j))


class TestApplyRemovalCondition:
    def test_returns_survivors_and_range(self):
        g = graph_of({0: (0, 0), 1: (10, 0), 2: (5, 1)})
        result = apply_removal_condition(g, rng_removable)
        assert result.logical_neighbors == frozenset({2})
        assert result.actual_range == pytest.approx(np.hypot(5, 1))

    def test_empty_neighborhood(self):
        g = graph_of({0: (0, 0)})
        result = apply_removal_condition(g, rng_removable)
        assert result.logical_neighbors == frozenset()
        assert result.actual_range == 0.0

    def test_conservative_range_uses_upper_bound(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(4, 0), (6, 0)]}, normal_range=50.0)
        g = LocalCostGraph.from_multi_version_view(view, DistanceCost())
        result = apply_removal_condition(g, rng_removable)
        assert result.actual_range == pytest.approx(6.0)


class TestSelectionResult:
    def test_self_selection_rejected(self):
        with pytest.raises(ProtocolError):
            SelectionResult(owner=0, logical_neighbors=frozenset({0}), actual_range=1.0)

    def test_negative_range_rejected(self):
        with pytest.raises(ProtocolError):
            SelectionResult(owner=0, logical_neighbors=frozenset(), actual_range=-1.0)

    def test_nan_range_rejected(self):
        with pytest.raises(ProtocolError):
            SelectionResult(owner=0, logical_neighbors=frozenset(), actual_range=float("nan"))


class TestRngBatchKernel:
    """``rng_removable_batch`` must match the per-edge predicate exactly —
    same verdicts, same covered links — on every layout class, including
    the interval graphs where the conservative low/high asymmetry bites."""

    def _oracle(self, g):
        return {
            int(j): rng_removable(g, 0, int(j)) for j in np.flatnonzero(g.adj[0])
        }

    def test_random_layouts(self, rng):
        for _ in range(40):
            n = int(rng.integers(2, 14))
            pts = {i: tuple(rng.random(2) * 70) for i in range(n)}
            for model in (DistanceCost(), EnergyCost(alpha=2)):
                view = make_view(0, pts, normal_range=60.0)
                g = LocalCostGraph.from_local_view(view, model)
                assert rng_removable_batch(g) == self._oracle(g)

    def test_collinear_layouts(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 10))
            xs = rng.random(n) * 80
            pts = {i: (float(xs[i]), 0.0) for i in range(n)}
            g = graph_of(pts, normal_range=60.0)
            assert rng_removable_batch(g) == self._oracle(g)

    def test_duplicate_positions(self):
        # coincident nodes: zero-cost links, verdicts decided by ID keys
        pts = {0: (0.0, 0.0), 1: (5.0, 0.0), 2: (5.0, 0.0), 3: (0.0, 0.0)}
        g = graph_of(pts, normal_range=60.0)
        assert rng_removable_batch(g) == self._oracle(g)

    def test_grid_tie_layouts(self, rng):
        for n in range(2, 12):
            pts = {i: (float(i % 3) * 10.0, float(i // 3) * 10.0) for i in range(n)}
            g = graph_of(pts, normal_range=60.0)
            assert rng_removable_batch(g) == self._oracle(g)

    def test_interval_graphs(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 8))
            hist = {
                i: [tuple(rng.random(2) * 60), tuple(rng.random(2) * 60)]
                for i in range(n)
            }
            view = make_multi_view(0, hist, normal_range=70.0)
            g = LocalCostGraph.from_multi_version_view(view, DistanceCost())
            assert rng_removable_batch(g) == self._oracle(g)

    def test_empty_neighborhood(self):
        g = graph_of({0: (0.0, 0.0)})
        assert rng_removable_batch(g) == {}

    def test_selection_result_identical_to_per_edge(self, rng):
        # end to end: the batch path of apply_removal_condition yields the
        # same SelectionResult (survivors, range) as the per-edge path
        for _ in range(20):
            n = int(rng.integers(2, 12))
            pts = {i: tuple(rng.random(2) * 70) for i in range(n)}
            g = graph_of(pts, normal_range=60.0)
            batch = apply_removal_condition(g, rng_removable_batch)
            scalar = apply_removal_condition(g, rng_removable)
            assert batch == scalar
