"""Tests for the repro.api facade and the typed RunStats results API."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.api as api
from repro.api import (
    ExperimentSpec,
    FaultSchedule,
    RunStats,
    ScenarioConfig,
    Telemetry,
    run_once,
    simulate,
)
from repro.mobility.base import Area


def _spec() -> ExperimentSpec:
    cfg = ScenarioConfig(
        n_nodes=12, area=Area(350.0, 350.0), normal_range=200.0,
        duration=6.0, warmup=2.0, sample_rate=1.0,
    )
    return ExperimentSpec(protocol="rng", mean_speed=10.0, config=cfg)


class TestFacade:
    def test_every_advertised_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_facade_names_are_the_home_module_objects(self):
        from repro.analysis.experiment import RunStats as home_run_stats
        from repro.sim.trace import TraceRecorder as home_recorder
        from repro.telemetry import MetricsRegistry as home_registry

        assert api.RunStats is home_run_stats
        assert api.TraceRecorder is home_recorder
        assert api.MetricsRegistry is home_registry
        assert api.FaultSchedule is FaultSchedule

    def test_simulate_matches_run_once(self):
        a = simulate(_spec(), seed=9)
        b = run_once(_spec(), seed=9)
        assert np.array_equal(a.delivery_ratios, b.delivery_ratios)
        assert a.stats == b.stats

    def test_simulate_threads_faults_and_telemetry(self):
        from repro.faults.schedule import NodeOutage

        telemetry = Telemetry()
        schedule = FaultSchedule(events=(NodeOutage(node=1, start=2.0, end=5.0),))
        result = simulate(_spec(), seed=2, faults=schedule, telemetry=telemetry)
        assert result.stats.faults_armed
        assert result.stats.fault_suppressed_sends > 0
        assert result.stats.telemetry is not None


class TestRunStats:
    def test_frozen_and_typed(self):
        stats = simulate(_spec(), seed=1).stats
        assert isinstance(stats, RunStats)
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.hello_messages = 0
        assert isinstance(stats.hello_messages, int)
        assert stats.hello_messages > 0

    def test_channel_stats_dict_view_deprecated_but_identical(self):
        result = simulate(_spec(), seed=1)
        with pytest.warns(FutureWarning, match="channel_stats is deprecated"):
            legacy = result.channel_stats
        assert legacy == result.stats.as_dict()
        # legacy dict spells out exactly the channel + cache counters
        assert set(legacy) == {
            "hello_messages", "data_transmissions", "sync_messages",
            "deliveries", "hello_losses", "collisions",
            "decision_cache_hits", "decision_cache_misses",
            "decision_cache_uncacheable",
        }

    def test_fault_keys_only_when_armed(self):
        from repro.faults.schedule import NodeOutage

        clean = simulate(_spec(), seed=2).stats
        assert not clean.faults_armed
        assert not any(k.startswith("fault_") for k in clean.as_dict())
        faulted = simulate(
            _spec(), seed=2,
            faults=FaultSchedule(events=(NodeOutage(node=1, start=2.0, end=5.0),)),
        ).stats
        assert faulted.faults_armed
        assert "fault_suppressed_sends" in faulted.as_dict()

    def test_untraced_run_has_no_summary(self):
        assert simulate(_spec(), seed=1).stats.telemetry is None
