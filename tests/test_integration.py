"""End-to-end integration tests: the paper's qualitative claims at small scale.

These run real simulations (seconds each) and assert the *shape* of the
paper's findings: baselines are vulnerable to mobility; buffer zones, view
synchronization, and physical-neighbor forwarding each recover
connectivity; topology control still saves range/degree versus no control.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, run_once, run_repetitions
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig

CFG = ScenarioConfig(
    n_nodes=40,
    area=Area(600.0, 600.0),
    normal_range=250.0,
    duration=10.0,
    warmup=2.0,
    sample_rate=2.0,
)

REPS = 3
SEED = 4000


def conn(protocol, mechanism="baseline", buffer=0.0, speed=20.0, pn=False):
    spec = ExperimentSpec(
        protocol=protocol,
        mechanism=mechanism,
        buffer_width=buffer,
        physical_neighbor_mode=pn,
        mean_speed=speed,
        config=CFG,
    )
    return run_repetitions(spec, repetitions=REPS, base_seed=SEED).connectivity.mean


class TestBaselineVulnerability:
    """Fig. 6's headline: mobility-insensitive protocols partition."""

    def test_mst_baseline_suffers_even_at_low_speed(self):
        assert conn("mst", speed=5.0) < 0.85

    def test_uncontrolled_network_stays_connected(self):
        assert conn("none", speed=20.0) > 0.95

    def test_spt2_beats_mst_under_mobility(self):
        assert conn("spt2", speed=20.0) > conn("mst", speed=20.0)

    def test_connectivity_degrades_with_speed(self):
        slow = conn("rng", speed=1.0)
        fast = conn("rng", speed=80.0)
        assert fast < slow


class TestBufferZoneRecovery:
    """Fig. 7: wider buffers monotonically help."""

    def test_buffer_improves_connectivity(self):
        assert conn("rng", buffer=100.0) > conn("rng", buffer=0.0) + 0.1

    def test_large_buffer_restores_rng(self):
        assert conn("rng", buffer=100.0, speed=20.0) > 0.9

    def test_buffer_costs_transmission_range(self):
        spec0 = ExperimentSpec(protocol="rng", buffer_width=0.0, mean_speed=20.0, config=CFG)
        spec100 = spec0.with_(buffer_width=100.0)
        r0 = run_once(spec0, seed=SEED).mean_transmission_range
        r100 = run_once(spec100, seed=SEED).mean_transmission_range
        assert r100 > r0 + 50.0


class TestViewSynchronizationRecovery:
    """Fig. 9: VS + small buffer beats baseline + same buffer."""

    def test_view_sync_improves_over_baseline(self):
        base = conn("rng", mechanism="baseline", buffer=10.0)
        vs = conn("rng", mechanism="view-sync", buffer=10.0)
        assert vs >= base

    def test_view_sync_with_small_buffer_tolerates_moderate(self):
        assert conn("rng", mechanism="view-sync", buffer=30.0, speed=40.0) > 0.85


class TestPhysicalNeighborRecovery:
    """Fig. 10: PN forwarding + buffer recovers all protocols."""

    def test_pn_improves_over_strict_filtering(self):
        strict = conn("mst", buffer=10.0)
        pn = conn("mst", buffer=10.0, pn=True)
        assert pn >= strict

    def test_pn_with_large_buffer_near_perfect(self):
        assert conn("spt2", buffer=100.0, pn=True, speed=40.0) > 0.95


class TestStrongConsistencyMechanisms:
    def test_proactive_runs_and_delivers(self):
        assert conn("rng", mechanism="proactive", buffer=50.0) > 0.7

    def test_reactive_runs_and_delivers(self):
        assert conn("rng", mechanism="reactive", buffer=50.0) > 0.7

    def test_weak_consistency_is_conservative_but_connected(self):
        spec_weak = ExperimentSpec(
            protocol="rng", mechanism="weak", buffer_width=10.0,
            mean_speed=20.0, config=CFG,
        )
        spec_base = spec_weak.with_(mechanism="baseline")
        weak = run_once(spec_weak, seed=SEED)
        base = run_once(spec_base, seed=SEED)
        # conservative selection keeps more neighbors...
        assert weak.mean_logical_degree >= base.mean_logical_degree
        # ...and buys connectivity
        assert weak.connectivity_ratio >= base.connectivity_ratio


class TestTopologyControlStillSaves:
    """Table 1's point: even with mechanisms, TC beats no-TC on range."""

    def test_rng_range_well_below_normal(self):
        spec = ExperimentSpec(
            protocol="rng", mechanism="view-sync", buffer_width=10.0,
            mean_speed=20.0, config=CFG,
        )
        result = run_once(spec, seed=SEED)
        assert result.mean_transmission_range < 0.7 * CFG.normal_range

    def test_degree_ordering_matches_table1(self):
        degrees = {}
        for proto in ("mst", "rng", "spt2"):
            spec = ExperimentSpec(protocol=proto, mean_speed=1.0, config=CFG)
            degrees[proto] = run_once(spec, seed=SEED).mean_logical_degree
        assert degrees["mst"] <= degrees["rng"] <= degrees["spt2"]


class TestAlternativeProtocolsUnderHarness:
    """Our extension: the harness drives every registered protocol."""

    @pytest.mark.parametrize("proto", ["gabriel", "yao", "cbtc", "kneigh"])
    def test_protocol_completes_and_reports(self, proto):
        spec = ExperimentSpec(
            protocol=proto, mechanism="baseline", buffer_width=20.0,
            mean_speed=10.0, config=CFG,
        )
        result = run_once(spec, seed=SEED)
        assert 0.0 <= result.connectivity_ratio <= 1.0
        assert result.mean_logical_degree > 0.0

    def test_kneigh_degree_close_to_k(self):
        spec = ExperimentSpec(
            protocol="kneigh", protocol_kwargs={"k": 5},
            mean_speed=5.0, config=CFG,
        )
        result = run_once(spec, seed=SEED)
        assert 3.0 <= result.mean_logical_degree <= 5.0
