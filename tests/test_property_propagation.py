"""Propagation-model seam: the differential test battery.

Three contracts are pinned here:

1. **Unit-disk bit-identity.**  The seam must cost the default nothing:
   an explicit ``propagation="unit-disk"`` config collapses to the
   historical code path (``_propagation is None`` at every seam), and —
   the sharper differential — a ``LogDistance(sigma_db=0)`` world, which
   routes through the *model* code path with an identity range factor,
   reproduces the unit-disk world bit for bit across mechanism ×
   pipeline × loss.

2. **Pipeline independence.**  Scalar and batched Hello routes must stay
   bit-identical under every model (the keyed-hash draws are
   order-independent and subset-stable), with byte-equal drop
   accounting; ``hello_pipeline="batched"`` + non-unit-disk is a shipped,
   working combination — not a configuration error — and results are
   reproducible at any worker count.

3. **Oracle adaptation.**  ``theorem5_slack`` widens by exactly
   ``2 v_max · staleness_allowance`` for stochastic models and not at
   all for deterministic ones; the static-connectivity oracle stands
   down for every non-unit-disk model.

Plus the keyed-hash algebra (symmetry, subset stability, superset-radius
containment) and the validation surface (NaN/negative parameters die at
construction with :class:`ConfigurationError`).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiment import ExperimentSpec, run_repetitions
from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import make_mechanism
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.faults.oracles import static_connectivity_oracle, theorem5_slack
from repro.mobility import Area, RandomWaypoint
from repro.protocols import RngProtocol
from repro.sim.config import ScenarioConfig
from repro.sim.propagation import (
    UNIT_DISK,
    LogDistance,
    ProbabilisticSINR,
    PropagationModel,
    UnitDisk,
    available_propagation_models,
    make_propagation,
)
from repro.sim.radio import IdealChannel
from repro.sim.world import NetworkWorld
from repro.telemetry import Telemetry
from repro.util.errors import ConfigurationError
from repro.util.randomness import SeedSequenceFactory

MECHANISMS = ("baseline", "view-sync", "proactive", "reactive", "weak")
MODELS = ("log-distance", "sinr")


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        n_nodes=10,
        area=Area(300.0, 300.0),
        normal_range=150.0,
        duration=5.0,
        sample_rate=2.0,
        warmup=1.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _world(
    cfg: ScenarioConfig,
    mechanism: str = "view-sync",
    seed: int = 0,
    pipeline: str = "auto",
    telemetry: Telemetry | None = None,
) -> NetworkWorld:
    seeds = SeedSequenceFactory(seed)
    mobility = RandomWaypoint(
        cfg.area, cfg.n_nodes, cfg.duration, mean_speed=8.0, rng=seeds.rng("m")
    )
    manager = MobilitySensitiveTopologyControl(
        RngProtocol(),
        mechanism=make_mechanism(mechanism),
        buffer_policy=BufferZonePolicy(width=20.0, cap=cfg.normal_range),
    )
    return NetworkWorld(
        cfg, mobility, manager, seed=seed,
        hello_pipeline=pipeline, telemetry=telemetry,
    )


def _assert_twins_identical(a: NetworkWorld, b: NetworkWorld) -> None:
    """Every decision-relevant observable must match bit for bit.

    Table uids are process-global, so tokens compare past the uid.
    """
    now = a.engine.now
    assert now == b.engine.now
    assert a.channel.stats.as_dict() == b.channel.stats.as_dict()
    for na, nb in zip(a.nodes, b.nodes):
        ta, tb = na.table, nb.table
        assert na.hellos_sent == nb.hellos_sent
        assert ta.mutations == tb.mutations
        assert ta.hellos_received == tb.hellos_received
        assert ta.full_token()[1:] == tb.full_token()[1:]
        assert ta.known_neighbors() == tb.known_neighbors()
        for neighbor in ta.known_neighbors():
            assert ta.history_of(neighbor) == tb.history_of(neighbor)
        assert ta.own_history == tb.own_history


# --------------------------------------------------------------------- #
# 1. unit-disk bit-identity


class TestUnitDiskSeamCollapse:
    def test_default_config_collapses_to_historical_path(self):
        world = _world(_config())
        assert isinstance(world.propagation, UnitDisk)
        assert world._propagation is None
        assert world.channel.propagation is None
        assert world._oracle is None or world._oracle.propagation is None
        assert world.snapshot().propagation is None

    def test_explicit_unit_disk_is_the_same_collapse(self):
        world = _world(_config(propagation="unit-disk"))
        assert world.propagation is UNIT_DISK
        assert world._propagation is None

    def test_non_unit_disk_model_is_bound_and_threaded(self):
        world = _world(_config(propagation="log-distance"))
        model = world._propagation
        assert isinstance(model, LogDistance)
        assert world.propagation is model
        assert world.channel.propagation is model
        assert world.snapshot().propagation is model

    def test_stats_dict_shapes(self):
        # Unit-disk runs keep the legacy RunStats dict shape (no
        # propagation keys); ChannelStats always carries the counter.
        from repro.analysis.experiment import RunStats

        unit = _world(_config())
        unit.run_until(3.0)
        stats = RunStats.from_world(unit)
        assert "propagation" not in stats.as_dict()
        assert "propagation_losses" not in stats.as_dict()
        assert unit.channel.stats.as_dict()["propagation_losses"] == 0

        shadowed = _world(_config(propagation="log-distance"))
        shadowed.run_until(3.0)
        stats = RunStats.from_world(shadowed)
        assert stats.as_dict()["propagation"] == "log-distance"
        assert stats.as_dict()["propagation_losses"] == stats.propagation_losses

    def test_spec_canonical_json_unchanged_for_unit_disk(self):
        # Orchestrator unit ids hash the canonical spec JSON; the seam
        # must not perturb any pre-existing unit-disk id.
        spec = ExperimentSpec(config=_config())
        assert "propagation" not in spec.as_dict()["config"]
        shadowed = ExperimentSpec(
            config=_config(propagation="log-distance",
                           propagation_params={"sigma_db": 6}),
        )
        cfg = shadowed.as_dict()["config"]
        assert cfg["propagation"] == "log-distance"
        assert cfg["propagation_params"] == {"sigma_db": 6.0}
        rebuilt = ExperimentSpec.from_json(shadowed.to_json())
        assert rebuilt.to_json() == shadowed.to_json()


class TestSigmaZeroEquivalence:
    """LogDistance(sigma_db=0) runs the model code path with an identity
    range factor — it must reproduce the unit-disk world bit for bit.
    This is the live stand-in for the pre-change trace comparison: any
    divergence introduced by the seam's model path shows up here.
    """

    @settings(max_examples=8, deadline=None)
    @given(
        mechanism=st.sampled_from(MECHANISMS),
        pipeline=st.sampled_from(["scalar", "batched"]),
        seed=st.integers(0, 2**16),
    )
    def test_twin_identity(self, mechanism, pipeline, seed):
        cfg0 = _config()
        cfg1 = _config(propagation="log-distance",
                       propagation_params={"sigma_db": 0.0})
        unit = _world(cfg0, mechanism, seed, pipeline)
        model = _world(cfg1, mechanism, seed, pipeline)
        assert model._propagation is not None  # genuinely on the model path
        unit.run_until(cfg0.duration)
        model.run_until(cfg1.duration)
        _assert_twins_identical(unit, model)
        assert model.channel.stats.propagation_losses == 0

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**16), loss=st.sampled_from([0.1, 0.3]))
    def test_twin_identity_under_loss(self, seed, loss):
        # The i.i.d. loss RNG consumes draws positionally: identical
        # receiver arrays are the only way the twins can agree.
        cfg0 = _config(hello_loss_rate=loss)
        cfg1 = _config(hello_loss_rate=loss, propagation="log-distance",
                       propagation_params={"sigma_db": 0.0})
        unit = _world(cfg0, "baseline", seed, "scalar")
        model = _world(cfg1, "baseline", seed, "scalar")
        unit.run_until(cfg0.duration)
        model.run_until(cfg1.duration)
        assert unit.channel.stats.hello_losses > 0
        _assert_twins_identical(unit, model)

    def test_snapshot_predicates_agree(self):
        cfg1 = _config(propagation="log-distance",
                       propagation_params={"sigma_db": 0.0})
        unit = _world(_config(), "view-sync", 9, "scalar")
        model = _world(cfg1, "view-sync", 9, "scalar")
        unit.run_until(4.0)
        model.run_until(4.0)
        su, sm = unit.snapshot(), model.snapshot()
        assert np.array_equal(su.in_range(), sm.in_range())
        assert np.array_equal(su.original_topology(), sm.original_topology())


# --------------------------------------------------------------------- #
# 2. pipeline independence


class TestBatchedPipelineContract:
    """``hello_pipeline="batched"`` + non-unit-disk is a shipped, working
    combination: the oracle's stale-grid query widens to the model's
    superset radius and the exact filter becomes the keyed predicate.
    This class pins that contract — construction succeeds, results match
    the scalar route bit for bit, and drop accounting is byte-equal.
    """

    @pytest.mark.parametrize("model,params", [
        ("log-distance", {"sigma_db": 4.0}),
        ("log-distance", {"sigma_db": 6.0, "path_loss_exponent": 2.0}),
        ("sinr", {}),
        ("sinr", {"midpoint": 0.7, "cutoff": 1.5}),
    ])
    def test_batched_equals_scalar(self, model, params):
        cfg = _config(propagation=model, propagation_params=params)
        batched = _world(cfg, "view-sync", 11, "batched")
        scalar = _world(cfg, "view-sync", 11, "scalar")
        assert batched._batched and not scalar._batched
        batched.run_until(cfg.duration)
        scalar.run_until(cfg.duration)
        _assert_twins_identical(batched, scalar)
        # Propagation drops are tallied by different components per route
        # (oracle vs channel) but must land on identical totals.
        assert (batched.channel.stats.propagation_losses
                == scalar.channel.stats.propagation_losses)

    @settings(max_examples=6, deadline=None)
    @given(
        mechanism=st.sampled_from(MECHANISMS),
        model=st.sampled_from(MODELS),
        seed=st.integers(0, 2**16),
    )
    def test_batched_equals_scalar_across_mechanisms(self, mechanism, model, seed):
        cfg = _config(propagation=model)
        batched = _world(cfg, mechanism, seed, "batched")
        scalar = _world(cfg, mechanism, seed, "scalar")
        batched.run_until(cfg.duration)
        scalar.run_until(cfg.duration)
        _assert_twins_identical(batched, scalar)

    def test_batched_construction_is_not_an_error(self):
        # The pinned contract: no ConfigurationError — the superset
        # query composes, it does not conflict.
        world = _world(_config(propagation="sinr"), pipeline="batched")
        assert world._batched
        assert world._oracle.propagation is world._propagation

    def test_oracle_query_radius_is_widened(self):
        cfg = _config(propagation="log-distance")
        world = _world(cfg, pipeline="batched")
        oracle = world._oracle
        assert oracle._query_radius == pytest.approx(
            world._propagation.query_radius(cfg.normal_range)
        )
        assert oracle._query_radius > cfg.normal_range

    def test_auto_dispatch_still_batches_under_models(self):
        world = _world(_config(propagation="sinr"), pipeline="auto")
        assert world._batched

    def test_telemetry_counts_propagation_drops(self):
        tel = Telemetry()
        cfg = _config(propagation="sinr")
        world = _world(cfg, "baseline", 5, "batched", telemetry=tel)
        world.run_until(cfg.duration)
        lost = world.channel.stats.propagation_losses
        assert lost > 0
        counter = tel.registry.counter("hello_dropped", reason="propagation")
        assert counter.value == lost


class TestWorkerDeterminism:
    @pytest.mark.parametrize("model", MODELS)
    def test_repetitions_identical_at_1_and_4_workers(self, model):
        cfg = _config(n_nodes=12, duration=4.0, propagation=model)
        spec = ExperimentSpec(
            protocol="rng", mechanism="view-sync",
            buffer_width=20.0, mean_speed=8.0, config=cfg,
        )
        one = run_repetitions(spec, repetitions=4, base_seed=50, workers=1)
        four = run_repetitions(spec, repetitions=4, base_seed=50, workers=4)
        assert one.row() == four.row()


# --------------------------------------------------------------------- #
# 3. keyed-hash algebra


class TestModelAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        model_name=st.sampled_from(MODELS),
        now=st.floats(0.0, 100.0, allow_nan=False),
        n=st.integers(2, 40),
    )
    def test_subset_stability(self, seed, model_name, now, n):
        # Verdicts for a candidate set must equal the restriction of the
        # verdicts for any superset — the property that makes candidate
        # generation strategy (grid vs dense vs stale-grid) irrelevant.
        model = make_propagation(model_name).bind(seed)
        rng = np.random.default_rng(seed)
        cand = np.arange(1, n + 1, dtype=np.intp)
        d = rng.uniform(0.0, 400.0, size=n)
        full = model.accept(0, cand, d, 150.0, now)
        pick = rng.random(n) < 0.5
        sub = model.accept(0, cand[pick], d[pick], 150.0, now)
        assert np.array_equal(full[pick], sub)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        model_name=st.sampled_from(MODELS),
        now=st.floats(0.0, 100.0, allow_nan=False),
    )
    def test_accept_contained_in_query_radius(self, seed, model_name, now):
        model = make_propagation(model_name).bind(seed)
        cand = np.arange(1, 60, dtype=np.intp)
        d = np.linspace(1.0, 600.0, cand.size)
        ok = model.accept(0, cand, d, 150.0, now)
        assert np.all(d[ok] <= model.query_radius(150.0) + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31), a=st.integers(0, 500), b=st.integers(0, 500))
    def test_log_distance_symmetry(self, seed, a, b):
        model = LogDistance(sigma_db=6.0).bind(seed)
        d = np.array([140.0])
        ab = model.accept(a, np.array([b], dtype=np.intp), d, 150.0, 0.0)
        ba = model.accept(b, np.array([a], dtype=np.intp), d, 150.0, 0.0)
        assert np.array_equal(ab, ba)

    def test_log_distance_time_invariant_sinr_not(self):
        cand = np.arange(1, 200, dtype=np.intp)
        d = np.linspace(1.0, 300.0, cand.size)
        ld = LogDistance().bind(3)
        assert np.array_equal(
            ld.accept(0, cand, d, 150.0, 1.0), ld.accept(0, cand, d, 150.0, 88.0)
        )
        sinr = ProbabilisticSINR().bind(3)
        assert not np.array_equal(
            sinr.accept(0, cand, d, 150.0, 1.0), sinr.accept(0, cand, d, 150.0, 2.0)
        )
        # ... but identical at the same instant (pure keyed function).
        assert np.array_equal(
            sinr.accept(0, cand, d, 150.0, 1.0), sinr.accept(0, cand, d, 150.0, 1.0)
        )

    def test_dense_matrix_matches_accept(self):
        # The snapshot's dense predicate and the channel's per-sender
        # accept are the same verdict, row by row.
        n = 15
        rng = np.random.default_rng(8)
        pos = rng.uniform(0.0, 300.0, size=(n, 2))
        diff = pos[:, np.newaxis, :] - pos[np.newaxis, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        ranges = np.full(n, 150.0)
        for name in MODELS:
            model = make_propagation(name).bind(21)
            dense = model.in_range_matrix(dist, ranges, 2.5)
            for u in range(n):
                others = np.array([v for v in range(n) if v != u], dtype=np.intp)
                row = model.accept(u, others, dist[u, others], 150.0, 2.5)
                assert np.array_equal(dense[u, others], row), name

    def test_unit_disk_reference_semantics(self):
        model = UnitDisk()
        d = np.array([10.0, 150.0, 150.0 + 1e-9])
        assert model.query_radius(150.0) == 150.0
        assert model.accept(0, np.arange(1, 4), d, 150.0, 0.0).tolist() == [
            True, True, False,
        ]

    def test_sinr_probability_law(self):
        model = ProbabilisticSINR(midpoint=0.8, steepness=8.0, cutoff=1.2)
        r = 100.0
        p = model.success_probability(np.array([0.0, 80.0, 120.0 + 1e-9]), r)
        assert p[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx(0.5)
        assert p[2] == 0.0  # hard zero past cutoff

    def test_bind_changes_realisation_deterministically(self):
        cand = np.arange(1, 400, dtype=np.intp)
        d = np.linspace(1.0, 280.0, cand.size)
        a = LogDistance(sigma_db=6.0).bind(1).accept(0, cand, d, 150.0, 0.0)
        b = LogDistance(sigma_db=6.0).bind(2).accept(0, cand, d, 150.0, 0.0)
        c = LogDistance(sigma_db=6.0).bind(1).accept(0, cand, d, 150.0, 0.0)
        assert not np.array_equal(a, b)
        assert np.array_equal(a, c)


class TestSnapshotModelConsistency:
    @pytest.mark.parametrize("model", MODELS)
    def test_dense_and_csr_in_range_agree(self, model):
        cfg = _config(propagation=model)
        world = _world(cfg, "view-sync", 17, "scalar")
        world.run_until(4.0)
        snap = world.snapshot()
        dense = snap.in_range()
        csr = snap.in_range_csr()
        assert np.array_equal(dense, csr.to_dense())

    def test_deterministic_model_original_topology_is_mutual_subset(self):
        cfg = _config(propagation="log-distance")
        world = _world(cfg, "view-sync", 23, "scalar")
        world.run_until(4.0)
        snap = world.snapshot()
        adj = snap.original_topology()
        assert np.array_equal(adj, adj.T)
        assert not np.any(adj & (snap.dist > cfg.normal_range))


# --------------------------------------------------------------------- #
# 4. oracle adaptation


class TestOracleAdaptation:
    def _built(self, propagation: str, **cfg_over) -> NetworkWorld:
        cfg = _config(propagation=propagation, **cfg_over)
        return _world(cfg, "view-sync", 31, "scalar")

    def test_theorem5_slack_widens_only_for_stochastic_models(self):
        unit = self._built("unit-disk")
        shadow = self._built("log-distance")
        stochastic = self._built("sinr")
        base = theorem5_slack(unit)
        assert theorem5_slack(shadow) == pytest.approx(base)
        v_max = stochastic.mobility.max_speed()
        widened = theorem5_slack(stochastic)
        assert widened == pytest.approx(
            base + 2.0 * v_max * stochastic.config.max_hello_interval
        )
        assert widened > base

    def test_static_connectivity_oracle_stands_down_off_unit_disk(self):
        for model in MODELS:
            cfg = _config(propagation=model, duration=8.0)
            seeds = SeedSequenceFactory(7)
            from repro.mobility import StaticPlacement

            mobility = StaticPlacement(cfg.area, cfg.n_nodes, cfg.duration,
                                       rng=seeds.rng("m"))
            manager = MobilitySensitiveTopologyControl(
                RngProtocol(), mechanism=make_mechanism("view-sync"),
                buffer_policy=BufferZonePolicy(width=20.0, cap=cfg.normal_range),
            )
            world = NetworkWorld(cfg, mobility, manager, seed=7)
            world.run_until(cfg.duration)
            assert static_connectivity_oracle(world) == []


# --------------------------------------------------------------------- #
# 5. validation surface


class TestValidation:
    def test_registry_lists_all_models(self):
        assert available_propagation_models() == [
            "log-distance", "sinr", "unit-disk",
        ]

    def test_unknown_model_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown propagation model"):
            make_propagation("two-ray-ground")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            make_propagation("log-distance", gamma=2.0)

    @pytest.mark.parametrize("bad", [float("nan"), -1.0, float("inf")])
    def test_invalid_path_loss_exponent_via_check_non_negative(self, bad):
        with pytest.raises(ConfigurationError, match="path_loss_exponent"):
            LogDistance(path_loss_exponent=bad)

    def test_zero_path_loss_exponent_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly positive"):
            LogDistance(path_loss_exponent=0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError, match="sigma_db"):
            LogDistance(sigma_db=-2.0)

    def test_sinr_cutoff_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="cutoff"):
            ProbabilisticSINR(cutoff=0.9)

    def test_sinr_midpoint_above_cutoff_rejected(self):
        with pytest.raises(ConfigurationError, match="midpoint"):
            ProbabilisticSINR(midpoint=1.3, cutoff=1.2)

    def test_scenario_config_validates_at_construction(self):
        with pytest.raises(ConfigurationError, match="path_loss_exponent"):
            _config(propagation="log-distance",
                    propagation_params={"path_loss_exponent": float("nan")})

    def test_loss_rng_error_names_both_alternatives(self):
        # The teaching error must point at the FaultSchedule route AND
        # the propagation seam.
        with pytest.raises(ValueError) as exc:
            IdealChannel(hello_loss_rate=0.2)
        message = str(exc.value)
        assert "FaultSchedule" in message
        assert "propagation" in message
        assert "docs/PROPAGATION.md" in message

    def test_make_propagation_returns_shared_unit_disk(self):
        assert make_propagation("unit-disk") is UNIT_DISK

    def test_repr_names_the_class(self):
        assert repr(UnitDisk()) == "UnitDisk()"
        assert "LogDistance" in repr(LogDistance())
        assert "ProbabilisticSINR" in repr(ProbabilisticSINR())

    def test_base_class_methods_are_abstract(self):
        base = PropagationModel()
        with pytest.raises(NotImplementedError):
            base.query_radius(250.0)
        with pytest.raises(NotImplementedError):
            base.accept(0, np.array([1]), np.array([1.0]), 250.0, 0.0)
        with pytest.raises(NotImplementedError):
            base.in_range_matrix(np.zeros((2, 2)), np.ones(2), 0.0)

    def test_unit_disk_in_range_matrix_reference(self):
        # The fast paths special-case the unit disk, so pin the
        # reference method they are supposed to implement.
        dist = np.array([[0.0, 3.0], [3.0, 0.0]])
        out = UnitDisk().in_range_matrix(dist, np.array([3.0, 2.0]), 0.0)
        assert out.tolist() == [[True, True], [False, True]]
