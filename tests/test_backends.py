"""Conformance suite for the pluggable execution backends.

Every backend must honour the same contract: bit-identical results to a
cold run, resume from a checkpoint, cooperative cancel with
``CampaignInterrupted`` semantics, and quarantine of failing units.  The
QueueBackend additionally gets lease-reclaim coverage (a stalled
worker's units flow back to the pool) and the store v1→v2 migration is
pinned here.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec
from repro.mobility.base import Area
from repro.orchestrator import OrchestrationContext, RunStore, WorkUnit
from repro.orchestrator.backend import (
    BackendCapabilities,
    InProcessBackend,
    LocalPoolBackend,
    QueueBackend,
    UnitOutcome,
    available_backends,
    make_backend,
)
from repro.orchestrator.pool import WorkerPool
from repro.orchestrator.runner import CampaignInterrupted
from repro.orchestrator.store import STORE_SCHEMA_VERSION
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError, OrchestrationError

TINY = ScenarioConfig(
    n_nodes=10,
    area=Area(285.0, 285.0),
    normal_range=250.0,
    duration=5.0,
    warmup=2.0,
    sample_rate=1.0,
)

SPEC = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)
SPECS = [SPEC, SPEC.with_(mean_speed=5.0)]

#: A spec whose every unit fails (invalid protocol parameter).
BROKEN = SPEC.with_(protocol="yao", protocol_kwargs={"k": -1})


def _cold_reference():
    with OrchestrationContext() as ctx:
        return ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)


def _series(grouped):
    return [
        [run.delivery_ratios.tolist() for run in batch] for batch in grouped
    ]


@pytest.fixture(scope="module")
def cold():
    return _series(_cold_reference())


class TestRegistry:
    def test_taxonomy(self):
        assert available_backends() == ("inprocess", "local", "queue")

    def test_unknown_name_teaches_choices(self):
        with pytest.raises(ConfigurationError, match="inprocess, local, queue"):
            make_backend("threads")

    def test_queue_requires_store(self):
        with pytest.raises(ConfigurationError, match="store"):
            make_backend("queue")

    def test_capabilities_shape(self):
        caps = InProcessBackend().capabilities()
        assert isinstance(caps, BackendCapabilities)
        assert caps.name == "inprocess"
        assert not caps.writes_store
        assert LocalPoolBackend(workers=2).capabilities().parallel


class TestBitIdentity:
    """Same results from every backend, any worker count, with or
    without a store — seeds define runs, schedulers never do."""

    def test_inprocess_matches_cold(self, cold):
        with OrchestrationContext(backend="inprocess") as ctx:
            got = ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert _series(got) == cold

    def test_local_pooled_matches_cold(self, cold):
        with OrchestrationContext(backend="local", workers=2) as ctx:
            got = ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert _series(got) == cold

    def test_queue_inline_matches_cold(self, cold, tmp_path):
        store = RunStore(tmp_path / "queue.db")
        with OrchestrationContext(backend="queue", workers=0, store=store) as ctx:
            got = ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert _series(got) == cold
        store.close()

    def test_queue_two_workers_matches_cold(self, cold, tmp_path):
        store = RunStore(tmp_path / "queue2.db")
        with OrchestrationContext(backend="queue", workers=2, store=store) as ctx:
            got = ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert _series(got) == cold
        store.close()

    def test_exports_byte_identical_across_backends(self, tmp_path):
        """The acceptance contract: queue × 2 workers and local × 1
        worker settle on byte-identical deterministic exports."""
        qstore = RunStore(tmp_path / "q.db")
        with OrchestrationContext(backend="queue", workers=2, store=qstore) as ctx:
            ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        qstore.export_jsonl(tmp_path / "q.jsonl", deterministic=True)
        qstore.close()
        lstore = RunStore(tmp_path / "l.db")
        with OrchestrationContext(backend="local", workers=1, store=lstore) as ctx:
            ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        lstore.export_jsonl(tmp_path / "l.jsonl", deterministic=True)
        lstore.close()
        assert (
            (tmp_path / "q.jsonl").read_bytes()
            == (tmp_path / "l.jsonl").read_bytes()
        )


@pytest.mark.parametrize("backend,workers", [
    ("inprocess", 1), ("local", 1), ("queue", 0),
])
class TestResume:
    def test_interrupt_then_resume_is_bit_identical(
        self, cold, tmp_path, backend, workers
    ):
        store = RunStore(tmp_path / "resume.db")
        first = OrchestrationContext(
            store=store, max_units=2, backend=backend, workers=workers
        )
        with pytest.raises(CampaignInterrupted, match="resume"):
            with first:
                first.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert first.executed_units == 2
        assert store.counts()["done"] == 2

        second = OrchestrationContext(
            store=store, backend=backend, workers=workers
        )
        with second:
            got = second.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert second.resumed_units == 2
        assert second.executed_units == 2
        assert _series(got) == cold
        store.close()


@pytest.mark.parametrize("backend,workers", [
    ("inprocess", 1), ("local", 1), ("queue", 0),
])
class TestQuarantine:
    def test_failing_units_quarantine_not_abort(
        self, tmp_path, backend, workers
    ):
        """The batch still runs every unit; the all-broken spec is the
        one that raises, but the healthy spec's work is checkpointed."""
        store = RunStore(tmp_path / "quarantine.db")
        ctx = OrchestrationContext(
            store=store, retries=0, backend=backend, workers=workers
        )
        with ctx, pytest.raises(OrchestrationError, match="quarantined"):
            ctx.run_spec_batch([SPEC, BROKEN], repetitions=2, base_seed=50)
        counts = store.counts()
        assert counts["done"] == 2
        assert counts["quarantined"] == 2
        assert len(ctx.quarantined) == 2
        assert all("run failed" in str(q) or q.error for q in ctx.quarantined)
        store.close()


class TestCancel:
    def test_inprocess_cancel_between_polls(self):
        backend = InProcessBackend()
        ctx = OrchestrationContext(backend=backend)
        done_units = []
        original_poll = backend.poll

        def poll_then_cancel(timeout=0.1):
            out = original_poll(timeout)
            done_units.extend(out)
            if len(done_units) >= 2:
                ctx.cancel()
            return out

        backend.poll = poll_then_cancel
        with ctx, pytest.raises(CampaignInterrupted, match="cancelled"):
            ctx.run_spec_batch(SPECS, repetitions=3, base_seed=50)
        assert ctx.cancelled
        assert 2 <= ctx.executed_units < 6

    def test_cancelled_campaign_resumes_to_identical_results(
        self, cold, tmp_path
    ):
        store = RunStore(tmp_path / "cancel.db")
        backend = InProcessBackend()
        ctx = OrchestrationContext(store=store, backend=backend)
        original_poll = backend.poll
        seen = []

        def poll_then_cancel(timeout=0.1):
            out = original_poll(timeout)
            seen.extend(out)
            if len(seen) >= 1:
                ctx.cancel()
            return out

        backend.poll = poll_then_cancel
        with ctx, pytest.raises(CampaignInterrupted):
            ctx.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert 0 < store.counts()["done"] < 4

        resumed = OrchestrationContext(store=store, backend="inprocess")
        with resumed:
            got = resumed.run_spec_batch(SPECS, repetitions=2, base_seed=50)
        assert _series(got) == cold
        store.close()

    def test_queue_cancel_flags_store(self, tmp_path):
        store = RunStore(tmp_path / "qcancel.db")
        backend = QueueBackend(store=store, workers=0)
        backend.cancel()
        assert store.cancel_requested()
        assert backend.done()
        store.close()

    def test_local_pool_should_stop_halts_inline_run(self):
        executed = []
        stop = threading.Event()

        def worker(payload):
            executed.append(payload["n"])
            stop.set()
            return payload

        pool = WorkerPool(worker, workers=1, should_stop=stop.is_set)
        results, failures = [], []
        pool.run(
            {f"u{i}": {"n": i} for i in range(5)},
            lambda uid, r, a: results.append(uid),
            lambda uid, e, a: failures.append(uid),
        )
        # First unit set the stop flag; the rest never launched.
        assert executed == [0]
        assert len(results) == 1 and not failures


class TestLeaseReclaim:
    def _register(self, store, n=3):
        units = [
            WorkUnit(spec=SPEC, seed=seed, spec_json=SPEC.to_json())
            for seed in range(n)
        ]
        store.register(units)
        return units

    def test_expired_lease_is_reclaimable(self, tmp_path):
        store = RunStore(tmp_path / "lease.db")
        self._register(store)
        first = store.claim_units("stalled", limit=2, lease_seconds=0.05)
        assert [r.attempts for r in first] == [1, 1]
        # While the lease is live, nobody else can claim those units.
        assert len(store.claim_units("thief", limit=5)) == 1
        time.sleep(0.1)
        reclaimed = store.claim_units("thief", limit=5, lease_seconds=60.0)
        assert sorted(r.unit_id for r in reclaimed) == sorted(
            r.unit_id for r in first
        )
        assert [r.attempts for r in reclaimed] == [2, 2]
        store.close()

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        store = RunStore(tmp_path / "beat.db")
        self._register(store, n=1)
        [row] = store.claim_units("owner", lease_seconds=0.1)
        for _ in range(3):
            time.sleep(0.06)
            store.heartbeat("owner", [row.unit_id], lease_seconds=0.1)
        assert store.claim_units("thief", limit=1) == []
        store.close()

    def test_crashed_worker_unit_quarantines_after_max_claims(self, tmp_path):
        store = RunStore(tmp_path / "crash.db")
        self._register(store, n=1)
        # Two claims that never report (a worker crashing mid-unit) ...
        for _ in range(2):
            claimed = store.claim_units(
                "crashy", lease_seconds=0.0, max_attempts=2
            )
            assert len(claimed) == 1
            time.sleep(0.01)
        # ... and the third claim attempt quarantines instead of leasing.
        assert store.claim_units("next", lease_seconds=0.0, max_attempts=2) == []
        assert store.counts()["quarantined"] == 1
        row = store.units(status="quarantined")[0]
        assert "lease reclaimed" in row.error
        store.close()

    def test_completion_clears_lease(self, tmp_path):
        store = RunStore(tmp_path / "clear.db")
        [unit] = self._register(store, n=1)
        store.claim_units("owner", lease_seconds=60.0)
        store.record_result(unit, {"series": {}}, attempts=1)
        # Row is done and unleased; nothing left to claim or steal.
        assert store.claim_units("thief", limit=5) == []
        assert store.counts()["done"] == 1
        store.close()

    def test_release_returns_unit_to_pool(self, tmp_path):
        store = RunStore(tmp_path / "release.db")
        self._register(store, n=1)
        [row] = store.claim_units("owner", lease_seconds=60.0)
        store.release_unit(row.unit_id)
        [again] = store.claim_units("other", lease_seconds=60.0)
        assert again.unit_id == row.unit_id
        assert again.attempts == 2
        store.close()


class TestStoreMigration:
    def _make_v1(self, path):
        """Build a store with the exact v1 layout (no lease columns)."""
        import sqlite3

        conn = sqlite3.connect(str(path))
        conn.executescript(
            """
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE units (
                unit_id TEXT PRIMARY KEY,
                kind TEXT NOT NULL,
                label TEXT NOT NULL,
                seed INTEGER NOT NULL,
                status TEXT NOT NULL,
                attempts INTEGER NOT NULL DEFAULT 0,
                spec_json TEXT NOT NULL,
                result_json TEXT,
                error TEXT,
                created_at TEXT NOT NULL DEFAULT (datetime('now')),
                updated_at TEXT NOT NULL DEFAULT (datetime('now'))
            );
            CREATE INDEX idx_units_status ON units (status);
            """
        )
        from repro.orchestrator.units import SCHEMA_VERSION

        conn.execute(
            "INSERT INTO meta VALUES ('store_schema_version', '1')"
        )
        conn.execute(
            "INSERT INTO meta VALUES ('unit_schema_version', ?)",
            (SCHEMA_VERSION,),
        )
        conn.execute(
            "INSERT INTO units (unit_id, kind, label, seed, status, "
            "attempts, spec_json, result_json) VALUES "
            "('abc123', 'run', 'legacy', 7, 'done', 1, '{}', '{\"series\":{}}')"
        )
        conn.commit()
        conn.close()

    def test_v1_store_migrates_in_place(self, tmp_path):
        path = tmp_path / "v1.db"
        self._make_v1(path)
        store = RunStore(path)
        # Version bumped, data intact, queue columns usable.
        row = store.get("abc123")
        assert row is not None and row.status == "done"
        assert store.claim_units("w", limit=5) == []
        store.close()
        import sqlite3

        conn = sqlite3.connect(str(path))
        version = conn.execute(
            "SELECT value FROM meta WHERE key='store_schema_version'"
        ).fetchone()[0]
        columns = {r[1] for r in conn.execute("PRAGMA table_info(units)")}
        conn.close()
        assert version == str(STORE_SCHEMA_VERSION)
        assert {"lease_owner", "lease_expires", "heartbeat_at"} <= columns

    def test_future_schema_still_refuses(self, tmp_path):
        path = tmp_path / "future.db"
        store = RunStore(path)
        store._conn.execute(
            "UPDATE meta SET value='99' WHERE key='store_schema_version'"
        )
        store._conn.commit()
        store.close()
        with pytest.raises(ConfigurationError, match="store schema"):
            RunStore(path)


class TestControlFlags:
    def test_round_trip_and_cancel(self, tmp_path):
        store = RunStore(tmp_path / "flags.db")
        assert store.get_control("cancel") is None
        assert not store.cancel_requested()
        store.set_control("note", "hello")
        assert store.get_control("note") == "hello"
        store.request_cancel()
        assert store.cancel_requested()
        # Control flags never collide with schema metadata.
        store.close()
        assert RunStore(tmp_path / "flags.db").cancel_requested()


class TestDeterministicExport:
    def test_deterministic_mode_omits_timestamps(self, tmp_path):
        import json

        store = RunStore(tmp_path / "det.db")
        unit = WorkUnit(spec=SPEC, seed=1, spec_json=SPEC.to_json())
        store.register([unit])
        store.record_result(unit, {"series": {}})
        store.export_jsonl(tmp_path / "det.jsonl", deterministic=True)
        store.export_jsonl(tmp_path / "wall.jsonl")
        det_rows = [
            json.loads(line)
            for line in (tmp_path / "det.jsonl").read_text().splitlines()
        ]
        wall_rows = [
            json.loads(line)
            for line in (tmp_path / "wall.jsonl").read_text().splitlines()
        ]
        assert "created_at" not in det_rows[1]
        assert "updated_at" not in det_rows[1]
        assert "created_at" in wall_rows[1]
        store.close()


class TestDeprecatedEntryPoints:
    def test_package_root_workerpool_warns(self):
        import importlib

        orchestrator = importlib.import_module("repro.orchestrator")
        with pytest.warns(DeprecationWarning, match="submit_campaign"):
            pool_cls = orchestrator.WorkerPool
        assert pool_cls is WorkerPool

    def test_api_run_repetitions_many_warns(self):
        from repro import api

        with pytest.warns(DeprecationWarning, match="submit_campaign"):
            fn = api.run_repetitions_many
        from repro.analysis.experiment import run_repetitions_many

        assert fn is run_repetitions_many

    def test_api_workerpool_warns(self):
        from repro import api

        with pytest.warns(DeprecationWarning, match="backend='local'"):
            assert api.WorkerPool is WorkerPool


class TestSubmitCampaign:
    def test_handle_runs_to_done(self, cold):
        from repro.api import submit_campaign

        handle = submit_campaign(SPECS, repetitions=2, base_seed=50)
        aggregates = handle.result(timeout=300)
        assert handle.done()
        status = handle.status()
        assert status.state == "done"
        assert status.executed_units == 4
        assert len(aggregates) == 2
        reference = _cold_reference()
        for aggregate, runs in zip(aggregates, reference):
            assert np.isclose(
                aggregate.connectivity.mean,
                float(np.mean([r.connectivity_ratio for r in runs])),
            )

    def test_cancel_then_resume(self, cold, tmp_path):
        from repro.api import submit_campaign

        class OnePollBackend(InProcessBackend):
            """Cancellable deterministically: each poll runs one unit."""

        backend = OnePollBackend()
        store_path = str(tmp_path / "handle.db")
        handle = submit_campaign(
            SPECS, repetitions=2, base_seed=50,
            backend=backend, store=store_path,
        )
        # Cooperative cancel: whatever is done stays checkpointed.
        handle.cancel()
        with pytest.raises((CampaignInterrupted, Exception)):
            handle.result(timeout=300)
        assert handle.status().state in ("cancelled", "done")

        resumed = submit_campaign(
            SPECS, repetitions=2, base_seed=50,
            backend="inprocess", store=store_path,
        )
        aggregates = resumed.result(timeout=300)
        assert resumed.status().state == "done"
        assert len(aggregates) == 2
        assert (
            resumed.status().executed_units
            + resumed.status().resumed_units
            == 4
        )
