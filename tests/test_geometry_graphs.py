"""Tests for repro.geometry.graphs: reference geometric constructions."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.geometry.graphs import (
    connected_components,
    edge_list,
    euclidean_mst,
    gabriel_graph,
    is_connected,
    largest_component_fraction,
    relative_neighborhood_graph,
    unit_disk_graph,
    yao_graph,
)
from repro.geometry.points import pairwise_distances


@pytest.fixture
def cloud(rng):
    """A well-spread random point cloud."""
    return rng.random((25, 2)) * 100


class TestUnitDiskGraph:
    def test_edges_respect_radius(self, cloud):
        adj = unit_disk_graph(cloud, 30.0)
        d = pairwise_distances(cloud)
        assert np.array_equal(adj, (d <= 30.0) & ~np.eye(len(cloud), dtype=bool))

    def test_symmetric_no_self_loops(self, cloud):
        adj = unit_disk_graph(cloud, 40.0)
        assert np.array_equal(adj, adj.T)
        assert not adj.diagonal().any()

    def test_radius_zero_is_empty(self, cloud):
        assert not unit_disk_graph(cloud, 0.0).any()


class TestRng:
    def test_triangle_removes_longest_edge(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 1.0]])
        adj = relative_neighborhood_graph(pts)
        assert not adj[0, 1]  # longest side has witness 2
        assert adj[0, 2] and adj[1, 2]

    def test_subgraph_of_unit_disk(self, cloud):
        adj = relative_neighborhood_graph(cloud, radius=40.0)
        udg = unit_disk_graph(cloud, 40.0)
        assert not (adj & ~udg).any()

    def test_contains_emst(self, cloud):
        # Classic inclusion: EMST ⊆ RNG.
        mst = euclidean_mst(cloud)
        rng_adj = relative_neighborhood_graph(cloud)
        assert not (mst & ~rng_adj).any()

    def test_connected_when_udg_connected(self, cloud):
        udg = unit_disk_graph(cloud, 60.0)
        if is_connected(udg):
            assert is_connected(relative_neighborhood_graph(cloud, radius=60.0))

    def test_two_points_always_connected(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert relative_neighborhood_graph(pts)[0, 1]


class TestGabriel:
    def test_contains_rng(self, cloud):
        rng_adj = relative_neighborhood_graph(cloud)
        gg = gabriel_graph(cloud)
        assert not (rng_adj & ~gg).any()

    def test_right_angle_witness_removes_edge(self):
        # Witness on the diametral circle boundary keeps the edge; strictly
        # inside removes it.
        pts_inside = np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 0.5]])
        assert not gabriel_graph(pts_inside)[0, 1]
        pts_outside = np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 2.5]])
        assert gabriel_graph(pts_outside)[0, 1]

    def test_symmetric(self, cloud):
        gg = gabriel_graph(cloud)
        assert np.array_equal(gg, gg.T)


class TestEmst:
    def test_edge_count(self, cloud):
        mst = euclidean_mst(cloud)
        assert mst.sum() // 2 == len(cloud) - 1

    def test_spanning_and_connected(self, cloud):
        assert is_connected(euclidean_mst(cloud))

    def test_matches_networkx_weight(self, cloud):
        d = pairwise_distances(cloud)
        ours = sum(d[u, v] for u, v in edge_list(euclidean_mst(cloud)))
        g = nx.Graph()
        n = len(cloud)
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j, weight=d[i, j])
        theirs = sum(
            data["weight"] for _, _, data in nx.minimum_spanning_edges(g, data=True)
        )
        assert ours == pytest.approx(theirs)

    def test_single_point(self):
        assert euclidean_mst(np.array([[0.0, 0.0]])).shape == (1, 1)


class TestYao:
    def test_connected_with_six_cones(self, cloud):
        assert is_connected(yao_graph(cloud, k=6))

    def test_out_degree_bounded_by_k(self, cloud):
        # Each node *selects* at most k neighbors; symmetrisation can raise
        # total degree, so check selections via a directed reconstruction.
        k = 6
        adj = yao_graph(cloud, k=k)
        # weaker sanity bound: undirected degree <= 2k
        assert adj.sum(axis=1).max() <= 2 * k

    def test_respects_radius(self, cloud):
        adj = yao_graph(cloud, k=6, radius=30.0)
        udg = unit_disk_graph(cloud, 30.0)
        assert not (adj & ~udg).any()

    def test_invalid_k(self, cloud):
        with pytest.raises(ValueError):
            yao_graph(cloud, k=0)

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert yao_graph(pts, k=6)[0, 1]


class TestConnectivityHelpers:
    def test_is_connected_trivial(self):
        assert is_connected(np.zeros((1, 1), dtype=bool))
        assert is_connected(np.zeros((0, 0), dtype=bool))

    def test_disconnected_pair(self):
        assert not is_connected(np.zeros((2, 2), dtype=bool))

    def test_connected_components_labels(self):
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        adj[2, 3] = adj[3, 2] = True
        labels = connected_components(adj)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_largest_component_fraction(self):
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        assert largest_component_fraction(adj) == pytest.approx(0.5)

    def test_edge_list_upper_triangle(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 2] = adj[2, 0] = True
        assert edge_list(adj) == [(0, 2)]
