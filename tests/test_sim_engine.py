"""Tests for repro.sim.engine: the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, PeriodicTimer
from repro.util.errors import ScheduleError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule_at(2.0, seen.append, "late")
        eng.schedule_at(1.0, seen.append, "early")
        eng.run(until=3.0)
        assert seen == ["early", "late"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        eng = Engine()
        seen = []
        for tag in "abc":
            eng.schedule_at(1.0, seen.append, tag)
        eng.run(until=1.0)
        assert seen == ["a", "b", "c"]

    def test_now_tracks_event_time_during_callback(self):
        eng = Engine()
        observed = []
        eng.schedule_at(1.5, lambda: observed.append(eng.now))
        eng.run(until=5.0)
        assert observed == [1.5]

    def test_run_advances_now_to_until(self):
        eng = Engine()
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_schedule_after_relative(self):
        eng = Engine()
        seen = []
        eng.schedule_at(1.0, lambda: eng.schedule_after(0.5, seen.append, "x"))
        eng.run(until=2.0)
        assert seen == ["x"]

    def test_schedule_into_past_raises(self):
        eng = Engine()
        eng.run(until=5.0)
        with pytest.raises(ScheduleError, match="past"):
            eng.schedule_at(4.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ScheduleError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_non_finite_time_raises(self):
        with pytest.raises(ScheduleError):
            Engine().schedule_at(float("inf"), lambda: None)

    def test_run_backwards_raises(self):
        eng = Engine()
        eng.run(until=3.0)
        with pytest.raises(ScheduleError):
            eng.run(until=2.0)

    def test_events_scheduled_during_run_execute(self):
        eng = Engine()
        seen = []
        def chain(n):
            seen.append(n)
            if n < 3:
                eng.schedule_after(1.0, chain, n + 1)
        eng.schedule_at(0.0, chain, 0)
        eng.run(until=10.0)
        assert seen == [0, 1, 2, 3]

    def test_events_beyond_until_stay_queued(self):
        eng = Engine()
        seen = []
        eng.schedule_at(5.0, seen.append, "later")
        eng.run(until=4.0)
        assert seen == []
        eng.run(until=6.0)
        assert seen == ["later"]

    def test_reentrant_run_rejected(self):
        eng = Engine()
        err = []
        def reenter():
            try:
                eng.run(until=9.0)
            except ScheduleError as exc:
                err.append(exc)
        eng.schedule_at(1.0, reenter)
        eng.run(until=2.0)
        assert len(err) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        seen = []
        handle = eng.schedule_at(1.0, seen.append, "x")
        handle.cancel()
        eng.run(until=2.0)
        assert seen == []

    def test_handle_state_transitions(self):
        eng = Engine()
        handle = eng.schedule_at(1.0, lambda: None)
        assert handle.pending
        eng.run(until=1.0)
        assert handle.fired and not handle.pending

    def test_cancel_after_fire_is_noop(self):
        eng = Engine()
        handle = eng.schedule_at(1.0, lambda: None)
        eng.run(until=2.0)
        handle.cancel()
        assert handle.fired

    def test_clear_cancels_everything(self):
        eng = Engine()
        seen = []
        for t in (1.0, 2.0):
            eng.schedule_at(t, seen.append, t)
        eng.clear()
        eng.run(until=5.0)
        assert seen == []
        assert eng.pending_events == 0


class TestStep:
    def test_step_executes_one_event(self):
        eng = Engine()
        seen = []
        eng.schedule_at(1.0, seen.append, "a")
        eng.schedule_at(2.0, seen.append, "b")
        assert eng.step()
        assert seen == ["a"]

    def test_step_on_empty_queue_returns_false(self):
        assert not Engine().step()

    def test_step_skips_cancelled(self):
        eng = Engine()
        seen = []
        handle = eng.schedule_at(1.0, seen.append, "a")
        eng.schedule_at(2.0, seen.append, "b")
        handle.cancel()
        assert eng.step()
        assert seen == ["b"]


class TestCounters:
    def test_events_processed_counts(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule_at(t, lambda: None)
        eng.run(until=10.0)
        assert eng.events_processed == 3

    def test_pending_events_excludes_cancelled(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        h.cancel()
        assert eng.pending_events == 1


class TestTombstoneCompaction:
    def test_heap_compacts_when_cancellations_dominate(self):
        # Cancel 99 of 100 events: compaction must shrink the underlying
        # heap, not just the logical count, or long simulations with heavy
        # timer churn would leak dead entries.
        eng = Engine()
        handles = [eng.schedule_at(float(t + 1), lambda: None) for t in range(100)]
        for h in handles[1:]:
            h.cancel()
        assert eng.pending_events == 1
        # At most one tombstone may remain below the compaction threshold.
        assert len(eng._queue) <= 2
        assert eng._tombstones <= 1

    def test_events_still_fire_in_order_after_compaction(self):
        eng = Engine()
        seen = []
        handles = [
            eng.schedule_at(float(t + 1), seen.append, t) for t in range(20)
        ]
        for h in handles[::2]:  # cancel every other event -> triggers compaction
            h.cancel()
        eng.run(until=30.0)
        assert seen == list(range(1, 20, 2))
        assert eng.pending_events == 0

    def test_pop_of_uncompacted_tombstone_keeps_count_consistent(self):
        # Below the compaction threshold the tombstone stays in the heap;
        # popping it during run() must decrement the counter.
        eng = Engine()
        handles = [eng.schedule_at(float(t + 1), lambda: None) for t in range(5)]
        handles[0].cancel()  # 1 tombstone of 5 entries: no compaction yet
        assert eng._tombstones == 1
        eng.run(until=10.0)
        assert eng._tombstones == 0
        assert eng.pending_events == 0

    def test_double_cancel_counts_once(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        eng.schedule_at(3.0, lambda: None)
        h.cancel()
        h.cancel()
        assert eng.pending_events == 2

    def test_clear_resets_tombstones(self):
        eng = Engine()
        handles = [eng.schedule_at(float(t + 1), lambda: None) for t in range(6)]
        handles[0].cancel()
        eng.clear()
        assert eng.pending_events == 0
        assert eng._tombstones == 0
        eng.schedule_at(1.0, lambda: None)
        assert eng.pending_events == 1


class TestPeriodicTimer:
    def test_fires_at_interval(self):
        eng = Engine()
        ticks = []
        PeriodicTimer(eng, 1.0, ticks.append, first_at=0.0)
        eng.run(until=3.5)
        assert ticks == [0, 1, 2, 3]

    def test_callable_interval(self):
        eng = Engine()
        times = []
        intervals = iter([1.0, 2.0, 4.0, 100.0])
        PeriodicTimer(eng, lambda: next(intervals), lambda _t: times.append(eng.now), first_at=0.0)
        eng.run(until=8.0)
        assert times == [0.0, 1.0, 3.0, 7.0]

    def test_stop_halts_timer(self):
        eng = Engine()
        ticks = []
        timer = PeriodicTimer(eng, 1.0, ticks.append, first_at=0.0)
        eng.schedule_at(2.5, timer.stop)
        eng.run(until=10.0)
        assert ticks == [0, 1, 2]
        assert timer.ticks == 3

    def test_nonpositive_interval_raises(self):
        eng = Engine()
        PeriodicTimer(eng, 0.0, lambda _t: None, first_at=0.0)
        with pytest.raises(ScheduleError):
            eng.run(until=1.0)

    def test_first_at_defaults_to_now(self):
        eng = Engine()
        eng.run(until=2.0)
        ticks = []
        PeriodicTimer(eng, 1.0, ticks.append)
        eng.run(until=4.0)
        assert ticks == [0, 1, 2]
