"""Second property-test battery: routing, broadcast, and graph hierarchy.

- GFG/GPSR delivers on every connected topology (greedy + face recovery
  on the Gabriel planarisation) — the guarantee the routing layer rests on;
- the CDS forward set dominates and covers on connected graphs;
- the classic containment hierarchy EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay;
- weak-consistency selections are monotone in the retained history.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_multi_view
from repro.geometry.graphs import (
    delaunay_graph,
    euclidean_mst,
    gabriel_graph,
    is_connected,
    relative_neighborhood_graph,
    unit_disk_graph,
)
from repro.protocols import MstProtocol, RngProtocol, Spt2Protocol
from repro.routing.geographic import GeographicRouter
from repro.sim.broadcast import cds_broadcast, cds_forward_set


def _cloud(draw, n_min=4, n_max=16, span=100.0):
    n = draw(st.integers(n_min, n_max))
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(0, span, allow_nan=False, width=16),
                st.floats(0, span, allow_nan=False, width=16),
            ),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return np.asarray(coords, dtype=np.float64)


class TestGpsrDeliveryGuarantee:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_delivers_on_every_connected_unit_disk_graph(self, data):
        pts = _cloud(data.draw)
        radius = data.draw(st.floats(30.0, 120.0))
        adj = unit_disk_graph(pts, radius)
        if not is_connected(adj):
            return
        router = GeographicRouter(adj, pts)
        n = len(pts)
        source = data.draw(st.integers(0, n - 1))
        dest = data.draw(st.integers(0, n - 1))
        result = router.route(source, dest)
        assert result.delivered, (
            f"GPSR failed on a connected graph: {source}->{dest}, "
            f"path={result.path}"
        )

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_delivers_on_gabriel_topology(self, data):
        # Gabriel graphs are planar AND their own planarisation: the
        # cleanest face-routing substrate.
        pts = _cloud(data.draw, n_min=5)
        adj = gabriel_graph(pts)
        if not is_connected(adj):
            return
        router = GeographicRouter(adj, pts)
        result = router.route(0, len(pts) - 1)
        assert result.delivered


class TestCdsProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_forward_set_dominates_connected_graphs(self, data):
        pts = _cloud(data.draw, n_min=5)
        radius = data.draw(st.floats(35.0, 120.0))
        adj = unit_disk_graph(pts, radius)
        if not is_connected(adj):
            return
        forward = cds_forward_set(adj)
        if not forward.any():
            # clique-like graphs: any single node relays everything
            assert adj.all(where=~np.eye(len(pts), dtype=bool)) or len(pts) <= 2
            return
        covered = forward | (adj & forward[np.newaxis, :]).any(axis=1)
        assert covered.all()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_broadcast_covers_connected_graphs(self, data):
        pts = _cloud(data.draw, n_min=3)
        radius = data.draw(st.floats(35.0, 120.0))
        adj = unit_disk_graph(pts, radius)
        if not is_connected(adj):
            return
        source = data.draw(st.integers(0, len(pts) - 1))
        outcome = cds_broadcast(adj, source)
        assert outcome.coverage == 1.0
        assert outcome.transmissions <= len(pts)


def _no_cocircular_quad(pts: np.ndarray) -> bool:
    """True when no four points are (near-)co-circular.

    With a co-circular quadruple the Delaunay triangulation is not unique
    — qhull arbitrarily picks one diagonal of the quad while the Gabriel
    graph may keep the other — so ``Gabriel ⊆ Delaunay`` only holds in
    general position.  The incircle determinant is evaluated on
    span-normalised coordinates so the zero test is scale-free.
    """
    from itertools import combinations

    n = len(pts)
    if n < 4:
        return True
    span = max(float(np.ptp(pts[:, 0])), float(np.ptp(pts[:, 1])), 1.0)
    q = pts / span
    idx = np.array(list(combinations(range(n), 4)))
    quads = q[idx]  # (m, 4, 2)
    mats = np.concatenate(
        [
            quads,
            (quads**2).sum(axis=2, keepdims=True),
            np.ones((len(idx), 4, 1)),
        ],
        axis=2,
    )
    return bool((np.abs(np.linalg.det(mats)) > 1e-9).all())


class TestProximityHierarchy:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_emst_rng_gabriel_delaunay_chain(self, data):
        pts = _cloud(data.draw, n_min=4)
        emst = euclidean_mst(pts)
        rng_g = relative_neighborhood_graph(pts)
        gg = gabriel_graph(pts)
        assert not (emst & ~rng_g).any(), "EMST must be inside RNG"
        assert not (rng_g & ~gg).any(), "RNG must be inside Gabriel"
        if _no_cocircular_quad(pts):
            dt = delaunay_graph(pts)
            assert not (gg & ~dt).any(), "Gabriel must be inside Delaunay"


class TestWeakMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_longer_history_never_removes_more(self, seed):
        """Retaining a superset of Hellos widens cost intervals, so the
        conservative selection can only grow."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 8))
        all_positions = {
            i: [tuple(rng.random(2) * 60) for _ in range(3)] for i in range(n)
        }
        short = {i: hist[-1:] for i, hist in all_positions.items()}
        long = all_positions
        for proto in (RngProtocol(), MstProtocol(), Spt2Protocol()):
            sel_short = proto.select_conservative(
                make_multi_view(0, short, normal_range=80.0)
            ).logical_neighbors
            sel_long = proto.select_conservative(
                make_multi_view(0, long, normal_range=80.0)
            ).logical_neighbors
            # longer history => adjacency can only grow, cost intervals only
            # widen, removals only shrink: the selection must be a superset
            removed_by_more_info = sel_short - sel_long
            assert not removed_by_more_info, (
                f"{proto.name}: longer history removed {removed_by_more_info}"
            )
