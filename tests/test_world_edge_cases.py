"""Edge-case and integration tests that cross module boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, run_once
from repro.mobility.base import Area
from repro.protocols import make_protocol
from repro.sim.config import ScenarioConfig
from repro.util.errors import ProtocolError

CFG = ScenarioConfig(
    n_nodes=15,
    area=Area(349.0, 349.0),
    normal_range=250.0,
    duration=8.0,
    warmup=2.0,
    sample_rate=1.0,
)


class TestCompositeByName:
    def test_make_protocol_parses_ampersand(self):
        combo = make_protocol("rng&spt2")
        assert combo.name == "rng&spt2"
        assert [p.name for p in combo.protocols] == ["rng", "spt2"]

    def test_composite_kwargs_rejected(self):
        with pytest.raises(ProtocolError):
            make_protocol("rng&spt2", k=3)

    def test_unknown_constituent_rejected(self):
        with pytest.raises(ProtocolError):
            make_protocol("rng&warp")

    def test_composite_runs_in_harness(self):
        spec = ExperimentSpec(
            protocol="rng&spt2", mechanism="view-sync", buffer_width=30.0,
            mean_speed=10.0, config=CFG,
        )
        result = run_once(spec, seed=4)
        assert 0.0 <= result.connectivity_ratio <= 1.0
        # intersection is sparser than either constituent alone
        rng_only = run_once(spec.with_(protocol="rng"), seed=4)
        assert result.mean_logical_degree <= rng_only.mean_logical_degree + 1e-9

    def test_composite_weak_mode_in_harness(self):
        spec = ExperimentSpec(
            protocol="rng&mst", mechanism="weak", buffer_width=10.0,
            mean_speed=10.0, config=CFG,
        )
        result = run_once(spec, seed=4)
        assert result.mean_logical_degree > 0


class TestMechanismLossInterplay:
    @pytest.mark.parametrize("mechanism", ["baseline", "view-sync", "reactive"])
    def test_mechanisms_survive_hello_loss(self, mechanism):
        cfg = ScenarioConfig(
            n_nodes=15, area=Area(349.0, 349.0), normal_range=250.0,
            duration=8.0, warmup=2.0, sample_rate=1.0, hello_loss_rate=0.25,
        )
        spec = ExperimentSpec(
            protocol="rng", mechanism=mechanism, buffer_width=30.0,
            mean_speed=10.0, config=cfg,
        )
        result = run_once(spec, seed=5)
        assert result.stats.hello_losses > 0
        assert 0.0 <= result.connectivity_ratio <= 1.0

    def test_proactive_tolerates_loss(self):
        # Lost version-s Hellos shrink versioned views; the mechanism must
        # keep functioning (smaller views, never crashes).
        cfg = ScenarioConfig(
            n_nodes=15, area=Area(349.0, 349.0), normal_range=250.0,
            duration=8.0, warmup=2.0, sample_rate=1.0, hello_loss_rate=0.3,
        )
        spec = ExperimentSpec(
            protocol="rng", mechanism="proactive", buffer_width=50.0,
            mean_speed=5.0, config=cfg,
        )
        result = run_once(spec, seed=5)
        assert result.connectivity_ratio >= 0.0


class TestTraceAcrossMechanisms:
    @pytest.mark.parametrize("mechanism", ["baseline", "weak", "proactive"])
    def test_trace_roundtrip(self, mechanism, tmp_path):
        from repro.analysis.experiment import build_world
        from repro.sim.trace import SimulationTrace, TraceRecorder

        spec = ExperimentSpec(
            protocol="rng", mechanism=mechanism, buffer_width=10.0,
            mean_speed=10.0, config=CFG,
        )
        world = build_world(spec, seed=6)
        recorder = TraceRecorder(world)
        for t in (3.0, 5.0, 7.0):
            world.run_until(t)
            recorder.record()
        trace = recorder.finish()
        path = tmp_path / f"{mechanism}.npz"
        trace.save(path)
        loaded = SimulationTrace.load(path)
        assert loaded.n_samples == 3
        snap = loaded.snapshot(1)
        assert snap.time == 5.0
        assert snap.positions.shape == (CFG.n_nodes, 2)


class TestVelocitiesApi:
    def test_trajectory_velocities_match_finite_difference(self, area, rng):
        from repro.mobility.waypoint import RandomWaypoint

        model = RandomWaypoint(area, 6, horizon=20.0, mean_speed=10.0, rng=rng)
        traj = model.trajectories
        t = 7.3
        vel = traj.velocities(t)
        eps = 1e-4
        approx = (traj.positions(t + eps) - traj.positions(t - eps)) / (2 * eps)
        # matches except exactly at waypoints (measure zero)
        close = np.isclose(vel, approx, atol=1e-2)
        assert close.mean() > 0.8


class TestFloodOverride:
    def test_pn_override_parameter(self):
        from repro.analysis.experiment import build_world
        from repro.sim.flood import flood

        spec = ExperimentSpec(
            protocol="mst", mechanism="baseline", buffer_width=0.0,
            mean_speed=20.0, config=CFG,
        )
        world = build_world(spec, seed=7)
        world.run_until(6.0)
        strict = flood(world, source=0, physical_neighbor_mode=False)
        relaxed = flood(world, source=0, physical_neighbor_mode=True)
        assert relaxed.reached.sum() >= strict.reached.sum()
