"""Tests for repro.core.consistency: the five mechanism strategies."""

from __future__ import annotations

import pytest

from conftest import make_hello
from repro.core.consistency import (
    BaselineConsistency,
    ProactiveConsistency,
    ReactiveConsistency,
    ViewSynchronization,
    WeakConsistency,
    make_mechanism,
)
from repro.core.tables import NeighborTable
from repro.protocols import MstProtocol, RngProtocol
from repro.util.errors import ViewError


@pytest.fixture
def table():
    t = NeighborTable(owner=0, normal_range=100.0, history_depth=3, expiry=10.0)
    t.record_own(make_hello(0, (0, 0), version=1, sent_at=0.0))
    t.record_hello(make_hello(1, (10, 0), version=1, sent_at=0.1))
    t.record_hello(make_hello(2, (5, 1), version=1, sent_at=0.2))
    return t


@pytest.fixture
def current():
    return make_hello(0, (0.5, 0.0), version=2, sent_at=1.0)


class TestBaseline:
    def test_uses_current_position(self, table, current):
        result = BaselineConsistency().decide(RngProtocol(), table, 1.0, current)
        # (0,1) removable via witness 2: decision exists and excludes 1.
        assert result.logical_neighbors == frozenset({2})

    def test_flags(self):
        m = BaselineConsistency()
        assert not m.recompute_on_packet
        assert not m.synchronized_versions


class TestViewSynchronization:
    def test_uses_last_advertised_position(self, table, current):
        # Advertised position is (0,0); current is (0.5,0) — the decision
        # must be identical to one taken from (0,0).
        vs = ViewSynchronization().decide(RngProtocol(), table, 1.0, current)
        base_from_advertised = BaselineConsistency().decide(
            RngProtocol(), table, 1.0, table.last_advertised
        )
        assert vs.logical_neighbors == base_from_advertised.logical_neighbors

    def test_falls_back_to_current_when_never_advertised(self, current):
        empty = NeighborTable(owner=0, normal_range=100.0)
        empty.record_hello(make_hello(1, (10, 0), sent_at=0.0))
        result = ViewSynchronization().decide(RngProtocol(), empty, 1.0, current)
        assert 1 in result.logical_neighbors

    def test_recomputes_on_packet(self):
        assert ViewSynchronization().recompute_on_packet


class TestProactive:
    def test_decides_on_requested_version(self, table, current):
        table.record_own(make_hello(0, (0, 0), version=2, sent_at=1.0))
        table.record_hello(make_hello(1, (50, 0), version=2, sent_at=1.1))
        r1 = ProactiveConsistency().decide(RngProtocol(), table, 2.0, current, version=1)
        r2 = ProactiveConsistency().decide(RngProtocol(), table, 2.0, current, version=2)
        # version-2 view lacks node 2, so the long link (0,1) survives there.
        assert 1 not in r1.logical_neighbors
        assert 1 in r2.logical_neighbors

    def test_default_version_is_latest(self, table, current):
        result = ProactiveConsistency().decide(RngProtocol(), table, 1.0, current)
        assert result.logical_neighbors == frozenset({2})

    def test_falls_back_to_older_version(self, table, current):
        # Version 5 never advertised: fall back to version 1.
        result = ProactiveConsistency().decide(
            RngProtocol(), table, 1.0, current, version=5
        )
        assert result.logical_neighbors == frozenset({2})

    def test_raises_before_first_advertisement(self, current):
        empty = NeighborTable(owner=0, normal_range=100.0)
        with pytest.raises(ViewError):
            ProactiveConsistency().decide(RngProtocol(), empty, 0.0, current)

    def test_flags(self):
        m = ProactiveConsistency()
        assert m.recompute_on_packet and m.synchronized_versions


class TestReactive:
    def test_inherits_versioned_behavior(self, table, current):
        result = ReactiveConsistency().decide(
            RngProtocol(), table, 1.0, current, version=1
        )
        assert result.logical_neighbors == frozenset({2})

    def test_does_not_recompute_on_packet(self):
        m = ReactiveConsistency()
        assert not m.recompute_on_packet and m.synchronized_versions


class TestWeak:
    def test_conservative_selection_keeps_more(self, current):
        # Neighbor 1 oscillates: conservative mode must keep the link that
        # a single-version view would drop.
        t = NeighborTable(owner=0, normal_range=100.0, history_depth=3, expiry=10.0)
        t.record_own(make_hello(0, (0, 0), version=1, sent_at=0.0))
        t.record_hello(make_hello(1, (10, 0), version=1, sent_at=0.0))
        t.record_hello(make_hello(1, (4, 0), version=2, sent_at=1.0))
        t.record_hello(make_hello(2, (5, 1), version=1, sent_at=0.0))
        weak = WeakConsistency().decide(MstProtocol(), t, 1.5, current)
        base = BaselineConsistency().decide(MstProtocol(), t, 1.5, current)
        assert base.logical_neighbors <= weak.logical_neighbors

    def test_history_depth_validated(self):
        with pytest.raises(Exception):
            WeakConsistency(history_depth=0)


class TestMakeMechanism:
    @pytest.mark.parametrize(
        "name", ["baseline", "view-sync", "proactive", "reactive", "weak"]
    )
    def test_all_names_constructible(self, name):
        assert make_mechanism(name).name == name

    def test_kwargs_forwarded(self):
        m = make_mechanism("weak", history_depth=5)
        assert m.history_depth == 5

    def test_unknown_name_rejected(self):
        with pytest.raises(ViewError):
            make_mechanism("nope")
