"""Tests for trace recording, k-connectivity metrics, and ASCII plotting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.plotting import ascii_chart, figure_chart
from repro.metrics.kconn import (
    edge_connectivity,
    min_link_failures_to_partition,
    snapshot_edge_connectivity,
    vertex_connectivity,
)
from repro.sim.trace import SimulationTrace, TraceRecorder
from repro.sim.world import WorldSnapshot
from repro.util.errors import SimulationError


# --------------------------------------------------------------------- #
# k-connectivity


def ring(n):
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n):
        adj[i, (i + 1) % n] = adj[(i + 1) % n, i] = True
    return adj


class TestKConnectivity:
    def test_tree_is_1_edge_connected(self):
        adj = np.zeros((4, 4), dtype=bool)
        for u, v in [(0, 1), (1, 2), (1, 3)]:
            adj[u, v] = adj[v, u] = True
        assert edge_connectivity(adj) == 1
        assert vertex_connectivity(adj) == 1

    def test_ring_is_2_connected(self):
        adj = ring(6)
        assert edge_connectivity(adj) == 2
        assert vertex_connectivity(adj) == 2

    def test_complete_graph(self):
        n = 5
        adj = np.ones((n, n), dtype=bool) & ~np.eye(n, dtype=bool)
        assert edge_connectivity(adj) == n - 1

    def test_disconnected_is_zero(self):
        assert edge_connectivity(np.zeros((3, 3), dtype=bool)) == 0
        assert vertex_connectivity(np.zeros((3, 3), dtype=bool)) == 0

    def test_trivial_sizes(self):
        assert edge_connectivity(np.zeros((1, 1), dtype=bool)) == 0

    def test_snapshot_wrapper(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [2.5, 4.0]])
        diff = positions[:, None] - positions[None]
        dist = np.sqrt((diff**2).sum(-1))
        logical = np.ones((3, 3), dtype=bool) & ~np.eye(3, dtype=bool)
        snap = WorldSnapshot(
            time=0.0, positions=positions, dist=dist, logical=logical,
            actual_ranges=np.full(3, 10.0), extended_ranges=np.full(3, 10.0),
            normal_range=20.0,
        )
        assert snapshot_edge_connectivity(snap) == 2
        assert min_link_failures_to_partition(snap) == 2


# --------------------------------------------------------------------- #
# trace recording


@pytest.fixture
def small_world():
    from repro.analysis.experiment import ExperimentSpec, build_world
    from repro.mobility.base import Area
    from repro.sim.config import ScenarioConfig

    cfg = ScenarioConfig(
        n_nodes=10, area=Area(300.0, 300.0), normal_range=150.0,
        duration=6.0, warmup=2.0, sample_rate=1.0,
    )
    spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=cfg)
    return build_world(spec, seed=2)


class TestTraceRecorder:
    def test_records_samples(self, small_world):
        rec = TraceRecorder(small_world)
        for t in (2.0, 3.0, 4.0):
            small_world.run_until(t)
            rec.record(delivery_ratio=0.5)
        trace = rec.finish()
        assert trace.n_samples == 3
        assert trace.n_nodes == 10
        assert np.allclose(trace.times, [2.0, 3.0, 4.0])
        assert np.allclose(trace.delivery_ratios, 0.5)

    def test_record_after_finish_rejected(self, small_world):
        rec = TraceRecorder(small_world)
        rec.finish()
        with pytest.raises(SimulationError):
            rec.record()

    def test_snapshot_roundtrip(self, small_world):
        rec = TraceRecorder(small_world)
        small_world.run_until(3.0)
        rec.record()
        live = small_world.snapshot()
        trace = rec.finish()
        restored = trace.snapshot(0)
        assert np.allclose(restored.positions, live.positions)
        assert np.array_equal(restored.logical, live.logical)
        assert np.allclose(restored.dist, live.dist)
        assert restored.normal_range == live.normal_range

    def test_save_load_roundtrip(self, small_world, tmp_path):
        rec = TraceRecorder(small_world, label="unit-test")
        small_world.run_until(3.0)
        rec.record(delivery_ratio=0.75)
        trace = rec.finish()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = SimulationTrace.load(path)
        assert loaded.n_samples == 1
        assert loaded.meta["label"] == "unit-test"
        assert loaded.meta["n_nodes"] == 10
        assert np.allclose(loaded.positions, trace.positions)
        assert np.array_equal(loaded.logical, trace.logical)

    def test_empty_trace(self, small_world):
        trace = TraceRecorder(small_world).finish()
        assert trace.n_samples == 0 and trace.n_nodes == 0

    def test_plain_world_meta_has_no_observability_keys(self, small_world):
        trace = TraceRecorder(small_world).finish()
        assert "telemetry" not in trace.meta
        assert "fault_schedule" not in trace.meta

    def test_telemetry_and_faults_meta_roundtrip(self, tmp_path):
        from repro.analysis.experiment import ExperimentSpec, build_world
        from repro.faults.schedule import FaultSchedule, NodeOutage
        from repro.mobility.base import Area
        from repro.sim.config import ScenarioConfig
        from repro.telemetry import Telemetry

        cfg = ScenarioConfig(
            n_nodes=10, area=Area(300.0, 300.0), normal_range=150.0,
            duration=6.0, warmup=2.0, sample_rate=1.0,
        )
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=cfg)
        schedule = FaultSchedule(
            events=(NodeOutage(node=3, start=2.5, end=4.0),), note="unit"
        )
        telemetry = Telemetry()
        world = build_world(spec, seed=2, faults=schedule, telemetry=telemetry)
        rec = TraceRecorder(world)
        world.run_until(3.0)
        rec.record()
        trace = rec.finish()
        path = tmp_path / "traced.npz"
        trace.save(path)
        loaded = SimulationTrace.load(path)
        # The telemetry summary survives the repr/literal_eval meta trip
        # exactly as frozen at finish() time (recording happens before).
        assert loaded.meta["telemetry"] == trace.meta["telemetry"]
        assert loaded.meta["telemetry"]["counters"]["hello_sent"] > 0
        assert "spans" in loaded.meta["telemetry"]
        # The embedded schedule rebuilds into an equal FaultSchedule.
        rebuilt = FaultSchedule.from_dict(loaded.meta["fault_schedule"])
        assert rebuilt == schedule


# --------------------------------------------------------------------- #
# ASCII plotting


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"a": ([0, 1, 2], [0.0, 0.5, 1.0]), "b": ([0, 1, 2], [1.0, 0.5, 0.0])},
            width=30, height=8,
        )
        assert "o a" in chart and "x b" in chart
        assert "o" in chart.splitlines()[1] or "x" in chart.splitlines()[1]

    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"

    def test_fixed_y_range_labels(self):
        chart = ascii_chart({"a": ([0, 1], [0.2, 0.8])}, y_range=(0.0, 1.0))
        assert "1.00" in chart and "0.00" in chart

    def test_title_rendered(self):
        chart = ascii_chart({"a": ([0, 1], [0, 1])}, title="MY TITLE")
        assert chart.splitlines()[0] == "MY TITLE"

    def test_constant_series_handled(self):
        chart = ascii_chart({"a": ([0, 1], [0.5, 0.5])})
        assert "(no data)" not in chart

    def test_single_point_series(self):
        chart = ascii_chart({"a": ([1.0], [0.5])})
        assert "o a" in chart

    def test_figure_chart_of_real_result(self):
        from repro.analysis.experiment import AggregateResult, ExperimentSpec
        from repro.analysis.figures import FigurePoint, FigureResult, FigureSeries
        from repro.analysis.scales import SMOKE
        from repro.metrics.stats import Estimate

        est = Estimate(mean=0.7, half_width=0.0, n=1)
        agg = AggregateResult(
            spec=ExperimentSpec(), n_repetitions=1, connectivity=est,
            transmission_range=est, logical_degree=est, physical_degree=est,
            strict_connectivity=est,
        )
        fig = FigureResult(
            figure_id="figT", title="t", scale=SMOKE,
            series=(FigureSeries("s", "speed", (FigurePoint(1.0, agg), FigurePoint(2.0, agg))),),
        )
        chart = figure_chart(fig)
        assert "figT" in chart and "speed" in chart
