"""Property-based bit-identity of the sparse-first pipeline.

The sparse CSR structures are pure accelerators: every edge set, degree,
distance, reachability mask and metric value they produce must be
*bit-identical* to the dense ``(n, n)`` oracle path.  Hypothesis searches
quarter-metre-lattice point sets (exactly representable coordinates, so
comparison conventions — not floating-point luck — are what the
properties exercise), including boundary-inclusive radii, and degenerate
empty / singleton / collinear deployments.  The world-level suite forces
the sparse snapshot representation at small n (by lowering the module
switches) and checks every converted consumer against the dense build of
the same instant.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.world as world_mod
from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import BaselineConsistency, ProactiveConsistency
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.geometry.csr import CSRGraph, csr_bfs
from repro.geometry.grid import GraphBackend, GridIndex
from repro.geometry.points import pairwise_distances
from repro.geometry.sparse import IncrementalNeighborhoods, neighborhood_csr
from repro.metrics.connectivity import (
    largest_effective_component,
    logical_topology_connected,
    original_topology_connected,
    pairwise_connectivity_ratio,
    strictly_connected,
)
from repro.metrics.interference import snapshot_interference
from repro.metrics.kconn import snapshot_edge_connectivity
from repro.metrics.links import LinkLifetimeTracker
from repro.mobility import Area, RandomWaypoint, StaticPlacement
from repro.protocols import RngProtocol
from repro.sim.config import ScenarioConfig
from repro.sim.flood import directed_bfs, flood
from repro.sim.world import NetworkWorld, WorldSnapshot
from repro.util.errors import DenseMaterializationError
from repro.util.randomness import SeedSequenceFactory

# Quarter-metre lattice: squared distances are exact binary64 values.
_COORD = st.integers(min_value=0, max_value=4000).map(lambda k: k * 0.25)
_POINTS = st.lists(
    st.tuples(_COORD, _COORD), min_size=1, max_size=60, unique=True
).map(lambda rows: np.array(rows, dtype=np.float64))
_RADIUS = st.integers(min_value=1, max_value=1600).map(lambda k: k * 0.25)


def assert_csr_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert a.n == b.n
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    if a.data is None or b.data is None:
        assert a.data is None and b.data is None
    else:
        # bitwise, not approximate: both paths must run the same IEEE ops
        assert np.array_equal(a.data, b.data)


def dense_oracle(points: np.ndarray, radius: float) -> CSRGraph:
    """Reference CSR built from the full distance matrix."""
    n = points.shape[0]
    if n == 0:
        return CSRGraph.empty(0)
    d = pairwise_distances(points)
    mask = d <= radius
    np.fill_diagonal(mask, False)
    rows, cols = np.nonzero(mask)
    return CSRGraph.from_edges(rows, cols, n, data=d[rows, cols], presorted=True)


# ---------------------------------------------------------------------- #
# neighborhood_csr: grid path vs dense oracle


@settings(max_examples=60, deadline=None, derandomize=True)
@given(points=_POINTS, radius=_RADIUS)
def test_neighborhood_csr_grid_matches_dense(points, radius):
    grid = neighborhood_csr(points, radius, mode="grid")
    dense = neighborhood_csr(points, radius, mode="dense")
    assert_csr_equal(grid, dense)
    assert_csr_equal(dense, dense_oracle(points, radius))
    # adjacency and degrees agree with the dense boolean matrix
    d = pairwise_distances(points)
    mask = d <= radius
    np.fill_diagonal(mask, False)
    assert np.array_equal(grid.to_dense(), mask)
    assert np.array_equal(grid.degrees(), mask.sum(axis=1))


@settings(max_examples=60, deadline=None, derandomize=True)
@given(points=_POINTS, data=st.data())
def test_neighborhood_csr_boundary_radius_inclusive(points, data):
    # Radius equal to an exact measured inter-point distance: the edge on
    # the boundary must appear on both paths (d <= r convention).
    i = data.draw(st.integers(0, len(points) - 1), label="i")
    j = data.draw(st.integers(0, len(points) - 1), label="j")
    radius = float(pairwise_distances(points)[i, j])
    if radius <= 0.0:
        return  # i == j: no boundary to test
    grid = neighborhood_csr(points, radius, mode="grid")
    dense = neighborhood_csr(points, radius, mode="dense")
    assert_csr_equal(grid, dense)
    hit = grid.contains_edges(
        np.array([i, j], dtype=np.intp), np.array([j, i], dtype=np.intp)
    )
    assert hit.all(), "boundary edge must be included in both directions"


@settings(max_examples=40, deadline=None, derandomize=True)
@given(points=_POINTS, radius=_RADIUS)
def test_flood_reachability_csr_matches_dense_bfs(points, radius):
    graph = neighborhood_csr(points, radius, mode="grid")
    adj = graph.to_dense()
    for source in range(min(len(points), 4)):
        assert np.array_equal(
            csr_bfs(graph, source), directed_bfs(adj, source)
        )


# ---------------------------------------------------------------------- #
# degenerate deployments


def test_empty_point_set():
    empty = np.empty((0, 2), dtype=np.float64)
    graph = neighborhood_csr(empty, 10.0)
    assert graph.n == 0 and graph.nnz == 0
    assert IncrementalNeighborhoods().csr(empty, 10.0).nnz == 0


def test_singleton_point_set():
    one = np.array([[12.25, 7.5]])
    for mode in ("dense", "grid"):
        graph = neighborhood_csr(one, 5.0, mode=mode)
        assert graph.n == 1 and graph.nnz == 0
    index = GridIndex(one, cell_size=5.0)
    assert index.neighbor_pairs(5.0).nnz == 0


def test_collinear_points_boundary_spacing():
    # Equally spaced on a line, radius exactly one step: each node links
    # to its immediate neighbors only, inclusively.
    xs = np.arange(16, dtype=np.float64) * 25.0
    points = np.stack([xs, np.zeros_like(xs)], axis=1)
    for mode in ("dense", "grid"):
        graph = neighborhood_csr(points, 25.0, mode=mode)
        degrees = graph.degrees()
        assert degrees[0] == degrees[-1] == 1
        assert (degrees[1:-1] == 2).all()
        assert_csr_equal(graph, dense_oracle(points, 25.0))


# ---------------------------------------------------------------------- #
# incremental dirty-region rebuilds vs fresh builds

_MOVE = st.tuples(
    st.integers(min_value=0, max_value=59),          # node (mod n)
    st.integers(min_value=-200, max_value=200),      # dx on the lattice
    st.integers(min_value=-200, max_value=200),      # dy on the lattice
)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    points=_POINTS,
    radius=_RADIUS,
    generations=st.lists(st.lists(_MOVE, max_size=6), min_size=1, max_size=5),
)
def test_incremental_bit_identical_to_fresh(points, radius, generations):
    builder = IncrementalNeighborhoods()
    pts = points.copy()
    # grid-mode backends put the builder in the incremental regime even at
    # hypothesis-sized n, exercising the splice path, not just rebuilds
    assert_csr_equal(
        builder.csr(pts, radius, backend=GraphBackend(pts, mode="grid")),
        neighborhood_csr(pts, radius, mode="dense"),
    )
    for moves in generations:
        pts = pts.copy()
        for node, dx, dy in moves:
            i = node % pts.shape[0]
            pts[i, 0] = abs(pts[i, 0] + dx * 0.25)
            pts[i, 1] = abs(pts[i, 1] + dy * 0.25)
        incremental = builder.csr(pts, radius, backend=GraphBackend(pts, mode="grid"))
        assert_csr_equal(incremental, neighborhood_csr(pts, radius, mode="dense"))
    assert builder.full_rebuilds + builder.incremental_updates == len(generations) + 1


def test_incremental_no_movement_reuses_graph():
    rng = np.random.default_rng(5)
    pts = np.floor(rng.uniform(0, 1000, size=(80, 2)) * 4) / 4
    builder = IncrementalNeighborhoods()
    first = builder.csr(pts, 100.0, backend=GraphBackend(pts, mode="grid"))
    again = builder.csr(pts.copy(), 100.0, backend=GraphBackend(pts, mode="grid"))
    assert again is first  # same object: nothing moved, nothing rebuilt
    assert builder.reused_rows == pts.shape[0]


# ---------------------------------------------------------------------- #
# world snapshots: sparse-first representation vs the dense build


def _make_world(mechanism, speed: float, seed: int, n: int = 24) -> NetworkWorld:
    cfg = ScenarioConfig(
        n_nodes=n,
        area=Area(500.0, 500.0),
        normal_range=180.0,
        duration=8.0,
        sample_rate=2.0,
        warmup=2.0,
    )
    seeds = SeedSequenceFactory(seed)
    if speed == 0.0:
        mobility = StaticPlacement(cfg.area, n, cfg.duration, rng=seeds.rng("m"))
    else:
        mobility = RandomWaypoint(
            cfg.area, n, cfg.duration, mean_speed=speed, rng=seeds.rng("m")
        )
    manager = MobilitySensitiveTopologyControl(
        RngProtocol(),
        mechanism=mechanism,
        buffer_policy=BufferZonePolicy(width=30.0, cap=cfg.normal_range),
    )
    return NetworkWorld(cfg, mobility, manager, seed=seed)


def _force_sparse(monkeypatch) -> None:
    monkeypatch.setattr(world_mod, "SPARSE_SWITCH", 0)
    monkeypatch.setattr(world_mod, "_SCATTER_SWITCH", 0)


@pytest.mark.parametrize("speed", [0.0, 10.0])
@pytest.mark.parametrize("seed", [3, 11])
def test_snapshot_sparse_matches_dense(monkeypatch, speed, seed):
    world = _make_world(BaselineConsistency(), speed, seed)
    world.run_until(5.0)
    snap_dense = world.snapshot()
    assert snap_dense.prefers_dense
    _force_sparse(monkeypatch)
    snap_sparse = world.snapshot()
    assert not snap_sparse.prefers_dense

    assert np.array_equal(snap_sparse.logical_csr.to_dense(), snap_dense.logical)
    assert np.array_equal(snap_sparse.in_range_csr().to_dense(), snap_dense.in_range())
    for pn in (False, True):
        assert np.array_equal(
            snap_sparse.effective_directed_csr(pn).to_dense(),
            snap_dense.effective_directed(pn),
        )
        assert np.array_equal(
            snap_sparse.effective_bidirectional_csr(pn).to_dense(),
            snap_dense.effective_bidirectional(pn),
        )
    assert np.array_equal(
        snap_sparse.original_csr().to_dense(), snap_dense.original_topology()
    )
    assert np.array_equal(snap_sparse.logical_degrees(), snap_dense.logical_degrees())
    assert np.array_equal(snap_sparse.physical_degrees(), snap_dense.physical_degrees())
    for u in range(0, snap_dense.n_nodes, 5):
        for v in range(snap_dense.n_nodes):
            assert snap_sparse.pair_distance(u, v) == snap_dense.dist[u, v]


@pytest.mark.parametrize(
    "mechanism_factory", [BaselineConsistency, ProactiveConsistency]
)
@pytest.mark.parametrize("speed", [0.0, 10.0])
def test_metrics_sparse_match_dense(monkeypatch, mechanism_factory, speed):
    world = _make_world(mechanism_factory(), speed, seed=7)
    world.run_until(5.0)
    snap_dense = world.snapshot()
    dense_vals = _metric_vector(snap_dense)
    _force_sparse(monkeypatch)
    snap_sparse = world.snapshot()
    assert not snap_sparse.prefers_dense
    assert _metric_vector(snap_sparse) == dense_vals


def _metric_vector(snap: WorldSnapshot):
    return (
        strictly_connected(snap),
        largest_effective_component(snap),
        pairwise_connectivity_ratio(snap),
        logical_topology_connected(snap),
        original_topology_connected(snap),
        snapshot_interference(snap),
        snapshot_edge_connectivity(snap),
        sorted(LinkLifetimeTracker("effective")._links_of(snap)),
        sorted(LinkLifetimeTracker("logical")._links_of(snap)),
        sorted(LinkLifetimeTracker("original")._links_of(snap)),
    )


@pytest.mark.parametrize("speed", [0.0, 10.0])
def test_flood_sparse_matches_dense(monkeypatch, speed):
    world = _make_world(BaselineConsistency(), speed, seed=9)
    world.run_until(5.0)
    dense_reached = [flood(world, s).reached for s in range(0, 24, 6)]
    _force_sparse(monkeypatch)
    for s, expect in zip(range(0, 24, 6), dense_reached):
        result = flood(world, s)
        assert np.array_equal(result.reached, expect)
        assert result.transmissions == int(expect.sum())


@pytest.mark.parametrize("alpha", [1.0, 2.0])
def test_stretch_factors_sparse_match_dense(monkeypatch, alpha):
    from repro.metrics.spanner import stretch_factors

    world = _make_world(BaselineConsistency(), 0.0, seed=5)
    world.run_until(5.0)
    snap_dense = world.snapshot()
    dense = stretch_factors(
        snap_dense.effective_bidirectional(),
        snap_dense.original_topology(),
        snap_dense.positions,
        alpha=alpha,
        dist=snap_dense.dist,
    )
    _force_sparse(monkeypatch)
    snap_sparse = world.snapshot()
    sparse = stretch_factors(
        snap_sparse.effective_bidirectional_csr(),
        snap_sparse.original_csr(),
        snap_sparse.positions,
        alpha=alpha,
    )
    assert sparse == dense
    with pytest.raises(ValueError):
        stretch_factors(
            snap_sparse.effective_bidirectional_csr(),
            snap_dense.original_topology(),
            snap_sparse.positions,
        )


# ---------------------------------------------------------------------- #
# the dense guard


def test_dense_materialization_guard(monkeypatch):
    world = _make_world(BaselineConsistency(), 0.0, seed=3)
    world.run_until(3.0)
    _force_sparse(monkeypatch)
    monkeypatch.setattr(world_mod, "DENSE_MATERIALIZE_LIMIT", 8)
    snap = world.snapshot()  # 24 nodes > limit of 8
    with pytest.raises(DenseMaterializationError):
        snap.dist
    with pytest.raises(DenseMaterializationError):
        snap.logical
    # the sparse API keeps working above the limit
    assert snap.effective_directed_csr().n == 24
    assert snap.pair_distance(0, 1) >= 0.0


def test_dense_limit_not_hit_below_threshold(monkeypatch):
    world = _make_world(BaselineConsistency(), 0.0, seed=3)
    world.run_until(3.0)
    snap = world.snapshot()
    monkeypatch.setattr(world_mod, "DENSE_MATERIALIZE_LIMIT", 8)
    # dist was materialized at build time below the sparse switch: the
    # guard only fires on *lazy* materialization at scale
    assert snap.dist.shape == (24, 24)
