"""Replay the serialized fuzz corpus (tests/corpus/*.json).

Every corpus file is a self-contained :class:`~repro.faults.fuzz.FuzzCase`
that once exercised a gnarly fault combination; replaying it through every
oracle pins the behavior forever.  Failing cases found by future fuzz
campaigns get shrunk, serialized by ``repro fuzz --out-dir tests/corpus``
and, once fixed, left here as regression tests.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.faults.fuzz import load_case, run_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 3, "the shipped corpus must not shrink away"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_case_replays_green(path):
    case = load_case(path)
    result = run_case(case, differential=True, stop_at_first=False)
    assert not result.failed, "\n".join(result.findings)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_case_round_trips(path):
    case = load_case(path)
    from repro.faults.fuzz import FuzzCase

    assert FuzzCase.from_json(case.to_json()) == case
    assert len(case.schedule) >= 1, "corpus cases should exercise faults"
