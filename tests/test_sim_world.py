"""Tests for repro.sim.world: Hello protocol wiring and snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import (
    BaselineConsistency,
    ProactiveConsistency,
    ReactiveConsistency,
)
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.mobility import Area, RandomWaypoint, StaticPlacement
from repro.protocols import RngProtocol
from repro.sim.config import ScenarioConfig
from repro.sim.world import NetworkWorld
from repro.util.errors import ConfigurationError
from repro.util.randomness import SeedSequenceFactory


def small_config(**overrides):
    base = dict(
        n_nodes=12,
        area=Area(300.0, 300.0),
        normal_range=150.0,
        duration=8.0,
        sample_rate=2.0,
        warmup=2.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def make_world(mechanism=None, speed=5.0, seed=3, buffer=0.0, **cfg_overrides):
    cfg = small_config(**cfg_overrides)
    seeds = SeedSequenceFactory(seed)
    if speed == 0.0:
        mobility = StaticPlacement(cfg.area, cfg.n_nodes, cfg.duration, rng=seeds.rng("m"))
    else:
        mobility = RandomWaypoint(
            cfg.area, cfg.n_nodes, cfg.duration, mean_speed=speed, rng=seeds.rng("m")
        )
    manager = MobilitySensitiveTopologyControl(
        RngProtocol(),
        mechanism=mechanism or BaselineConsistency(),
        buffer_policy=BufferZonePolicy(width=buffer, cap=cfg.normal_range),
    )
    return NetworkWorld(cfg, mobility, manager, seed=seed)


class TestConstruction:
    def test_rejects_node_count_mismatch(self):
        cfg = small_config()
        mobility = StaticPlacement(cfg.area, 5, cfg.duration, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            NetworkWorld(cfg, mobility, MobilitySensitiveTopologyControl(RngProtocol()))

    def test_rejects_short_horizon(self):
        cfg = small_config()
        mobility = StaticPlacement(cfg.area, cfg.n_nodes, 1.0, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            NetworkWorld(cfg, mobility, MobilitySensitiveTopologyControl(RngProtocol()))


class TestHelloProtocol:
    def test_all_nodes_send_hellos(self):
        world = make_world()
        world.run_until(4.0)
        assert all(node.hellos_sent >= 2 for node in world.nodes)

    def test_hello_rate_matches_interval(self):
        world = make_world()
        world.run_until(8.0)
        for node in world.nodes:
            # interval in [0.75, 1.25] => 6..11 hellos in 8 s.
            assert 5 <= node.hellos_sent <= 12

    def test_tables_fill_with_neighbor_records(self):
        world = make_world(speed=0.0)
        world.run_until(3.0)
        snap = world.snapshot()
        original = snap.original_topology()
        for node in world.nodes:
            expected = set(np.flatnonzero(original[node.node_id]))
            assert set(node.table.known_neighbors(world.engine.now)) == expected

    def test_decisions_made_after_first_hello(self):
        world = make_world()
        world.run_until(2.0)
        assert all(node.decision is not None for node in world.nodes)

    def test_versions_increment(self):
        world = make_world()
        world.run_until(5.0)
        node = world.nodes[0]
        assert node.next_version == node.hellos_sent + 1

    def test_channel_counts_hellos(self):
        world = make_world()
        world.run_until(4.0)
        total = sum(node.hellos_sent for node in world.nodes)
        assert world.channel.stats.hello_messages == total


class TestProactiveSchedule:
    def test_versions_are_epoch_aligned(self):
        world = make_world(mechanism=ProactiveConsistency())
        world.run_until(5.0)
        # All nodes must be within one version of each other.
        versions = [node.next_version for node in world.nodes]
        assert max(versions) - min(versions) <= 1

    def test_hellos_cluster_at_epoch_boundaries(self):
        world = make_world(mechanism=ProactiveConsistency())
        world.run_until(3.5)
        # Each node has sent one hello per epoch boundary crossed; clock
        # skew can add the epoch-0 boundary for nodes with negative offset.
        for node in world.nodes:
            assert 3 <= node.hellos_sent <= 4


class TestReactiveSchedule:
    def test_rounds_produce_synchronized_versions(self):
        world = make_world(mechanism=ReactiveConsistency())
        world.run_until(4.0)
        versions = [node.next_version for node in world.nodes]
        assert len(set(versions)) == 1

    def test_sync_overhead_counted(self):
        world = make_world(mechanism=ReactiveConsistency())
        world.run_until(4.0)
        # one flood of n forwards per round
        assert world.channel.stats.sync_messages >= 4 * 12

    def test_decisions_use_round_version(self):
        world = make_world(mechanism=ReactiveConsistency(), speed=0.0)
        world.run_until(4.0)
        assert all(node.decision is not None for node in world.nodes)


class TestSnapshot:
    def test_snapshot_shapes(self):
        world = make_world()
        world.run_until(3.0)
        snap = world.snapshot()
        n = 12
        assert snap.positions.shape == (n, 2)
        assert snap.dist.shape == (n, n)
        assert snap.logical.shape == (n, n)
        assert snap.extended_ranges.shape == (n,)

    def test_snapshot_future_rejected(self):
        world = make_world()
        world.run_until(2.0)
        with pytest.raises(ConfigurationError):
            world.snapshot(5.0)

    def test_extended_ranges_include_buffer(self):
        world = make_world(buffer=10.0)
        world.run_until(3.0)
        snap = world.snapshot()
        active = snap.actual_ranges > 0
        assert np.allclose(
            snap.extended_ranges[active],
            np.minimum(snap.actual_ranges[active] + 10.0, 150.0),
        )

    def test_in_range_is_directed(self):
        world = make_world()
        world.run_until(3.0)
        snap = world.snapshot()
        mask = snap.in_range()
        assert mask.shape == (12, 12)
        assert not mask.diagonal().any()

    def test_effective_directed_respects_logical_filter(self):
        world = make_world()
        world.run_until(3.0)
        snap = world.snapshot()
        filtered = snap.effective_directed(physical_neighbor_mode=False)
        pn = snap.effective_directed(physical_neighbor_mode=True)
        assert not (filtered & ~pn).any()  # PN mode accepts a superset

    def test_static_consistent_world_logical_matches_protocol(self):
        # On a static network the snapshot's logical degrees are stable
        # between consecutive samples once tables are warm.
        world = make_world(speed=0.0)
        world.run_until(4.0)
        a = world.snapshot().logical.copy()
        world.run_until(6.0)
        b = world.snapshot().logical
        assert np.array_equal(a, b)

    def test_original_topology_symmetric(self):
        world = make_world()
        world.run_until(2.0)
        orig = world.snapshot().original_topology()
        assert np.array_equal(orig, orig.T)


class TestRedecideAll:
    def test_updates_packet_decision_counters(self):
        world = make_world()
        world.run_until(3.0)
        world.redecide_all()
        assert all(node.packet_decisions >= 1 for node in world.nodes)

    def test_decisions_timestamped_now(self):
        world = make_world()
        world.run_until(3.0)
        world.redecide_all()
        assert all(node.decision.decided_at == world.engine.now for node in world.nodes)


class TestDeterminism:
    def test_same_seed_same_world_evolution(self):
        a = make_world(seed=11)
        b = make_world(seed=11)
        a.run_until(5.0)
        b.run_until(5.0)
        sa, sb = a.snapshot(), b.snapshot()
        assert np.allclose(sa.positions, sb.positions)
        assert np.array_equal(sa.logical, sb.logical)
        assert np.allclose(sa.extended_ranges, sb.extended_ranges)

    def test_different_seed_differs(self):
        a = make_world(seed=11)
        b = make_world(seed=12)
        a.run_until(5.0)
        b.run_until(5.0)
        assert not np.allclose(a.snapshot().positions, b.snapshot().positions)
