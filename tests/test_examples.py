"""Example scripts: compile checks plus fast-path execution.

Every example must at least byte-compile; the quick ones also run end to
end (capped by their internal scenario sizes).  The slow, sweep-heavy
examples are exercised by the benchmark suite instead.
"""

from __future__ import annotations

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES])
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_expected_examples_present():
    names = {p.stem for p in ALL_EXAMPLES}
    assert {
        "quickstart",
        "consistency_anatomy",
        "sensor_field_monitoring",
        "vehicular_convoy",
        "delay_tolerant_hybrid",
        "scenario_replay",
        "full_evaluation",
    } <= names


@pytest.mark.parametrize("name", ["consistency_anatomy", "scenario_replay"])
def test_fast_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_every_example_has_module_docstring():
    for path in ALL_EXAMPLES:
        text = path.read_text(encoding="utf-8")
        body = text.split("\n", 1)[1] if text.startswith("#!") else text
        assert body.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
