"""Tests for the XTC protocol and the HTML report renderer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import make_view
from repro.analysis.campaign import run_campaign
from repro.analysis.html_report import render_html_report, svg_chart, write_html_report
from repro.analysis.scales import Scale
from repro.geometry.graphs import is_connected, unit_disk_graph
from repro.protocols import RngProtocol, XtcProtocol, make_protocol

NORMAL = 120.0


def consistent_views(points):
    views = []
    for owner in range(len(points)):
        members = {owner: tuple(points[owner])}
        for other in range(len(points)):
            d = math.hypot(*(points[other] - points[owner]))
            if other != owner and d <= NORMAL:
                members[other] = tuple(points[other])
        views.append(make_view(owner, members, normal_range=NORMAL))
    return views


class TestXtcProtocol:
    def test_registered(self):
        assert make_protocol("xtc").name == "xtc"

    def test_equals_rng_on_distance_order(self, rng):
        """With quality = distance, XTC's keep rule is exactly the RNG
        witness condition — per-node selections must coincide."""
        pts = rng.random((18, 2)) * 180
        xtc, rng_proto = XtcProtocol(), RngProtocol()
        for view in consistent_views(pts):
            assert (
                xtc.select(view).logical_neighbors
                == rng_proto.select(view).logical_neighbors
            )

    def test_preserves_connectivity(self, rng):
        pts = rng.random((18, 2)) * 180
        if not is_connected(unit_disk_graph(pts, NORMAL)):
            pytest.skip("disconnected cloud")
        adj = np.zeros((18, 18), dtype=bool)
        for view in consistent_views(pts):
            for v in XtcProtocol().select(view).logical_neighbors:
                adj[view.owner, v] = True
        assert is_connected(adj | adj.T)

    def test_no_conservative_mode(self):
        assert not XtcProtocol().supports_conservative

    def test_isolated_node(self):
        view = make_view(0, {0: (0.0, 0.0)})
        result = XtcProtocol().select(view)
        assert result.logical_neighbors == frozenset()


MICRO = Scale(
    name="micro-html",
    n_nodes=15,
    area_side=349.0,
    duration=4.0,
    sample_rate=1.0,
    warmup=2.0,
    repetitions=1,
    speeds=(1.0, 40.0),
    buffer_widths=(0.0, 100.0),
)


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(MICRO, base_seed=9500)

    def test_renders_complete_document(self, campaign):
        text = render_html_report(campaign)
        assert text.startswith("<!DOCTYPE html>")
        assert text.endswith("</html>")
        assert "Table 1" in text
        for fig in ("Fig. 6", "Fig. 7", "Fig. 8a", "Fig. 8b", "Fig. 9", "Fig. 10"):
            assert fig in text

    def test_contains_inline_svg(self, campaign):
        text = render_html_report(campaign)
        assert text.count("<svg") >= 6
        assert "polyline" in text

    def test_no_external_resources(self, campaign):
        text = render_html_report(campaign)
        assert "http://" not in text.replace("http://www.w3.org/2000/svg", "")
        assert "<script" not in text

    def test_write_to_file(self, campaign, tmp_path):
        path = tmp_path / "report.html"
        write_html_report(campaign, path)
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")


class TestSvgChart:
    def test_basic_structure(self):
        svg = svg_chart({"a": ([0, 1, 2], [0.1, 0.5, 0.9])}, title="T")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg and "circle" in svg
        assert ">T<" in svg

    def test_empty(self):
        assert svg_chart({}) == "<svg/>"

    def test_escapes_labels(self):
        svg = svg_chart({"a<b>": ([0, 1], [0, 1])})
        assert "a&lt;b&gt;" in svg

    def test_constant_series(self):
        svg = svg_chart({"flat": ([0, 1], [0.5, 0.5])})
        assert "polyline" in svg
