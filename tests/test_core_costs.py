"""Tests for repro.core.costs: link cost models and the total order."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import DistanceCost, EnergyCost, cost_key
from repro.util.errors import ConfigurationError


class TestDistanceCost:
    def test_identity(self):
        assert DistanceCost().from_distance(7.5) == 7.5

    def test_vectorized(self):
        d = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(DistanceCost().from_distance(d), d)

    def test_name(self):
        assert DistanceCost().name == "distance"


class TestEnergyCost:
    def test_free_space(self):
        assert EnergyCost(alpha=2).from_distance(3.0) == 9.0

    def test_two_ray(self):
        assert EnergyCost(alpha=4).from_distance(2.0) == 16.0

    def test_constant_overhead(self):
        assert EnergyCost(alpha=2, const=5.0).from_distance(3.0) == 14.0

    def test_vectorized(self):
        d = np.array([1.0, 2.0])
        out = EnergyCost(alpha=2).from_distance(d)
        assert np.allclose(out, [1.0, 4.0])

    def test_monotone_in_distance(self, rng):
        model = EnergyCost(alpha=4, const=2.0)
        d = np.sort(rng.random(20) * 100)
        c = model.from_distance(d)
        assert (np.diff(c) >= 0).all()

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError):
            EnergyCost(alpha=0.0)

    def test_rejects_negative_const(self):
        with pytest.raises(ConfigurationError):
            EnergyCost(alpha=2, const=-1.0)

    def test_name_encodes_parameters(self):
        assert EnergyCost(alpha=4).name == "energy-4"
        assert "+" in EnergyCost(alpha=2, const=1).name


class TestCostKey:
    def test_orders_by_cost_first(self):
        assert cost_key(1.0, 9, 8) < cost_key(2.0, 0, 1)

    def test_ties_broken_by_id_pair(self):
        assert cost_key(1.0, 0, 1) < cost_key(1.0, 0, 2)
        assert cost_key(1.0, 0, 2) < cost_key(1.0, 1, 2)

    def test_direction_independent(self):
        assert cost_key(3.0, 4, 7) == cost_key(3.0, 7, 4)

    def test_total_order_is_strict_for_distinct_links(self):
        keys = {cost_key(1.0, a, b) for a, b in [(0, 1), (0, 2), (1, 2)]}
        assert len(keys) == 3
