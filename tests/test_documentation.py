"""Documentation-quality gates.

Deliverable (e) requires doc comments on every public item; these tests
make that a property of the build rather than a review checklist:

- every module in the package has a module docstring;
- every public class and function reachable from package ``__all__``
  exports has a docstring;
- the doctest examples embedded in docstrings actually run.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.geometry",
    "repro.mobility",
    "repro.sim",
    "repro.core",
    "repro.protocols",
    "repro.metrics",
    "repro.routing",
    "repro.analysis",
]


def _iter_modules():
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg_name, pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                full = f"{pkg_name}.{info.name}"
                if full not in seen:
                    seen.add(full)
                    yield full, importlib.import_module(full)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("name,module", ALL_MODULES, ids=[n for n, _ in ALL_MODULES])
def test_module_has_docstring(name, module):
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a module docstring"


def _public_items():
    items = []
    for name, module in ALL_MODULES:
        exported = getattr(module, "__all__", [])
        for symbol in exported:
            obj = getattr(module, symbol, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro"):
                items.append((f"{name}.{symbol}", obj))
    # dedupe by object identity
    seen_ids = set()
    unique = []
    for label, obj in items:
        if id(obj) not in seen_ids:
            seen_ids.add(id(obj))
            unique.append((label, obj))
    return unique


PUBLIC_ITEMS = _public_items()


@pytest.mark.parametrize(
    "label,obj", PUBLIC_ITEMS, ids=[label for label, _ in PUBLIC_ITEMS]
)
def test_public_item_has_docstring(label, obj):
    assert inspect.getdoc(obj), f"{label} lacks a docstring"


def test_public_classes_document_their_methods():
    """Public methods of exported classes carry docstrings."""
    missing = []
    for label, obj in PUBLIC_ITEMS:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") or not callable(member):
                continue
            if isinstance(member, (staticmethod, classmethod)):
                member = member.__func__
            if not inspect.getdoc(member):
                missing.append(f"{label}.{name}")
    assert not missing, f"methods missing docstrings: {missing}"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.util.randomness",
        "repro.sim.engine",
        "repro.core.manager",
    ],
)
def test_doctests_run_clean(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failures"
