"""Tests for repro.routing.aodv: reactive discovery over live worlds."""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.mobility.base import Area
from repro.routing.aodv import AodvRouting
from repro.sim.config import ScenarioConfig


def world_for(speed=2.0, mechanism="baseline", buffer=30.0, protocol="gabriel",
              n=20, seed=3):
    cfg = ScenarioConfig(
        n_nodes=n, area=Area(403.0, 403.0), normal_range=250.0,
        duration=12.0, warmup=2.0, sample_rate=1.0,
    )
    spec = ExperimentSpec(
        protocol=protocol, mechanism=mechanism, buffer_width=buffer,
        mean_speed=speed, config=cfg,
    )
    return build_world(spec, seed=seed)


class TestDiscoveryAndDelivery:
    def test_delivers_on_warm_slow_network(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        aodv = AodvRouting(world)
        record = aodv.send(0, 15)
        world.run_until(6.0)
        assert record.delivered
        assert record.discoveries == 1
        assert record.route[0] == 0 and record.route[-1] == 15

    def test_self_delivery(self):
        world = world_for()
        world.run_until(4.0)
        record = AodvRouting(world).send(3, 3)
        assert record.delivered and record.delay == 0.0

    def test_route_cached_and_reused(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        aodv = AodvRouting(world)
        first = aodv.send(0, 15)
        world.run_until(5.0)
        second = aodv.send(0, 15)
        world.run_until(6.0)
        if first.delivered and second.delivered:
            assert second.discoveries == 0  # cache hit
            assert second.delay <= first.delay + 1e-9

    def test_rreq_cost_recorded(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        aodv = AodvRouting(world)
        record = aodv.send(0, 10)
        world.run_until(6.0)
        assert record.rreq_transmissions >= 2

    def test_unreachable_destination_dropped(self):
        # A tiny world where the destination starts isolated is hard to
        # construct reliably; emulate with a zero-range manager instead:
        world = world_for(speed=0.0, buffer=0.0, protocol="mst")
        world.run_until(4.0)
        # sever everything by zeroing decisions
        from repro.core.manager import NodeDecision

        for node in world.nodes:
            node.decision = NodeDecision(
                owner=node.node_id, logical_neighbors=frozenset(),
                actual_range=0.0, extended_range=0.0,
                decided_at=world.engine.now,
            )
        aodv = AodvRouting(world)
        record = aodv.send(0, 5)
        world.run_until(6.0)
        assert not record.delivered
        assert record.drop_reason in ("destination-unreachable", "discovery-limit")

    def test_discovery_limit_respected(self):
        world = world_for(speed=60.0, buffer=0.0, protocol="mst")
        world.run_until(4.0)
        aodv = AodvRouting(world, max_discoveries=1)
        records = [aodv.send(i, 19 - i) for i in range(5)]
        world.run_until(8.0)
        for r in records:
            assert r.discoveries <= 1

    def test_invalid_nodes(self):
        world = world_for()
        world.run_until(3.0)
        with pytest.raises(ValueError):
            AodvRouting(world).send(0, 10_000)


class TestStats:
    def test_aggregates(self):
        world = world_for(speed=5.0)
        world.run_until(4.0)
        aodv = AodvRouting(world)
        for i in range(5):
            aodv.send(i, 19 - i)
        world.run_until(8.0)
        stats = aodv.stats()
        assert stats.sent == 5
        assert 0.0 <= stats.delivery_ratio <= 1.0
        if stats.delivered:
            assert math.isfinite(stats.mean_delay)
        assert stats.mean_rreq_cost >= 0.0

    def test_empty_stats(self):
        world = world_for()
        world.run_until(3.0)
        stats = AodvRouting(world).stats()
        assert stats.sent == 0 and stats.delivery_ratio == 1.0


class TestTopologyQualityMatters:
    def test_managed_topology_beats_unmanaged_under_mobility(self):
        outcomes = {}
        for label, mech, buf in [("managed", "view-sync", 50.0), ("bare", "baseline", 0.0)]:
            world = world_for(speed=25.0, mechanism=mech, buffer=buf, protocol="rng", seed=9)
            world.run_until(4.0)
            aodv = AodvRouting(world)
            for i in range(8):
                aodv.send(i, 19 - i)
            world.run_until(10.0)
            outcomes[label] = aodv.stats()
        assert (
            outcomes["managed"].delivery_ratio >= outcomes["bare"].delivery_ratio
        )
