"""Anti-entropy gossip mechanism: digest/merge primitives, registry wiring,
world integration, determinism, mayday recovery, telemetry and overhead.

The property-based half (merge algebra, cache twins, fuzz oracle smoke)
lives in ``tests/test_property_gossip.py``; this file pins the concrete
contracts:

- the pure digest layer (:mod:`repro.gossip.digest`) — age filters,
  strictly-newer deltas, monotone merge, owner authority;
- the ``gossip`` registry entry, :func:`available_mechanisms`, and the
  :class:`ConfigurationError` surface for bad mechanism parameters;
- the world only arms a :class:`GossipEngine` when the mechanism is
  gossip, and ``RunStats.as_dict()`` grows gossip keys only then (every
  other mechanism's dict — and its pinned digests — stay byte-identical);
- same-seed runs are bit-identical, scalar and batched Hello pipelines
  agree, and exported stores are byte-equal across backends and worker
  counts;
- mayday recovery fires when a view goes silent while peers are in range;
- ``gossip_exchange`` / ``gossip_mayday`` are schema-valid event kinds and
  :meth:`EventLog.kind_counts` totals survive ring-buffer eviction.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiment import ExperimentSpec, build_world, run_once
from repro.analysis.overhead_study import (
    STUDY_MECHANISMS,
    generate_overhead_study,
)
from repro.analysis.scales import Scale
from repro.core.consistency import (
    GossipConsistency,
    available_mechanisms,
    make_mechanism,
)
from repro.core.tables import NeighborTable
from repro.core.views import Hello
from repro.faults.fuzz import MECHANISMS as FUZZ_MECHANISMS
from repro.gossip import entries_newer_than, merge_entries, view_digest
from repro.metrics.overhead import measure_overhead
from repro.mobility.base import Area
from repro.orchestrator import OrchestrationContext, RunStore
from repro.sim.config import ScenarioConfig
from repro.telemetry import Telemetry
from repro.telemetry.events import EVENT_KINDS, EventLog, TelemetryEvent
from repro.telemetry.export import write_jsonl
from repro.telemetry.schema import validate_jsonl
from repro.util.errors import ConfigurationError, ViewError

TINY = ScenarioConfig(
    n_nodes=10,
    area=Area(285.0, 285.0),
    normal_range=250.0,
    duration=5.0,
    warmup=2.0,
    sample_rate=1.0,
)

GOSSIP_SPEC = ExperimentSpec(
    protocol="rng", mechanism="gossip", mean_speed=10.0, config=TINY
)


def _hello(sender: int, version: int, sent_at: float = 0.0) -> Hello:
    return Hello(
        sender=sender,
        version=version,
        position=(float(sender), float(version)),
        sent_at=sent_at,
        timestamp=sent_at,
    )


def _table(owner: int = 0) -> NeighborTable:
    return NeighborTable(owner, normal_range=250.0, history_depth=3, expiry=2.5)


# --------------------------------------------------------------------- #
# pure digest layer


class TestDigestLayer:
    def test_digest_includes_own_and_live_neighbors(self):
        table = _table(0)
        table.record_own(_hello(0, 4, sent_at=1.0))
        table.record_hello(_hello(1, 2, sent_at=1.0))
        table.record_hello(_hello(2, 7, sent_at=1.2))
        assert view_digest(table, now=1.5, removal_age=2.5) == {0: 4, 1: 2, 2: 7}

    def test_digest_age_filters_silent_peers(self):
        table = _table(0)
        table.record_hello(_hello(1, 2, sent_at=0.0))
        table.record_hello(_hello(2, 7, sent_at=9.0))
        assert view_digest(table, now=10.0, removal_age=2.5) == {2: 7}

    def test_empty_table_empty_digest(self):
        assert view_digest(_table(0), now=0.0, removal_age=2.5) == {}

    def test_entries_newer_than_strictly_newer_only(self):
        table = _table(0)
        table.record_own(_hello(0, 4, sent_at=1.0))
        table.record_hello(_hello(1, 2, sent_at=1.0))
        table.record_hello(_hello(2, 7, sent_at=1.0))
        # Peer already has version 4 of node 0 and version 3 of node 2;
        # only node 1 (unknown) and node 2 (older) are owed.
        delta = entries_newer_than(table, {0: 4, 2: 3}, now=1.5, removal_age=2.5)
        assert [(h.sender, h.version) for h in delta] == [(1, 2), (2, 7)]

    def test_entries_newer_than_empty_digest_ships_full_view(self):
        table = _table(0)
        table.record_own(_hello(0, 4, sent_at=1.0))
        table.record_hello(_hello(1, 2, sent_at=1.0))
        delta = entries_newer_than(table, {}, now=1.5, removal_age=2.5)
        assert [(h.sender, h.version) for h in delta] == [(0, 4), (1, 2)]

    def test_entries_newer_than_never_relays_expired(self):
        table = _table(0)
        table.record_hello(_hello(1, 2, sent_at=0.0))
        assert entries_newer_than(table, {}, now=10.0, removal_age=2.5) == ()

    def test_merge_records_only_strictly_newer(self):
        table = _table(0)
        table.record_hello(_hello(1, 3, sent_at=0.0))
        merged = merge_entries(
            table, (_hello(1, 2), _hello(1, 3), _hello(1, 5), _hello(2, 1))
        )
        assert merged == 2
        assert [h.version for h in table.history_of(1)] == [3, 5]
        assert [h.version for h in table.history_of(2)] == [1]

    def test_merge_skips_entries_about_the_owner(self):
        table = _table(0)
        assert merge_entries(table, (_hello(0, 9),)) == 0
        assert table.history_of(0) == ()

    def test_merge_is_idempotent(self):
        table = _table(0)
        entries = (_hello(1, 2), _hello(2, 7))
        assert merge_entries(table, entries) == 2
        assert merge_entries(table, entries) == 0
        assert view_digest(table, now=0.0, removal_age=2.5) == {1: 2, 2: 7}

    def test_merge_preserves_ascending_versions(self):
        table = _table(0)
        merge_entries(table, (_hello(1, 5),))
        merge_entries(table, (_hello(1, 2), _hello(1, 8)))
        versions = [h.version for h in table.history_of(1)]
        assert versions == sorted(versions) == [5, 8]


# --------------------------------------------------------------------- #
# registry


class TestRegistry:
    def test_available_mechanisms_sorted_and_complete(self):
        assert available_mechanisms() == (
            "baseline",
            "gossip",
            "proactive",
            "reactive",
            "view-sync",
            "weak",
        )

    def test_fuzzer_axis_derived_from_registry(self):
        assert FUZZ_MECHANISMS == available_mechanisms()

    def test_make_mechanism_gossip(self):
        mech = make_mechanism("gossip", fanout=3, interval=0.5)
        assert isinstance(mech, GossipConsistency)
        assert mech.name == "gossip"
        assert mech.fanout == 3
        assert mech.interval == 0.5
        assert not mech.recompute_on_packet

    def test_unknown_name_still_view_error(self):
        with pytest.raises(ViewError):
            make_mechanism("telepathy")

    def test_bad_parameters_name_the_accepted_ones(self):
        with pytest.raises(ConfigurationError) as err:
            make_mechanism("gossip", fanout=2, bogus=1, worse=2)
        message = str(err.value)
        assert "bogus" in message and "worse" in message
        assert "fanout" in message and "interval" in message

    def test_bad_parameters_for_parameterless_mechanism(self):
        with pytest.raises(ConfigurationError) as err:
            make_mechanism("view-sync", fanout=2)
        assert "fanout" in str(err.value)

    def test_staleness_bound(self):
        mech = make_mechanism("gossip", fanout=2, interval=0.5)
        # fanout+1 = 3 informed-set growth per round: 27 nodes need
        # ceil(log3 27) = 3 rounds, +1 for the round in flight.
        assert mech.staleness_bound(27) == pytest.approx(4 * 0.5)
        assert mech.staleness_bound(1) == mech.staleness_bound(2)
        big = make_mechanism("gossip")
        assert big.staleness_bound(1000) == pytest.approx(
            (math.ceil(math.log(1000) / math.log(3)) + 1) * 1.0
        )


# --------------------------------------------------------------------- #
# world wiring


class TestWorldWiring:
    def test_engine_armed_only_for_gossip(self):
        gossip = build_world(GOSSIP_SPEC, seed=3)
        other = build_world(GOSSIP_SPEC.with_(mechanism="view-sync"), seed=3)
        assert gossip.gossip is not None
        assert other.gossip is None
        assert other.gossip_stats() == {}

    def test_counters_advance(self):
        world = build_world(GOSSIP_SPEC, seed=3)
        world.run_until(4.0)
        stats = world.gossip_stats()
        assert stats["gossip_rounds"] > 0
        assert stats["gossip_messages"] > 0
        assert stats["gossip_merged"] > 0

    def test_run_stats_keys_conditional_on_mechanism(self):
        gossip = run_once(GOSSIP_SPEC, seed=3)
        other = run_once(GOSSIP_SPEC.with_(mechanism="view-sync"), seed=3)
        assert gossip.stats.gossip_armed
        assert "gossip_rounds" in gossip.stats.as_dict()
        assert not other.stats.gossip_armed
        assert not any(k.startswith("gossip") for k in other.stats.as_dict())

    def test_same_seed_bit_identical(self):
        a = run_once(GOSSIP_SPEC, seed=5)
        b = run_once(GOSSIP_SPEC, seed=5)
        assert a.stats.as_dict() == b.stats.as_dict()
        assert (a.delivery_ratios == b.delivery_ratios).all()
        assert (a.strict_connected == b.strict_connected).all()

    def test_scalar_and_batched_pipelines_agree(self):
        scalar = build_world(GOSSIP_SPEC, seed=5, hello_pipeline="scalar")
        batched = build_world(GOSSIP_SPEC, seed=5, hello_pipeline="batched")
        scalar.run_until(4.0)
        batched.run_until(4.0)
        assert scalar.gossip_stats() == batched.gossip_stats()
        assert (
            scalar.channel.stats.as_dict() == batched.channel.stats.as_dict()
        )
        now = scalar.engine.now
        for s, b in zip(scalar.nodes, batched.nodes):
            assert s.table.live_view_token(now)[1:] == b.table.live_view_token(now)[1:]

    def test_mayday_fires_when_view_stays_silent(self):
        # Near-total Hello loss: tables essentially only fill through
        # gossip, so views start silent while peers are in range — the
        # mayday path must fire and recover views from peers' own records.
        config = ScenarioConfig(
            n_nodes=8,
            area=Area(200.0, 200.0),
            normal_range=250.0,
            duration=4.0,
            warmup=1.0,
            sample_rate=1.0,
            hello_loss_rate=0.99,
        )
        spec = ExperimentSpec(
            protocol="rng",
            mechanism="gossip",
            mechanism_kwargs={"interval": 0.2, "mayday_after": 0.1},
            mean_speed=1.0,
            config=config,
        )
        tel = Telemetry()
        world = build_world(spec, seed=11, telemetry=tel)
        world.run_until(3.0)
        assert world.gossip.maydays > 0
        # Recovery worked: merged entries gave at least one node a view.
        assert world.gossip.merged > 0
        assert tel.events.kind_counts().get("gossip_mayday", 0) > 0

    def test_engine_staleness_bound_delegates_to_mechanism(self):
        world = build_world(GOSSIP_SPEC, seed=3)
        mech = world.manager.mechanism
        assert world.gossip.staleness_bound() == mech.staleness_bound(
            world.config.n_nodes
        )

    def test_two_node_world_gossips_with_its_only_peer(self):
        # peers <= fanout: the round takes every peer instead of sampling.
        config = ScenarioConfig(
            n_nodes=2,
            area=Area(100.0, 100.0),
            normal_range=250.0,
            duration=4.0,
            warmup=1.0,
            sample_rate=1.0,
        )
        spec = GOSSIP_SPEC.with_(config=config)
        world = build_world(spec, seed=2)
        world.run_until(3.0)
        assert world.gossip.rounds > 0
        assert world.gossip.messages > 0
        # Nothing to merge: with one peer, every entry gossip could relay
        # already arrived by direct Hello first (merge is strictly-newer).
        assert world.gossip.merged == 0

    def test_down_nodes_neither_round_nor_answer(self):
        # Outage windows overlap in-flight exchanges and maydays, so every
        # node-down guard in the engine fires; the run must stay
        # deterministic and complete (near-total Hello loss keeps the
        # mayday path busy at the same time).
        from repro.faults.schedule import FaultSchedule, NodeOutage

        config = ScenarioConfig(
            n_nodes=8,
            area=Area(200.0, 200.0),
            normal_range=250.0,
            duration=4.0,
            warmup=1.0,
            sample_rate=1.0,
            hello_loss_rate=0.99,
        )
        spec = ExperimentSpec(
            protocol="rng",
            mechanism="gossip",
            mechanism_kwargs={"interval": 0.2, "mayday_after": 0.1},
            mean_speed=1.0,
            config=config,
        )
        sched = FaultSchedule(
            events=(
                NodeOutage(node=0, start=0.0, end=2.0),
                NodeOutage(node=1, start=0.5, end=3.0),
                NodeOutage(node=2, start=1.0, end=1.5),
            )
        )

        def stats_of(seed):
            world = build_world(spec, seed, faults=sched)
            world.run_until(3.5)
            return world.gossip_stats()

        first = stats_of(11)
        assert first["gossip_rounds"] > 0
        assert first == stats_of(11)

    def test_overhead_report_gossip_rate(self):
        world = build_world(GOSSIP_SPEC, seed=3)
        world.run_until(4.0)
        report = measure_overhead(world)
        assert report.gossip_rate > 0.0
        assert report.row()["gossip_per_node_s"] == report.gossip_rate
        quiet = build_world(GOSSIP_SPEC.with_(mechanism="view-sync"), seed=3)
        quiet.run_until(4.0)
        assert measure_overhead(quiet).gossip_rate == 0.0


# --------------------------------------------------------------------- #
# export determinism across backends / worker counts


class TestExportDeterminism:
    def test_export_bytes_identical_across_backends(self, tmp_path):
        specs = [GOSSIP_SPEC]
        exports = []
        for name, kwargs in (
            ("local1", {"backend": "local", "workers": 1}),
            ("local2", {"backend": "local", "workers": 2}),
            ("inproc", {"backend": "inprocess"}),
        ):
            store = RunStore(tmp_path / f"{name}.db")
            with OrchestrationContext(store=store, **kwargs) as ctx:
                ctx.run_spec_batch(specs, repetitions=2, base_seed=90)
            out = tmp_path / f"{name}.jsonl"
            store.export_jsonl(out, deterministic=True)
            exports.append(out.read_bytes())
        assert exports[0] == exports[1] == exports[2]


# --------------------------------------------------------------------- #
# telemetry: taxonomy, schema, eviction-proof tallies


class TestGossipTelemetry:
    def test_new_kinds_in_taxonomy(self):
        assert "gossip_exchange" in EVENT_KINDS
        assert "gossip_mayday" in EVENT_KINDS

    def test_gossip_run_emits_schema_valid_events(self, tmp_path):
        tel = Telemetry()
        world = build_world(GOSSIP_SPEC, seed=3, telemetry=tel)
        world.run_until(4.0)
        counts = tel.events.kind_counts()
        assert counts.get("gossip_exchange", 0) > 0
        path = tmp_path / "gossip.jsonl"
        write_jsonl(path, tel)
        assert validate_jsonl(path) == []

    def test_mayday_event_schema_valid(self, tmp_path):
        tel = Telemetry()
        tel.event("gossip_mayday", t=1.25, node=3, peers=4)
        path = tmp_path / "mayday.jsonl"
        write_jsonl(path, tel)
        assert validate_jsonl(path) == []

    def test_kind_counts_survive_ring_buffer_eviction(self):
        log = EventLog(maxsize=4)
        for i in range(9):
            log.append(TelemetryEvent(kind="gossip_exchange", t=float(i), node=i))
        log.append(TelemetryEvent(kind="gossip_mayday", t=9.0, node=9))
        assert len(log) == 4  # only the newest four retained
        assert log.kind_counts() == {"gossip_exchange": 9, "gossip_mayday": 1}
        assert log.recorded == 10
        assert log.dropped == 6


# --------------------------------------------------------------------- #
# overhead study figure


class TestOverheadStudy:
    def test_rows_cover_the_mechanism_axis(self):
        scale = Scale(
            name="tiny",
            n_nodes=10,
            area_side=285.0,
            duration=5.0,
            sample_rate=1.0,
            repetitions=1,
        )
        result = generate_overhead_study(scale, base_seed=42, workers=1)
        rows = result.rows()
        assert [r["mechanism"] for r in rows] == list(STUDY_MECHANISMS)
        by_mech = {r["mechanism"]: r for r in rows}
        assert by_mech["gossip"]["gossip_per_node_s"] > 0.0
        for name in ("baseline", "view-sync", "proactive", "reactive"):
            assert by_mech[name]["gossip_per_node_s"] == 0.0
        for row in rows:
            assert row["control_per_node_s"] == pytest.approx(
                row["hello_per_node_s"]
                + row["sync_per_node_s"]
                + row["gossip_per_node_s"]
            )
        assert not result.series
        assert "gossip" in result.format()
