"""FutureWarning shims slated for removal in repro 2.0.

Each shim must (a) warn exactly once per call site with a message naming
the 2.0 removal and the replacement, and (b) delegate to the replacement
bit-for-bit.  Pinning both here keeps the deprecation surface honest
until the 2.0 break actually lands: a shim that silently stops warning —
or silently stops delegating — fails loudly.

Covered shims:

- ``RunResult.channel_stats``  →  ``RunResult.stats`` / ``.as_dict()``
- ``IdealChannel(loss_rng=...)`` and ``IdealChannel.loss_rng``  →  ``rng``
- ``SeedSequenceFactory(root_seed=...)`` and ``.root_seed``  →  ``seed``
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, run_once
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.sim.radio import IdealChannel
from repro.util.randomness import SeedSequenceFactory

TINY = ScenarioConfig(
    n_nodes=6,
    area=Area(200.0, 200.0),
    normal_range=250.0,
    duration=3.0,
    warmup=1.0,
    sample_rate=1.0,
)


def _single_future_warning(record) -> warnings.WarningMessage:
    future = [w for w in record if issubclass(w.category, FutureWarning)]
    assert len(future) == 1, [str(w.message) for w in record]
    return future[0]


class TestChannelStatsShim:
    def test_warns_once_and_delegates(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)
        result = run_once(spec, seed=4)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = result.channel_stats
        warning = _single_future_warning(record)
        assert "repro 2.0" in str(warning.message)
        assert "RunResult.stats" in str(warning.message)
        assert legacy == result.stats.as_dict()


class TestIdealChannelShims:
    def test_loss_rng_kwarg_warns_and_delegates(self):
        rng = np.random.default_rng(7)
        with pytest.warns(FutureWarning, match="repro 2.0") as record:
            channel = IdealChannel(loss_rng=rng)
        assert len(record) == 1
        assert "rng=" in str(record[0].message)
        assert channel.rng is rng

    def test_loss_rng_property_warns_and_delegates(self):
        rng = np.random.default_rng(7)
        channel = IdealChannel(rng=rng)
        with pytest.warns(FutureWarning, match="repro 2.0") as record:
            alias = channel.loss_rng
        assert len(record) == 1
        assert ".rng" in str(record[0].message)
        assert alias is rng

    def test_both_kwargs_rejected(self):
        rng = np.random.default_rng(7)
        with pytest.raises(TypeError):
            IdealChannel(rng=rng, loss_rng=rng)

    def test_modern_path_does_not_warn(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            channel = IdealChannel(rng=np.random.default_rng(7))
            channel.rng
        assert not [w for w in record if issubclass(w.category, FutureWarning)]


class TestSeedSequenceFactoryShims:
    def test_root_seed_kwarg_warns_and_delegates(self):
        with pytest.warns(FutureWarning, match="repro 2.0") as record:
            factory = SeedSequenceFactory(root_seed=99)
        assert len(record) == 1
        assert "seed=" in str(record[0].message)
        assert factory.seed == 99

    def test_root_seed_property_warns_and_delegates(self):
        factory = SeedSequenceFactory(99)
        with pytest.warns(FutureWarning, match="repro 2.0") as record:
            alias = factory.root_seed
        assert len(record) == 1
        assert ".seed" in str(record[0].message)
        assert alias == factory.seed == 99

    def test_shimmed_factory_streams_match_modern(self):
        with pytest.warns(FutureWarning):
            old = SeedSequenceFactory(root_seed=123)
        new = SeedSequenceFactory(123)
        assert (
            old.rng("gossip").integers(0, 2**31, size=8).tolist()
            == new.rng("gossip").integers(0, 2**31, size=8).tolist()
        )

    def test_modern_path_does_not_warn(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            factory = SeedSequenceFactory(99)
            factory.seed
        assert not [w for w in record if issubclass(w.category, FutureWarning)]
