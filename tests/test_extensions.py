"""Tests for the extension modules: lossy Hellos, search-region SPT,
CDS broadcast, mobility-assisted routing, CBTC k-connectivity."""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import make_view
from repro.geometry.graphs import is_connected, unit_disk_graph
from repro.mobility import Area, RandomWaypoint, StaticPlacement
from repro.protocols import CbtcProtocol, SearchRegionSptProtocol, Spt2Protocol
from repro.routing import (
    ContactProcessConfig,
    EpidemicRouting,
    RoutingOutcome,
    TwoHopRelayRouting,
)
from repro.sim.broadcast import (
    cds_broadcast,
    cds_forward_set,
    prune_rules_1_2,
    wu_li_marking,
)
from repro.sim.radio import IdealChannel
from repro.util.errors import ConfigurationError


# --------------------------------------------------------------------- #
# lossy Hello channel


class TestHelloLoss:
    def test_zero_loss_passthrough(self):
        ch = IdealChannel()
        receivers = np.array([1, 2, 3])
        assert np.array_equal(ch.surviving_hello_receivers(receivers), receivers)

    def test_full_would_require_rng(self):
        with pytest.raises(ValueError):
            IdealChannel(hello_loss_rate=0.5)

    def test_loss_rate_statistics(self):
        ch = IdealChannel(hello_loss_rate=0.3, rng=np.random.default_rng(0))
        total = kept = 0
        for _ in range(200):
            receivers = np.arange(20)
            kept += ch.surviving_hello_receivers(receivers).size
            total += receivers.size
        assert 0.62 < kept / total < 0.78
        assert ch.stats.hello_losses == total - kept

    def test_invalid_rate_rejected(self):
        with pytest.raises(Exception):
            IdealChannel(hello_loss_rate=1.5, rng=np.random.default_rng(0))

    def test_world_with_loss_still_connects(self):
        from repro.analysis.experiment import ExperimentSpec, run_once
        from repro.sim.config import ScenarioConfig

        cfg = ScenarioConfig(
            n_nodes=25, area=Area(450.0, 450.0), normal_range=250.0,
            duration=8.0, warmup=2.0, sample_rate=1.0, hello_loss_rate=0.2,
        )
        spec = ExperimentSpec(
            protocol="rng", mechanism="view-sync", buffer_width=30.0,
            mean_speed=10.0, config=cfg,
        )
        result = run_once(spec, seed=3)
        assert result.stats.hello_losses > 0
        assert result.connectivity_ratio > 0.5

    def test_more_history_tolerates_loss_better_or_equal(self):
        """The paper: storing more Hellos raises the chance of weak
        consistency when Hellos are lost."""
        from repro.analysis.experiment import ExperimentSpec, run_once
        from repro.sim.config import ScenarioConfig

        results = {}
        for k in (1, 3):
            cfg = ScenarioConfig(
                n_nodes=25, area=Area(450.0, 450.0), normal_range=250.0,
                duration=8.0, warmup=2.0, sample_rate=1.0,
                hello_loss_rate=0.3, history_depth=k,
            )
            spec = ExperimentSpec(
                protocol="rng", mechanism="weak", buffer_width=10.0,
                mean_speed=10.0, config=cfg,
            )
            results[k] = run_once(spec, seed=5).connectivity_ratio
        assert results[3] >= results[1] - 0.05


# --------------------------------------------------------------------- #
# search-region SPT


class TestSearchRegionSpt:
    def _views(self, rng, n=16, normal=120.0):
        pts = rng.random((n, 2)) * 200
        views = []
        for owner in range(n):
            members = {owner: tuple(pts[owner])}
            for other in range(n):
                d = math.hypot(*(pts[other] - pts[owner]))
                if other != owner and d <= normal:
                    members[other] = tuple(pts[other])
            views.append(make_view(owner, members, normal_range=normal))
        return pts, views

    def test_selection_subset_of_full_spt_survivors_is_safe(self, rng):
        """Region selection must keep the union topology connected."""
        pts, views = self._views(rng)
        if not is_connected(unit_disk_graph(pts, 120.0)):
            pytest.skip("disconnected cloud")
        proto = SearchRegionSptProtocol(alpha=2.0)
        adj = np.zeros((len(pts), len(pts)), dtype=bool)
        for view in views:
            for v in proto.select(view).logical_neighbors:
                adj[view.owner, v] = True
        assert is_connected(adj | adj.T)

    def test_uses_smaller_region_when_possible(self, rng):
        pts, views = self._views(rng)
        proto = SearchRegionSptProtocol(alpha=2.0)
        regions = []
        for view in views:
            proto.select(view)
            if len(view) > 3:
                regions.append(proto.last_region)
        # At least one node stopped short of the normal range.
        assert any(r < 120.0 - 1e-9 for r in regions)

    def test_range_never_exceeds_spt(self, rng):
        """The region protocol's range matches or exceeds plain SPT's only
        through its restricted witness set — selections are supersets."""
        pts, views = self._views(rng)
        region_proto = SearchRegionSptProtocol(alpha=2.0)
        full_proto = Spt2Protocol()
        for view in views:
            region_sel = region_proto.select(view).logical_neighbors
            full_sel = full_proto.select(view).logical_neighbors
            # restricted witnesses remove fewer in-region links, and
            # covered out-of-region links are exactly the SPT-removable
            # ones, so the region selection contains the SPT selection
            # intersected with the region... sanity: both non-empty when
            # the view has neighbors.
            if len(view) > 1:
                assert region_sel or not full_sel

    def test_empty_view(self):
        view = make_view(0, {0: (0.0, 0.0)})
        result = SearchRegionSptProtocol().select(view)
        assert result.logical_neighbors == frozenset()
        assert SearchRegionSptProtocol().last_iterations == 0

    def test_growth_factor_validated(self):
        with pytest.raises(ValueError):
            SearchRegionSptProtocol(growth_factor=1.0)

    def test_iteration_diagnostics(self, rng):
        _, views = self._views(rng)
        proto = SearchRegionSptProtocol()
        proto.select(views[0])
        assert proto.last_iterations >= 1


# --------------------------------------------------------------------- #
# CDS broadcast


class TestWuLiMarking:
    def test_line_marks_interior(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = adj[1, 2] = adj[2, 1] = True
        marked = wu_li_marking(adj)
        assert marked.tolist() == [False, True, False]

    def test_clique_marks_nobody(self):
        adj = np.ones((4, 4), dtype=bool) & ~np.eye(4, dtype=bool)
        assert not wu_li_marking(adj).any()

    def test_marked_set_dominates(self, rng):
        pts = rng.random((20, 2)) * 100
        adj = unit_disk_graph(pts, 40.0)
        if not is_connected(adj):
            pytest.skip("disconnected")
        marked = wu_li_marking(adj)
        # Every node is marked or has a marked neighbor (domination),
        # unless the whole graph is a clique.
        if marked.any():
            covered = marked | (adj & marked[np.newaxis, :]).any(axis=1)
            assert covered.all()


class TestPruning:
    def test_pruned_set_subset(self, rng):
        pts = rng.random((20, 2)) * 100
        adj = unit_disk_graph(pts, 45.0)
        marked = wu_li_marking(adj)
        pruned = prune_rules_1_2(adj, marked)
        assert not (pruned & ~marked).any()

    def test_pruned_set_still_dominates_connected_graph(self, rng):
        for seed in range(5):
            pts = np.random.default_rng(seed).random((18, 2)) * 100
            adj = unit_disk_graph(pts, 50.0)
            if not is_connected(adj):
                continue
            pruned = prune_rules_1_2(adj, wu_li_marking(adj))
            if pruned.any():
                covered = pruned | (adj & pruned[np.newaxis, :]).any(axis=1)
                assert covered.all()


class TestCdsBroadcast:
    def test_full_coverage_on_connected_graph(self, rng):
        for seed in range(5):
            pts = np.random.default_rng(seed).random((20, 2)) * 100
            adj = unit_disk_graph(pts, 50.0)
            if not is_connected(adj):
                continue
            outcome = cds_broadcast(adj, source=0)
            assert outcome.coverage == 1.0

    def test_fewer_transmissions_than_flooding(self, rng):
        pts = rng.random((30, 2)) * 100
        adj = unit_disk_graph(pts, 60.0)
        if not is_connected(adj):
            pytest.skip("disconnected")
        outcome = cds_broadcast(adj, source=0)
        assert outcome.transmissions < 30  # flooding would use n = 30

    def test_single_node(self):
        adj = np.zeros((1, 1), dtype=bool)
        outcome = cds_broadcast(adj, source=0)
        assert outcome.coverage == 1.0 and outcome.transmissions == 1

    def test_forward_set_mask_shape(self, rng):
        pts = rng.random((10, 2)) * 50
        adj = unit_disk_graph(pts, 30.0)
        assert cds_forward_set(adj).shape == (10,)


# --------------------------------------------------------------------- #
# mobility-assisted routing


class TestEpidemicRouting:
    @pytest.fixture
    def mobility(self, rng):
        return RandomWaypoint(
            Area(400.0, 400.0), 15, horizon=60.0, mean_speed=20.0, rng=rng
        )

    def test_delivers_on_connected_cluster(self, mobility):
        cfg = ContactProcessConfig(contact_range=200.0, step=0.5, deadline=60.0)
        outcome = EpidemicRouting(mobility, cfg).deliver(0, 7)
        assert outcome.delivered
        assert outcome.delay >= 0.0

    def test_self_delivery_trivial(self, mobility):
        outcome = EpidemicRouting(mobility).deliver(3, 3)
        assert outcome.delivered and outcome.delay == 0.0 and outcome.copies == 1

    def test_larger_range_never_slower(self, mobility):
        slow = EpidemicRouting(
            mobility, ContactProcessConfig(contact_range=60.0, step=0.5, deadline=60.0)
        ).deliver(0, 9)
        fast = EpidemicRouting(
            mobility, ContactProcessConfig(contact_range=250.0, step=0.5, deadline=60.0)
        ).deliver(0, 9)
        if slow.delivered:
            assert fast.delivered and fast.delay <= slow.delay + 1e-9

    def test_partitioned_static_network_eventually_fails(self, rng):
        # Two static nodes far apart: epidemic cannot deliver.
        positions = np.array([[0.0, 0.0], [390.0, 390.0]])
        static = StaticPlacement(Area(400.0, 400.0), 2, 30.0, positions=positions)
        cfg = ContactProcessConfig(contact_range=50.0, step=1.0, deadline=20.0)
        outcome = EpidemicRouting(static, cfg).deliver(0, 1)
        assert not outcome.delivered
        assert outcome.delay == math.inf

    def test_gossip_variant_requires_rng(self, mobility):
        with pytest.raises(ValueError):
            EpidemicRouting(mobility, copy_probability=0.5)

    def test_invalid_nodes_rejected(self, mobility):
        with pytest.raises(ValueError):
            EpidemicRouting(mobility).deliver(0, 99)


class TestTwoHopRelay:
    @pytest.fixture
    def mobility(self, rng):
        return RandomWaypoint(
            Area(400.0, 400.0), 15, horizon=60.0, mean_speed=25.0, rng=rng
        )

    def test_bounded_copies(self, mobility):
        cfg = ContactProcessConfig(contact_range=120.0, step=0.5, deadline=60.0)
        two_hop = TwoHopRelayRouting(mobility, cfg).deliver(0, 9)
        epidemic = EpidemicRouting(mobility, cfg).deliver(0, 9)
        # Relays never re-forward, so the copy count cannot exceed
        # epidemic's and typically stays well below.
        assert two_hop.copies <= max(epidemic.copies, two_hop.copies)

    def test_epidemic_no_slower_than_two_hop(self, mobility):
        cfg = ContactProcessConfig(contact_range=120.0, step=0.5, deadline=60.0)
        two_hop = TwoHopRelayRouting(mobility, cfg).deliver(0, 9)
        epidemic = EpidemicRouting(mobility, cfg).deliver(0, 9)
        if two_hop.delivered:
            assert epidemic.delivered
            assert epidemic.delay <= two_hop.delay + 1e-9


class TestRoutingOutcome:
    def test_delivered_requires_finite_delay(self):
        with pytest.raises(ValueError):
            RoutingOutcome(0, 1, True, math.inf, 1, 0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ContactProcessConfig(contact_range=0.0)


# --------------------------------------------------------------------- #
# CBTC k-connectivity constructor


class TestCbtcKConnectivity:
    def test_alpha_formula(self):
        proto = CbtcProtocol.for_k_connectivity(2)
        assert proto.alpha == pytest.approx(2 * math.pi / 6)

    def test_k1_matches_default(self):
        assert CbtcProtocol.for_k_connectivity(1).alpha == pytest.approx(
            CbtcProtocol().alpha
        )

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            CbtcProtocol.for_k_connectivity(0)

    def test_higher_k_selects_more_neighbors(self, rng):
        pts = {i: tuple(rng.random(2) * 100) for i in range(15)}
        view = make_view(0, pts, normal_range=200.0)
        k1 = CbtcProtocol.for_k_connectivity(1).select(view).logical_neighbors
        k3 = CbtcProtocol.for_k_connectivity(3).select(view).logical_neighbors
        assert len(k3) >= len(k1)
