"""Tests for repro.telemetry: registry, spans, events, exporters, seams."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, run_once
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.telemetry import (
    EVENT_KINDS,
    NULL_TELEMETRY,
    EventLog,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    TelemetryEvent,
    TelemetrySummary,
    current_telemetry,
    summary_table,
    use_telemetry,
    validate_jsonl,
    write_jsonl,
    write_phase_timings,
)
from repro.telemetry.export import PHASES_SCHEMA, SCHEMA
from repro.telemetry.registry import Counter, Gauge, Histogram
from repro.telemetry.schema import main as schema_main
from repro.telemetry.schema import validate_records


# --------------------------------------------------------------------- #
# registry


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_and_inc_both_ways(self):
        g = Gauge()
        g.set(10.0)
        g.inc(-3.0)
        assert g.value == 7.0


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == 2.5
        assert h.std == pytest.approx(math.sqrt(1.25))

    def test_empty_histogram(self):
        h = Histogram()
        assert math.isnan(h.mean) and math.isnan(h.std)
        assert h.as_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "sumsq": 0.0,
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("drops", reason="loss").inc(2)
        reg.counter("drops", reason="fault").inc(5)
        assert reg.counter("drops", reason="loss").value == 2
        assert reg.counters_dict() == {
            "drops{reason=fault}": 5.0,
            "drops{reason=loss}": 2.0,
        }

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1.0

    def test_rows_sorted_counters_then_gauges_then_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        reg.gauge("g").set(2.0)
        reg.counter("z").inc()
        reg.counter("a").inc()
        kinds = [type(inst).__name__ for _, _, inst in reg.rows()]
        names = [name for name, _, _ in reg.rows()]
        assert kinds == ["Counter", "Counter", "Gauge", "Histogram"]
        assert names == ["a", "z", "g", "h"]

    def test_len_counts_every_series(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        reg.histogram("c").observe(1)
        assert len(reg) == 3


# --------------------------------------------------------------------- #
# events


class TestEventLog:
    def test_appends_and_iterates_in_order(self):
        log = EventLog(maxsize=10)
        for i in range(3):
            log.append(TelemetryEvent(kind="hello_sent", t=float(i)))
        assert [e.t for e in log] == [0.0, 1.0, 2.0]
        assert log.recorded == 3 and log.dropped == 0

    def test_ring_buffer_evicts_oldest_but_keeps_exact_tallies(self):
        log = EventLog(maxsize=2)
        for i in range(5):
            log.append(TelemetryEvent(kind="hello_sent", t=float(i)))
        assert len(log) == 2
        assert [e.t for e in log] == [3.0, 4.0]
        assert log.recorded == 5 and log.dropped == 3
        assert log.kind_counts() == {"hello_sent": 5}

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            EventLog(maxsize=0)

    def test_tally_records_one_summarizing_event(self):
        log = EventLog(maxsize=10)
        log.append(TelemetryEvent(kind="hello_received", t=1.0), tally=5)
        assert len(log) == 1
        # Kind totals advance by the tally; the 4 unretained occurrences
        # use the absorb_counts recorded-but-not-retained accounting.
        assert log.kind_counts() == {"hello_received": 5}
        assert log.recorded == 5 and log.dropped == 4

    def test_tally_validated(self):
        log = EventLog(maxsize=10)
        with pytest.raises(ValueError, match="tally"):
            log.append(TelemetryEvent(kind="hello_received", t=1.0), tally=0)

    def test_tally_composes_with_ring_eviction(self):
        log = EventLog(maxsize=1)
        log.append(TelemetryEvent(kind="hello_received", t=0.0), tally=3)
        log.append(TelemetryEvent(kind="hello_received", t=1.0), tally=2)
        assert [e.t for e in log] == [1.0]
        assert log.recorded == 5
        # 2 + 1 unretained tallies plus the one evicted event object.
        assert log.dropped == 4
        assert log.kind_counts() == {"hello_received": 5}

    def test_event_as_dict_inlines_data(self):
        event = TelemetryEvent(
            kind="hello_dropped", t=1.5, node=3, data=(("count", 2), ("reason", "loss"))
        )
        assert event.as_dict() == {
            "kind": "hello_dropped", "t": 1.5, "node": 3,
            "data": {"count": 2, "reason": "loss"},
        }

    def test_run_level_event_omits_node_and_data(self):
        assert TelemetryEvent(kind="run_start", t=0.0).as_dict() == {
            "kind": "run_start", "t": 0.0,
        }


# --------------------------------------------------------------------- #
# telemetry facade: spans, summary, null twin


class TestSpans:
    def test_span_counts_and_times(self):
        tel = Telemetry()
        with tel.span("outer"):
            pass
        with tel.span("outer"):
            pass
        stats = tel.spans["outer"]
        assert stats.count == 2
        assert stats.total_s >= 0.0
        assert stats.min_s <= stats.max_s

    def test_nested_spans_attribute_child_time_to_self(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                x = 0
                for i in range(20000):
                    x += i
        outer, inner = tel.spans["outer"], tel.spans["inner"]
        # outer's self time excludes the inner span entirely
        assert outer.self_s == pytest.approx(outer.total_s - inner.total_s)
        assert inner.self_s == pytest.approx(inner.total_s)

    def test_span_survives_exceptions(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("risky"):
                raise RuntimeError("boom")
        assert tel.spans["risky"].count == 1


class TestTelemetrySummary:
    def _populated(self) -> Telemetry:
        tel = Telemetry(max_events=4)
        tel.count("hello_sent", 3)
        tel.count("hello_dropped", 2, reason="loss")
        tel.gauge("pending", 7)
        tel.observe("latency", 0.5)
        with tel.span("decide"):
            pass
        for i in range(6):
            tel.event("hello_sent", t=float(i), node=i)
        return tel

    def test_summary_covers_every_instrument_kind(self):
        s = self._populated().summary()
        assert dict(s.counters) == {"hello_sent": 3.0, "hello_dropped{reason=loss}": 2.0}
        assert dict(s.gauges) == {"pending": 7.0}
        assert "latency" in dict(s.histograms)
        assert "decide" in dict(s.spans)
        assert dict(s.event_counts) == {"hello_sent": 6}
        assert s.events_recorded == 6 and s.events_dropped == 2

    def test_summary_is_hashable_and_literal_eval_safe(self):
        import ast

        s = self._populated().summary()
        hash(s)  # frozen tuples all the way down
        round_tripped = ast.literal_eval(repr(s.as_dict()))
        assert round_tripped == s.as_dict()


class TestEventBatch:
    def test_summary_event_carries_data_and_tally(self):
        tel = Telemetry()
        tel.event_batch("hello_received", 7, t=1.5, sender=3, version=2, count=7)
        (event,) = list(tel.events)
        assert event.kind == "hello_received" and event.t == 1.5
        assert dict(event.data) == {"sender": 3, "version": 2, "count": 7}
        assert tel.events.kind_counts() == {"hello_received": 7}

    def test_batch_of_one_equals_plain_event(self):
        a, b = Telemetry(), Telemetry()
        a.event("hello_received", t=2.0, node=1, sender=0)
        b.event_batch("hello_received", 1, t=2.0, node=1, sender=0)
        assert list(a.events) == list(b.events)
        assert a.events.kind_counts() == b.events.kind_counts()


class TestAbsorbMergeExactness:
    def test_merged_histogram_std_is_exact(self):
        whole = Telemetry()
        for v in (1.0, 2.0, 7.0, 9.0, 100.0):
            whole.observe("latency", v)
        parent = Telemetry()
        left, right = Telemetry(), Telemetry()
        for v in (1.0, 2.0):
            left.observe("latency", v)
        for v in (7.0, 9.0, 100.0):
            right.observe("latency", v)
        parent.absorb(left.summary())
        parent.absorb(right.summary())
        merged = parent.registry.histogram("latency")
        reference = whole.registry.histogram("latency")
        assert merged.sumsq == reference.sumsq
        assert merged.std == reference.std

    def test_absorb_tolerates_summaries_without_sumsq(self):
        # Stored summaries written before sumsq existed fall back to the
        # documented lower bound (spread folded at the worker's mean).
        worker = Telemetry()
        worker.observe("latency", 2.0)
        worker.observe("latency", 4.0)
        summary = worker.summary()
        trimmed = summary.as_dict()
        for name, stats in trimmed["histograms"].items():
            stats.pop("sumsq")
        parent = Telemetry()
        parent.absorb(TelemetrySummary.from_dict(trimmed))
        hist = parent.registry.histogram("latency")
        assert hist.count == 2 and hist.total == 6.0
        assert hist.sumsq == 2 * 3.0**2  # count * mean^2, the lower bound

    def test_sourced_gauge_merge_is_order_independent(self):
        summaries = []
        for seed, depth in [(3, 5.0), (1, 9.0), (2, 7.0)]:
            worker = Telemetry()
            worker.gauge("depth", depth)
            summaries.append((seed, worker.summary()))
        forward, backward = Telemetry(), Telemetry()
        for seed, summary in summaries:
            forward.absorb(summary, source=seed)
        for seed, summary in reversed(summaries):
            backward.absorb(summary, source=seed)
        # max (source, value) pair wins: seed 3 carries depth 5.0.
        assert forward.registry.gauge("depth").value == 5.0
        assert backward.registry.gauge("depth").value == 5.0

    def test_unsourced_gauge_merge_stays_last_writer(self):
        a, b = Telemetry(), Telemetry()
        a.gauge("depth", 5.0)
        b.gauge("depth", 2.0)
        parent = Telemetry()
        parent.absorb(a.summary())
        parent.absorb(b.summary())
        assert parent.registry.gauge("depth").value == 2.0


class TestNullTelemetry:
    def test_disabled_and_records_nothing(self):
        tel = NullTelemetry()
        assert not tel.enabled
        tel.count("x")
        tel.gauge("y", 1.0)
        tel.observe("z", 2.0)
        tel.event("hello_sent", t=0.0)
        tel.event_batch("hello_received", 4, t=0.0)
        with tel.span("phase"):
            pass
        s = tel.summary()
        assert s.counters == () and s.spans == ()
        assert s.events_recorded == 0

    def test_null_span_is_shared(self):
        tel = NullTelemetry()
        assert tel.span("a") is tel.span("b")

    def test_module_singleton(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)


class TestRuntime:
    def test_use_telemetry_installs_and_restores(self):
        assert current_telemetry() is None
        tel = Telemetry()
        with use_telemetry(tel) as installed:
            assert installed is tel
            assert current_telemetry() is tel
        assert current_telemetry() is None

    def test_nesting_restores_outer(self):
        outer, inner = Telemetry(), Telemetry()
        with use_telemetry(outer):
            with use_telemetry(inner):
                assert current_telemetry() is inner
            assert current_telemetry() is outer


# --------------------------------------------------------------------- #
# exporters + schema


def _traced_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.count("hello_sent", 4)
    tel.count("hello_dropped", 1, reason="fault")
    tel.gauge("pending", 3)
    tel.observe("latency", 0.25)
    with tel.span("engine_run"):
        pass
    tel.event("hello_sent", t=1.0, node=0, version=2, receivers=3)
    tel.event("fault", t=2.0, node=1, action="hello_drops", count=1)
    return tel


class TestJsonlExport:
    def test_written_stream_is_schema_valid(self, tmp_path):
        path = tmp_path / "out.jsonl"
        lines = write_jsonl(path, _traced_telemetry(), meta={"seed": 1})
        assert lines == len(path.read_text().splitlines())
        assert validate_jsonl(path) == []

    def test_header_and_summary_bracket_the_stream(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl(path, _traced_telemetry())
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["record"] == "header"
        assert records[0]["schema"] == SCHEMA
        assert records[-1]["record"] == "summary"
        kinds = {r["record"] for r in records}
        assert kinds == {"header", "metric", "span", "event", "summary"}

    def test_append_creates_multi_block_file(self, tmp_path):
        path = tmp_path / "multi.jsonl"
        write_jsonl(path, _traced_telemetry(), meta={"run": 1})
        write_jsonl(path, _traced_telemetry(), meta={"run": 2}, append=True)
        assert validate_jsonl(path) == []
        headers = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["record"] == "header"
        ]
        assert [h["meta"]["run"] for h in headers] == [1, 2]

    def test_phase_timings_artifact(self, tmp_path):
        path = tmp_path / "phases.json"
        doc = write_phase_timings(path, _traced_telemetry(), meta={"cmd": "run"})
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert doc["schema"] == PHASES_SCHEMA
        assert set(doc["phases"]) == {"engine_run"}
        assert set(doc["phases"]["engine_run"]) == {
            "count", "total_s", "self_s", "mean_s", "min_s", "max_s",
        }


class TestSummaryTable:
    def test_contains_all_sections(self):
        text = summary_table(_traced_telemetry(), title="unit")
        assert text.startswith("unit\n====")
        assert "hello_dropped{reason=fault}" in text
        assert "engine_run" in text
        assert "event kind" in text
        assert "events retained: 2 / recorded 2 (dropped 0)" in text

    def test_empty_telemetry_says_so(self):
        assert "(no telemetry recorded)" in summary_table(Telemetry())


class TestSchemaValidation:
    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "summary"}\n')
        errors = validate_jsonl(path)
        assert any("must start with a header" in e for e in errors)

    def test_rejects_wrong_schema_id(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"record": "header", "schema": "other/9"}\n'
            '{"record": "summary", "events_recorded": 0, "events_dropped": 0, '
            '"event_counts": {}}\n'
        )
        errors = validate_jsonl(path)
        assert any("schema must be" in e for e in errors)

    def test_rejects_unknown_event_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"record": "header", "schema": SCHEMA, "meta": {}}) + "\n"
            + json.dumps({"record": "event", "kind": "meteor_strike", "t": 1.0}) + "\n"
            + json.dumps(
                {"record": "summary", "events_recorded": 1, "events_dropped": 0,
                 "event_counts": {"meteor_strike": 1}}
            ) + "\n"
        )
        errors = validate_jsonl(path)
        assert any("unknown event kind 'meteor_strike'" in e for e in errors)

    def test_rejects_invalid_json_and_missing_summary(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"record": "header", "schema": SCHEMA, "meta": {}}) + "\n"
            "not json\n"
        )
        errors = validate_jsonl(path)
        assert any("invalid JSON" in e for e in errors)
        assert any("end with a summary" in e for e in errors)

    def test_empty_file_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_jsonl(path) == ["file contains no records"]

    def test_empty_block_is_a_noop(self):
        errors: list[str] = []
        validate_records([], errors)
        assert errors == []

    def test_malformed_metric_records(self):
        header = (1, {"record": "header", "schema": SCHEMA})
        summary = (9, {"record": "summary", "events_recorded": 0,
                       "events_dropped": 0, "event_counts": {}})
        errors: list[str] = []
        validate_records(
            [
                header,
                (2, {"record": "metric", "kind": "thermometer"}),
                (3, {"record": "metric", "kind": "counter", "name": "",
                     "labels": {"k": 1}, "value": "high"}),
                (4, {"record": "metric", "kind": "histogram", "name": "h",
                     "value": {"count": 1}}),
                (5, {"record": "metric", "kind": "histogram", "name": "h",
                     "value": {"count": "x", "total": 0, "min": 0, "max": 0,
                               "mean": 0}}),
                summary,
            ],
            errors,
        )
        joined = "\n".join(errors)
        assert "metric kind must be one of" in joined
        assert "non-empty string 'name'" in joined
        assert "labels must map strings to strings" in joined
        assert "value must be numeric" in joined
        assert "histogram value must have keys" in joined
        assert "histogram fields must be numeric" in joined

    def test_malformed_span_and_event_records(self):
        header = (1, {"record": "header", "schema": SCHEMA})
        summary = (9, {"record": "summary", "events_recorded": "zero",
                       "events_dropped": 0})
        errors: list[str] = []
        validate_records(
            [
                header,
                (2, {"record": "span", "name": "", "count": "many"}),
                (3, {"record": "event", "kind": "", "t": "noon",
                     "node": "alice", "data": []}),
                (4, {"record": "header", "schema": SCHEMA}),
                (5, {"record": "confetti"}),
                summary,
            ],
            errors,
        )
        joined = "\n".join(errors)
        assert "span needs a non-empty string 'name'" in joined
        assert "span missing fields" in joined
        assert "span field 'count' must be numeric" in joined
        assert "event needs a non-empty string 'kind'" in joined
        assert "event needs a numeric time 't'" in joined
        assert "event 'node' must be an integer" in joined
        assert "event 'data' must be an object" in joined
        assert "unexpected header inside a block" in joined
        assert "unknown record type 'confetti'" in joined
        assert "summary needs integer 'events_recorded'" in joined
        assert "summary needs an 'event_counts' object" in joined

    def test_non_object_lines_and_blank_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"record": "header", "schema": SCHEMA, "meta": {}}) + "\n"
            "\n"
            "[1, 2, 3]\n"
            + json.dumps(
                {"record": "summary", "events_recorded": 0, "events_dropped": 0,
                 "event_counts": {}}
            ) + "\n"
        )
        errors = validate_jsonl(path)
        assert errors == ["line 3: each line must be a JSON object"]

    def test_module_entry_point_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        write_jsonl(good, _traced_telemetry())
        assert schema_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"record": "summary"}\n')
        assert schema_main([str(bad)]) == 1
        assert schema_main([]) == 2


# --------------------------------------------------------------------- #
# simulator seams


def _tiny_spec(**config_overrides) -> ExperimentSpec:
    cfg = ScenarioConfig(
        n_nodes=12, area=Area(350.0, 350.0), normal_range=200.0,
        duration=6.0, warmup=2.0, sample_rate=1.0, **config_overrides,
    )
    return ExperimentSpec(protocol="rng", mean_speed=10.0, config=cfg)


class TestWorldSeams:
    def test_armed_run_collects_traffic_and_phases(self):
        tel = Telemetry()
        result = run_once(_tiny_spec(), seed=3, telemetry=tel)
        counters = tel.registry.counters_dict()
        assert counters["hello_sent"] == result.stats.hello_messages
        assert counters["hello_received"] == result.stats.deliveries
        assert {"hello_emit", "decide", "engine_run", "snapshot"} <= set(tel.spans)
        kinds = tel.events.kind_counts()
        assert kinds["hello_sent"] == result.stats.hello_messages
        assert set(kinds) <= EVENT_KINDS

    def test_run_lifecycle_events(self):
        tel = Telemetry()
        run_once(_tiny_spec(), seed=3, telemetry=tel)
        kinds = tel.events.kind_counts()
        assert kinds["run_start"] == 1
        assert kinds["run_end"] == 1
        # one flood probe per sample: duration 6, warmup 2, rate 1 -> 5
        assert kinds["flood"] == 5
        assert tel.registry.counters_dict()["floods"] == 5

    def test_armed_and_disarmed_runs_are_bit_identical(self):
        plain = run_once(_tiny_spec(), seed=5)
        traced = run_once(_tiny_spec(), seed=5, telemetry=Telemetry())
        assert np.array_equal(plain.delivery_ratios, traced.delivery_ratios)
        assert np.array_equal(plain.mean_extended_ranges, traced.mean_extended_ranges)
        assert np.array_equal(plain.strict_connected, traced.strict_connected)
        assert plain.stats.as_dict() == traced.stats.as_dict()

    def test_null_telemetry_treated_as_disarmed(self):
        result = run_once(_tiny_spec(), seed=5, telemetry=NullTelemetry())
        assert result.stats.telemetry is None

    def test_ambient_collector_reaches_run_once(self):
        tel = Telemetry()
        with use_telemetry(tel):
            result = run_once(_tiny_spec(), seed=3)
        assert result.stats.telemetry is not None
        assert tel.registry.counters_dict()["hello_sent"] > 0

    def test_explicit_argument_beats_ambient(self):
        ambient, explicit = Telemetry(), Telemetry()
        with use_telemetry(ambient):
            run_once(_tiny_spec(), seed=3, telemetry=explicit)
        assert len(ambient.registry) == 0
        assert len(explicit.registry) > 0

    def test_loss_and_collision_drops_reach_the_dropped_series(self):
        tel = Telemetry()
        result = run_once(
            _tiny_spec(hello_loss_rate=0.3, hello_tx_duration=0.05),
            seed=4,
            telemetry=tel,
        )
        counters = tel.registry.counters_dict()
        assert counters["hello_dropped{reason=loss}"] == result.stats.hello_losses
        assert counters["hello_dropped{reason=collision}"] == result.stats.collisions

    def test_fault_seams_trace_fault_events(self):
        from repro.faults.schedule import FaultSchedule, NodeOutage

        tel = Telemetry()
        schedule = FaultSchedule(events=(NodeOutage(node=0, start=2.0, end=6.0),))
        result = run_once(_tiny_spec(), seed=4, faults=schedule, telemetry=tel)
        counters = tel.registry.counters_dict()
        assert (
            counters["fault_events{action=suppressed_sends}"]
            == result.stats.fault_suppressed_sends
            > 0
        )
        assert tel.events.kind_counts()["fault"] > 0


MECHANISMS = ("baseline", "view-sync", "proactive", "reactive", "weak")


class TestCacheCounterIdentity:
    """stats cache fields == manager.cache_info() == telemetry counters."""

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_across_mechanisms(self, mechanism):
        self._check(ExperimentSpec(
            protocol="rng", mechanism=mechanism, buffer_width=20.0,
            mean_speed=10.0, config=_tiny_spec().config,
        ))

    @pytest.mark.parametrize("protocol", ("rng", "gabriel", "mst"))
    def test_across_protocols(self, protocol):
        self._check(ExperimentSpec(
            protocol=protocol, mechanism="view-sync", buffer_width=20.0,
            mean_speed=10.0, config=_tiny_spec().config,
        ))

    @staticmethod
    def _check(spec: ExperimentSpec) -> None:
        tel = Telemetry()
        result = run_once(spec, seed=6, telemetry=tel)
        counters = tel.registry.counters_dict()
        info = result.stats.cache_info()
        assert counters.get("decision_cache{outcome=hit}", 0) == info["decision_cache_hits"]
        assert counters.get("decision_cache{outcome=miss}", 0) == info["decision_cache_misses"]
        assert (
            counters.get("decision_cache{outcome=uncacheable}", 0)
            == info["decision_cache_uncacheable"]
        )
        # and the frozen summary in stats.telemetry agrees with both
        summary_counters = dict(result.stats.telemetry.counters)
        for key, value in counters.items():
            if key.startswith("decision_cache"):
                assert summary_counters[key] == value


class TestBatchedPipelineTelemetry:
    """Per-batch hello_received aggregation keeps totals exactly equal."""

    @staticmethod
    def _run(pipeline: str) -> Telemetry:
        from repro.core.manager import MobilitySensitiveTopologyControl
        from repro.mobility import RandomWaypoint
        from repro.protocols import RngProtocol
        from repro.sim.world import NetworkWorld
        from repro.util.randomness import SeedSequenceFactory

        cfg = ScenarioConfig(
            n_nodes=12, area=Area(350.0, 350.0), normal_range=200.0,
            duration=6.0, warmup=2.0, sample_rate=1.0,
        )
        seeds = SeedSequenceFactory(9)
        mobility = RandomWaypoint(
            cfg.area, cfg.n_nodes, cfg.duration, mean_speed=10.0,
            rng=seeds.rng("m"),
        )
        tel = Telemetry()
        world = NetworkWorld(
            cfg, mobility, MobilitySensitiveTopologyControl(RngProtocol()),
            seed=9, telemetry=tel, hello_pipeline=pipeline,
        )
        world.run_until(cfg.duration)
        return tel

    def test_kind_counts_match_scalar_route_exactly(self):
        batched, scalar = self._run("batched"), self._run("scalar")
        assert batched.events.kind_counts() == scalar.events.kind_counts()
        b, s = batched.registry.counters_dict(), scalar.registry.counters_dict()
        # One batch event stands in for n receptions, so the engine event
        # count legitimately differs; every traffic counter must not.
        for key in ("hello_sent", "hello_received"):
            assert b[key] == s[key]

    def test_batched_receptions_are_summarized_not_per_receiver(self):
        tel = self._run("batched")
        received = [e for e in tel.events if e.kind == "hello_received"]
        assert received  # retained summaries exist...
        # ...and each carries its receiver count; with no ring eviction in
        # a run this small the counts total the exact per-kind tally.
        counts = [dict(e.data)["count"] for e in received]
        assert all(c >= 1 for c in counts)
        assert sum(counts) == tel.events.kind_counts()["hello_received"]
        assert sum(counts) == tel.registry.counters_dict()["hello_received"]
