"""Tests for event-driven unicast traffic and RPGM group mobility."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.mobility import Area, ReferencePointGroupMobility
from repro.mobility.base import MobilityModel
from repro.sim.config import ScenarioConfig
from repro.sim.packets import UnicastTraffic
from repro.util.errors import ConfigurationError


def world_for(speed=5.0, mechanism="baseline", buffer=30.0, n=20, seed=3):
    cfg = ScenarioConfig(
        n_nodes=n,
        area=Area(403.0, 403.0),
        normal_range=250.0,
        duration=12.0,
        warmup=2.0,
        sample_rate=1.0,
    )
    spec = ExperimentSpec(
        protocol="gabriel", mechanism=mechanism, buffer_width=buffer,
        mean_speed=speed, config=cfg,
    )
    return build_world(spec, seed=seed)


class TestUnicastTraffic:
    def test_packet_delivered_on_warm_network(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        traffic = UnicastTraffic(world)
        record = traffic.send(0, 10)
        world.run_until(6.0)
        assert record.delivered
        assert record.path[0] == 0 and record.path[-1] == 10
        assert record.delay < 1.0

    def test_self_addressed_packet(self):
        world = world_for()
        world.run_until(4.0)
        record = UnicastTraffic(world).send(5, 5)
        assert record.delivered and record.delay == 0.0

    def test_hops_match_path(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        traffic = UnicastTraffic(world)
        record = traffic.send(0, 15)
        world.run_until(6.0)
        if record.delivered:
            assert record.hops == len(record.path) - 1

    def test_ttl_drop(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        traffic = UnicastTraffic(world, max_hops=1)
        record = traffic.send(0, 15)
        world.run_until(6.0)
        if not record.delivered:
            assert record.drop_reason in ("ttl", "no-progress", "links-stale", "no-neighbors")

    def test_cbr_flow_counts(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        traffic = UnicastTraffic(world)
        traffic.start_cbr(0, 10, interval=0.5, count=5)
        world.run_until(9.0)
        assert len(traffic.records) == 5
        stats = traffic.stats()
        assert stats.sent == 5
        assert stats.delivered + stats.dropped == 5

    def test_stats_on_empty_traffic(self):
        world = world_for()
        world.run_until(3.0)
        stats = UnicastTraffic(world).stats()
        assert stats.sent == 0 and stats.delivery_ratio == 1.0

    def test_invalid_destination(self):
        world = world_for()
        world.run_until(3.0)
        with pytest.raises(ValueError):
            UnicastTraffic(world).send(0, 999)

    def test_forwarding_uses_logical_neighbors_only(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        traffic = UnicastTraffic(world)
        record = traffic.send(0, 12)
        world.run_until(6.0)
        if record.delivered:
            # every consecutive hop was a logical link of the forwarder at
            # forward time; weaker check: each hop node exists
            assert all(0 <= v < 20 for v in record.path)

    def test_mobile_network_delivery_with_buffer(self):
        world = world_for(speed=20.0, mechanism="view-sync", buffer=50.0)
        world.run_until(4.0)
        traffic = UnicastTraffic(world)
        for i in range(6):
            traffic.send(i, 19 - i)
        world.run_until(7.0)
        stats = traffic.stats()
        assert stats.delivery_ratio >= 0.5

    def test_transmissions_counted_on_channel(self):
        world = world_for(speed=2.0)
        world.run_until(4.0)
        before = world.channel.stats.data_transmissions
        traffic = UnicastTraffic(world)
        record = traffic.send(0, 10)
        world.run_until(6.0)
        gained = world.channel.stats.data_transmissions - before
        # retries are failed candidate probes, not counted transmissions
        assert gained == record.hops


class TestRpgm:
    @pytest.fixture
    def model(self, area, rng):
        return ReferencePointGroupMobility(
            area, 20, horizon=20.0, rng=rng, n_groups=4,
            group_speed=10.0, jitter_radius=40.0, jitter_speed=2.0,
        )

    def test_is_mobility_model(self, model):
        assert isinstance(model, MobilityModel)

    def test_positions_inside_area(self, model, area):
        for t in np.linspace(0, 20, 25):
            assert area.contains(model.positions(float(t))).all()

    def test_group_members_stay_near_each_other(self, model):
        # members of one group (round-robin: 0, 4, 8, 12, 16) stay within
        # 2 * jitter_radius of their group-mates
        members = [0, 4, 8, 12, 16]
        for t in (5.0, 10.0, 15.0):
            pts = model.positions(float(t))[members]
            centroid = pts.mean(axis=0)
            spread = np.linalg.norm(pts - centroid, axis=1).max()
            assert spread <= 2 * 40.0 + 1e-6

    def test_groups_do_move(self, model):
        a = model.positions(0.0)
        b = model.positions(15.0)
        assert np.linalg.norm(b - a, axis=1).mean() > 10.0

    def test_relative_mobility_below_global(self, model):
        """Within-group relative speeds are far below the group speed —
        the property that makes platoons easy for buffer zones."""
        members = [0, 4]
        rel = []
        glob = []
        for t in np.arange(1.0, 15.0, 1.0):
            p1 = model.positions(float(t))
            p2 = model.positions(float(t) + 1.0)
            rel.append(
                abs(
                    np.linalg.norm(p2[members[0]] - p2[members[1]])
                    - np.linalg.norm(p1[members[0]] - p1[members[1]])
                )
            )
            glob.append(np.linalg.norm(p2[members[0]] - p1[members[0]]))
        assert np.mean(rel) < np.mean(glob)

    def test_more_groups_than_nodes_rejected(self, area, rng):
        with pytest.raises(ConfigurationError):
            ReferencePointGroupMobility(area, 3, 10.0, rng, n_groups=5)

    def test_zero_jitter_collapses_to_reference_points(self, area, rng):
        model = ReferencePointGroupMobility(
            area, 8, horizon=10.0, rng=rng, n_groups=2,
            jitter_radius=0.0, jitter_speed=0.0,
        )
        pts = model.positions(5.0)
        # members of the same group coincide
        assert np.allclose(pts[0], pts[2], atol=1e-6)
        assert np.allclose(pts[1], pts[3], atol=1e-6)

    def test_usable_in_world(self, area, rng):
        from repro.core.manager import MobilitySensitiveTopologyControl
        from repro.protocols import RngProtocol
        from repro.sim.world import NetworkWorld

        cfg = ScenarioConfig(
            n_nodes=12, area=area, normal_range=250.0, duration=8.0,
            warmup=2.0, sample_rate=1.0,
        )
        model = ReferencePointGroupMobility(
            area, 12, horizon=8.0, rng=rng, n_groups=3
        )
        world = NetworkWorld(
            cfg, model, MobilitySensitiveTopologyControl(RngProtocol()), seed=1
        )
        world.run_until(5.0)
        assert world.snapshot().positions.shape == (12, 2)
