"""Tests for repro.analysis.routing_study."""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiment import ExperimentSpec
from repro.analysis.routing_study import UnicastStudyResult, run_unicast_study
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError

CFG = ScenarioConfig(
    n_nodes=20,
    area=Area(403.0, 403.0),
    normal_range=250.0,
    duration=8.0,
    warmup=2.0,
    sample_rate=1.0,
)


class TestRunUnicastStudy:
    def test_counts_and_bounds(self):
        spec = ExperimentSpec(
            protocol="rng", mechanism="view-sync", buffer_width=30.0,
            mean_speed=10.0, config=CFG,
        )
        result = run_unicast_study(spec, seed=3, n_snapshots=2, pairs_per_snapshot=5)
        assert result.attempts == 10
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert 0.0 <= result.perimeter_fraction <= 1.0

    def test_stretch_at_least_one_when_defined(self):
        spec = ExperimentSpec(
            protocol="none", mechanism="baseline", mean_speed=5.0, config=CFG,
        )
        result = run_unicast_study(spec, seed=3, n_snapshots=2, pairs_per_snapshot=5)
        if not math.isnan(result.mean_hop_stretch):
            assert result.mean_hop_stretch >= 1.0 - 1e-9

    def test_row_structure(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=CFG)
        result = run_unicast_study(spec, seed=1, n_snapshots=1, pairs_per_snapshot=3)
        assert {"configuration", "delivery", "hop_stretch"} <= set(result.row())

    def test_reproducible(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=CFG)
        a = run_unicast_study(spec, seed=6, n_snapshots=2, pairs_per_snapshot=4)
        b = run_unicast_study(spec, seed=6, n_snapshots=2, pairs_per_snapshot=4)
        assert a.delivery_ratio == b.delivery_ratio
        assert a.perimeter_fraction == b.perimeter_fraction

    def test_managed_beats_unmanaged(self):
        base = run_unicast_study(
            ExperimentSpec(protocol="mst", mechanism="baseline", buffer_width=0.0,
                           mean_speed=20.0, config=CFG),
            seed=2, n_snapshots=2, pairs_per_snapshot=6,
        )
        managed = run_unicast_study(
            ExperimentSpec(protocol="mst", mechanism="view-sync", buffer_width=50.0,
                           mean_speed=20.0, config=CFG),
            seed=2, n_snapshots=2, pairs_per_snapshot=6,
        )
        assert managed.delivery_ratio >= base.delivery_ratio

    def test_validation(self):
        spec = ExperimentSpec(protocol="rng", config=CFG)
        with pytest.raises(ConfigurationError):
            run_unicast_study(spec, n_snapshots=0)
        with pytest.raises(ConfigurationError):
            run_unicast_study(spec, pairs_per_snapshot=0)

    def test_result_is_frozen(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=CFG)
        result = run_unicast_study(spec, seed=1, n_snapshots=1, pairs_per_snapshot=2)
        with pytest.raises(AttributeError):
            result.attempts = 99  # type: ignore[misc]
