"""Tests for interference and spanner-stretch metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.graphs import unit_disk_graph
from repro.metrics.interference import (
    edge_interference,
    graph_interference,
    snapshot_interference,
)
from repro.metrics.spanner import StretchReport, stretch_factors
from repro.sim.world import WorldSnapshot


def snapshot_of(positions, logical, ranges, normal_range=100.0):
    positions = np.asarray(positions, dtype=np.float64)
    diff = positions[:, None] - positions[None]
    dist = np.sqrt((diff**2).sum(-1))
    ranges = np.asarray(ranges, dtype=np.float64)
    return WorldSnapshot(
        time=0.0, positions=positions, dist=dist,
        logical=np.asarray(logical, dtype=bool),
        actual_ranges=ranges, extended_ranges=ranges,
        normal_range=normal_range,
    )


class TestEdgeInterference:
    def test_isolated_edge_zero(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert edge_interference(pts, 0, 1) == 0

    def test_node_inside_coverage_counts(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 3.0]])
        assert edge_interference(pts, 0, 1) == 1

    def test_node_outside_coverage_ignored(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [50.0, 50.0]])
        assert edge_interference(pts, 0, 1) == 0

    def test_endpoints_not_counted(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert edge_interference(pts, 0, 1) == 0

    def test_boundary_inclusive(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        # node 2 is exactly d(0,1)=10 from node 1 -> covered
        assert edge_interference(pts, 0, 1) == 1


class TestGraphInterference:
    def test_edgeless(self):
        pts = np.array([[0.0, 0.0], [50.0, 0.0]])
        assert graph_interference(np.zeros((2, 2), dtype=bool), pts) == (0, 0.0)

    def test_shorter_links_interfere_less(self, rng):
        pts = rng.random((20, 2)) * 100
        full = unit_disk_graph(pts, 200.0)  # long links everywhere
        from repro.geometry.graphs import euclidean_mst

        sparse = euclidean_mst(pts)  # short links only
        max_full, mean_full = graph_interference(full, pts)
        max_sparse, mean_sparse = graph_interference(sparse, pts)
        assert mean_sparse <= mean_full
        assert max_sparse <= max_full

    def test_snapshot_wrapper(self):
        logical = np.array([[False, True], [True, False]])
        snap = snapshot_of([[0.0, 0.0], [5.0, 0.0]], logical, [10.0, 10.0])
        max_i, mean_i = snapshot_interference(snap)
        assert max_i == 0 and mean_i == 0.0


class TestStretchFactors:
    def _line(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        full = unit_disk_graph(pts, 25.0)  # includes the 20 m chord
        chain = np.zeros((3, 3), dtype=bool)
        chain[0, 1] = chain[1, 0] = chain[1, 2] = chain[2, 1] = True
        return pts, full, chain

    def test_identity_stretch_one(self):
        pts, full, _ = self._line()
        report = stretch_factors(full, full, pts)
        assert report.max_stretch == pytest.approx(1.0)
        assert report.disconnected_pairs == 0

    def test_chain_distance_stretch_one(self):
        # Removing the chord does not lengthen any shortest path here
        # (10 + 10 = 20): distance stretch 1.
        pts, full, chain = self._line()
        report = stretch_factors(chain, full, pts)
        assert report.max_stretch == pytest.approx(1.0)

    def test_detour_increases_stretch(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 5.0]])
        full = unit_disk_graph(pts, 20.0)
        detour = np.zeros((3, 3), dtype=bool)
        detour[0, 2] = detour[2, 0] = detour[2, 1] = detour[1, 2] = True
        report = stretch_factors(detour, full, pts)
        expected = 2 * math.hypot(5, 5) / 10.0
        assert report.max_stretch == pytest.approx(expected)

    def test_energy_stretch_le_one_for_spt(self, rng):
        # The SPT construction preserves minimum-energy paths: energy
        # stretch of its selection must be 1.
        from repro.geometry.graphs import is_connected
        from repro.protocols import Spt2Protocol
        from conftest import make_view

        pts = rng.random((15, 2)) * 150
        normal = 120.0
        full = unit_disk_graph(pts, normal)
        if not is_connected(full):
            pytest.skip("disconnected")
        adj = np.zeros((15, 15), dtype=bool)
        proto = Spt2Protocol()
        for owner in range(15):
            members = {owner: tuple(pts[owner])}
            for other in range(15):
                d = math.hypot(*(pts[other] - pts[owner]))
                if other != owner and d <= normal:
                    members[other] = tuple(pts[other])
            view = make_view(owner, members, normal_range=normal)
            for v in proto.select(view).logical_neighbors:
                adj[owner, v] = True
        report = stretch_factors(adj, full, pts, alpha=2.0)
        assert report.max_stretch == pytest.approx(1.0, abs=1e-9)
        assert report.disconnected_pairs == 0

    def test_partition_reported_not_folded(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        full = unit_disk_graph(pts, 20.0)
        empty = np.zeros((2, 2), dtype=bool)
        report = stretch_factors(empty, full, pts)
        assert report.disconnected_pairs == 1
        assert math.isinf(report.max_stretch)

    def test_report_is_dataclass(self):
        report = StretchReport(1.0, 1.0, 0)
        assert report.mean_stretch == 1.0
