"""Tests for repro.metrics.links: link-lifetime tracking."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.metrics.links import LinkLifetimeTracker
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.sim.world import WorldSnapshot
from repro.util.errors import SimulationError


def snapshot_at(t, positions, logical, ranges, normal_range=100.0):
    positions = np.asarray(positions, dtype=np.float64)
    diff = positions[:, None] - positions[None]
    dist = np.sqrt((diff**2).sum(-1))
    return WorldSnapshot(
        time=t, positions=positions, dist=dist,
        logical=np.asarray(logical, dtype=bool),
        actual_ranges=np.asarray(ranges, dtype=np.float64),
        extended_ranges=np.asarray(ranges, dtype=np.float64),
        normal_range=normal_range,
    )


def two_node_snaps(link_pattern, dt=1.0):
    """Sequence of snapshots where the 0-1 logical link follows a pattern."""
    snaps = []
    for i, up in enumerate(link_pattern):
        logical = np.zeros((2, 2), dtype=bool)
        if up:
            logical[0, 1] = logical[1, 0] = True
        snaps.append(
            snapshot_at(i * dt, [[0.0, 0.0], [10.0, 0.0]], logical, [20.0, 20.0])
        )
    return snaps


class TestTrackerMechanics:
    def test_completed_lifetime_measured(self):
        tracker = LinkLifetimeTracker(kind="logical")
        for snap in two_node_snaps([1, 1, 1, 0]):
            tracker.observe(snap)
        summary = tracker.finish()
        assert summary.completed == 1
        assert summary.mean == pytest.approx(3.0)

    def test_censored_link_counted_separately(self):
        tracker = LinkLifetimeTracker(kind="logical")
        for snap in two_node_snaps([1, 1, 1]):
            tracker.observe(snap)
        summary = tracker.finish()
        assert summary.completed == 0
        assert summary.censored == 1
        assert math.isnan(summary.mean)

    def test_flapping_link_two_lifetimes(self):
        tracker = LinkLifetimeTracker(kind="logical")
        for snap in two_node_snaps([1, 0, 1, 0]):
            tracker.observe(snap)
        summary = tracker.finish()
        assert summary.completed == 2
        assert summary.mean == pytest.approx(1.0)

    def test_break_rate(self):
        tracker = LinkLifetimeTracker(kind="logical")
        for snap in two_node_snaps([1, 0]):
            tracker.observe(snap)
        summary = tracker.finish()
        assert summary.break_rate == pytest.approx(1.0)  # 1 break / 1 s up

    def test_out_of_order_rejected(self):
        tracker = LinkLifetimeTracker(kind="logical")
        snaps = two_node_snaps([1, 1])
        tracker.observe(snaps[1])
        with pytest.raises(SimulationError):
            tracker.observe(snaps[0])

    def test_observe_after_finish_rejected(self):
        tracker = LinkLifetimeTracker(kind="logical")
        tracker.finish()
        with pytest.raises(SimulationError):
            tracker.observe(two_node_snaps([1])[0])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            LinkLifetimeTracker(kind="imaginary")

    def test_empty_observation(self):
        summary = LinkLifetimeTracker().finish()
        assert summary.completed == 0 and summary.break_rate == 0.0


class TestOnLiveWorlds:
    def _summary(self, protocol, speed, kind="effective", seed=4):
        cfg = ScenarioConfig(
            n_nodes=20, area=Area(403.0, 403.0), normal_range=250.0,
            duration=12.0, warmup=2.0, sample_rate=2.0,
        )
        spec = ExperimentSpec(protocol=protocol, mean_speed=speed, config=cfg)
        world = build_world(spec, seed=seed)
        tracker = LinkLifetimeTracker(kind=kind)
        for t in np.arange(2.0, 12.0, 0.5):
            world.run_until(float(t))
            tracker.observe(world.snapshot())
        return tracker.finish()

    def test_faster_mobility_shorter_lifetimes(self):
        slow = self._summary("rng", speed=2.0)
        fast = self._summary("rng", speed=40.0)
        assert fast.break_rate >= slow.break_rate

    def test_original_links_outlive_effective(self):
        # Normal-range links break only by distance; effective links also
        # break by selection churn, so their hazard is at least as high.
        effective = self._summary("mst", speed=20.0, kind="effective")
        original = self._summary("mst", speed=20.0, kind="original")
        assert effective.break_rate >= original.break_rate
