"""Tests for repro.metrics.partitions: partition-episode tracking."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.metrics.partitions import PartitionTracker
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.sim.world import WorldSnapshot
from repro.util.errors import SimulationError


def snap_at(t, connected):
    """Two-node snapshot that is connected iff *connected*."""
    positions = np.array([[0.0, 0.0], [10.0, 0.0]])
    dist = np.array([[0.0, 10.0], [10.0, 0.0]])
    logical = np.ones((2, 2), dtype=bool) & ~np.eye(2, dtype=bool)
    ranges = np.full(2, 20.0 if connected else 5.0)
    return WorldSnapshot(
        time=t, positions=positions, dist=dist, logical=logical,
        actual_ranges=ranges, extended_ranges=ranges, normal_range=50.0,
    )


class TestTrackerMechanics:
    def test_always_connected(self):
        tracker = PartitionTracker()
        for t in range(5):
            tracker.observe(snap_at(float(t), True))
        summary = tracker.finish()
        assert summary.availability == 1.0
        assert summary.episodes == 0
        assert not summary.ongoing

    def test_single_partition_episode(self):
        tracker = PartitionTracker()
        pattern = [True, False, False, True, True]
        for t, up in enumerate(pattern):
            tracker.observe(snap_at(float(t), up))
        summary = tracker.finish()
        assert summary.episodes == 1
        assert summary.mean_duration == pytest.approx(2.0)
        assert summary.availability == pytest.approx(2 / 4)

    def test_ongoing_partition_flagged(self):
        tracker = PartitionTracker()
        for t, up in enumerate([True, False, False]):
            tracker.observe(snap_at(float(t), up))
        summary = tracker.finish()
        assert summary.ongoing
        assert summary.episodes == 0

    def test_multiple_episodes_max_duration(self):
        tracker = PartitionTracker()
        pattern = [True, False, True, False, False, False, True]
        for t, up in enumerate(pattern):
            tracker.observe(snap_at(float(t), up))
        summary = tracker.finish()
        assert summary.episodes == 2
        assert summary.max_duration == pytest.approx(3.0)

    def test_empty_observation(self):
        summary = PartitionTracker().finish()
        assert summary.availability == 1.0 and summary.episodes == 0

    def test_order_enforced(self):
        tracker = PartitionTracker()
        tracker.observe(snap_at(1.0, True))
        with pytest.raises(SimulationError):
            tracker.observe(snap_at(0.5, True))

    def test_observe_after_finish_rejected(self):
        tracker = PartitionTracker()
        tracker.finish()
        with pytest.raises(SimulationError):
            tracker.observe(snap_at(0.0, True))


class TestOnLiveWorlds:
    def _summary(self, buffer, pn=False, seed=4):
        cfg = ScenarioConfig(
            n_nodes=20, area=Area(403.0, 403.0), normal_range=250.0,
            duration=12.0, warmup=2.0, sample_rate=2.0,
        )
        spec = ExperimentSpec(
            protocol="rng", mechanism="view-sync", buffer_width=buffer,
            physical_neighbor_mode=pn, mean_speed=25.0, config=cfg,
        )
        world = build_world(spec, seed=seed)
        tracker = PartitionTracker(physical_neighbor_mode=pn)
        for t in np.arange(2.0, 12.0, 0.5):
            world.run_until(float(t))
            tracker.observe(world.snapshot())
        return tracker.finish()

    def test_buffer_raises_availability(self):
        thin = self._summary(buffer=0.0)
        wide = self._summary(buffer=100.0)
        assert wide.availability >= thin.availability

    def test_availability_in_unit_interval(self):
        summary = self._summary(buffer=30.0)
        assert 0.0 <= summary.availability <= 1.0
