"""Property battery for the anti-entropy gossip mechanism.

Three contracts, exercised the way the issue's acceptance criteria state
them:

1. **Merge algebra.**  :func:`merge_entries` is monotone (latest versions
   never decrease), commutative (merge order does not change the
   latest-entry state) and idempotent (re-merging is a no-op) — all on
   the *digest* state.  Full history deques are deliberately out of
   scope: ``history_depth`` truncation plus the strictly-newer rule make
   intermediate retention order-dependent, while every view the
   mechanisms build reads only the latest live entry per sender.

2. **Cache twins.**  Under gossip — including lossy Hello channels, where
   epidemic repair does real work — a decision-cache-disabled world is
   bit-identical to the cached one: same decisions, same channel
   counters, same gossip counters.  This is the PR-2 contract extended to
   the fourth mechanism, and it holds because gossip peer sampling reads
   true geometry, never decisions.

3. **Staleness oracle.**  A 25-run fuzz smoke over the gossip mechanism
   axis passes with zero failures: Theorem 5's freshness bound, widened
   by ``rounds_to_converge × interval``, absorbs epidemic propagation
   lag.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.core.tables import NeighborTable
from repro.core.views import Hello
from repro.faults.fuzz import fuzz
from repro.gossip import merge_entries, view_digest
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig

# --------------------------------------------------------------------- #
# merge algebra


def _hello(sender: int, version: int) -> Hello:
    return Hello(
        sender=sender,
        version=version,
        position=(float(sender), float(version)),
        sent_at=0.0,
        timestamp=0.0,
    )


entries_strategy = st.lists(
    st.builds(
        _hello,
        sender=st.integers(min_value=1, max_value=5),
        version=st.integers(min_value=1, max_value=30),
    ),
    max_size=20,
)


def _digest(table: NeighborTable) -> dict[int, int]:
    # sent_at is 0.0 everywhere, so now=0.0 keeps every entry live and
    # the digest *is* the latest-entry state.
    return view_digest(table, now=0.0, removal_age=2.5)


def _merged_table(batches: list[tuple[Hello, ...]]) -> NeighborTable:
    table = NeighborTable(0, normal_range=250.0, history_depth=3, expiry=2.5)
    for batch in batches:
        merge_entries(table, batch)
    return table


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(entries=entries_strategy)
    def test_monotone(self, entries):
        table = NeighborTable(0, normal_range=250.0, history_depth=3, expiry=2.5)
        for hello in entries:
            before = _digest(table)
            merge_entries(table, (hello,))
            after = _digest(table)
            for sender, version in before.items():
                assert after[sender] >= version

    @settings(max_examples=60, deadline=None)
    @given(a=entries_strategy, b=entries_strategy)
    def test_commutative(self, a, b):
        ab = _merged_table([tuple(a), tuple(b)])
        ba = _merged_table([tuple(b), tuple(a)])
        assert _digest(ab) == _digest(ba)

    @settings(max_examples=60, deadline=None)
    @given(entries=entries_strategy)
    def test_idempotent(self, entries):
        batch = tuple(entries)
        once = _merged_table([batch])
        twice = _merged_table([batch, batch])
        assert merge_entries(once, batch) == 0
        assert _digest(once) == _digest(twice)

    @settings(max_examples=60, deadline=None)
    @given(a=entries_strategy, b=entries_strategy)
    def test_merge_union_dominates(self, a, b):
        # Merging both batches yields, per sender, the max version either
        # batch (alone) would have produced — last-writer-wins, no drops.
        both = _digest(_merged_table([tuple(a), tuple(b)]))
        only_a = _digest(_merged_table([tuple(a)]))
        only_b = _digest(_merged_table([tuple(b)]))
        want = dict(only_a)
        for sender, version in only_b.items():
            want[sender] = max(want.get(sender, 0), version)
        assert both == want


# --------------------------------------------------------------------- #
# decision-cache twin worlds


class TestCacheTwins:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        loss=st.sampled_from([0.0, 0.15, 0.4]),
    )
    def test_cache_twins_bit_identical_under_loss(self, seed, loss):
        config = ScenarioConfig(
            n_nodes=10,
            area=Area(285.0, 285.0),
            normal_range=250.0,
            duration=5.0,
            warmup=2.0,
            sample_rate=1.0,
            hello_loss_rate=loss,
        )
        spec = ExperimentSpec(
            protocol="rng", mechanism="gossip", mean_speed=10.0, config=config
        )
        cached = build_world(spec, seed)
        uncached = build_world(spec, seed)
        uncached.manager.decision_cache_enabled = False
        cached.run_until(4.0)
        uncached.run_until(4.0)
        assert cached.gossip_stats() == uncached.gossip_stats()
        assert (
            cached.channel.stats.as_dict() == uncached.channel.stats.as_dict()
        )
        for c, u in zip(cached.nodes, uncached.nodes):
            if c.decision is None:
                assert u.decision is None
                continue
            assert c.decision.logical_neighbors == u.decision.logical_neighbors
            assert c.decision.actual_range == u.decision.actual_range
            assert c.decision.extended_range == u.decision.extended_range
        # The cache may legitimately hit rarely under gossip (every merge
        # bumps the table token), but it must never *create* work: the
        # disabled twin records no hits at all.
        assert uncached.manager.cache_info()["decision_cache_hits"] == 0


# --------------------------------------------------------------------- #
# staleness oracle under fuzz


class TestGossipFuzzSmoke:
    def test_25_run_smoke_zero_failures(self):
        report = fuzz(
            runs=25,
            seed=11,
            mechanisms=("gossip",),
            shrink=False,
            resume=False,
        )
        assert report.ok, [f.case for f in report.failures]
