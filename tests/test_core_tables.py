"""Tests for repro.core.tables: neighbor tables and view materialisation."""

from __future__ import annotations

import pytest

from conftest import make_hello
from repro.core.tables import NeighborTable
from repro.util.errors import ViewError


@pytest.fixture
def table():
    return NeighborTable(owner=0, normal_range=100.0, history_depth=3, expiry=2.5)


class TestRecording:
    def test_record_and_read_back(self, table):
        h = make_hello(1, (10, 0), sent_at=0.0)
        table.record_hello(h)
        assert table.history_of(1) == (h,)
        assert table.hellos_received == 1

    def test_history_depth_bounds_queue(self, table):
        for i in range(5):
            table.record_hello(make_hello(1, (i, 0), version=i + 1, sent_at=float(i)))
        hist = table.history_of(1)
        assert len(hist) == 3
        assert [h.version for h in hist] == [3, 4, 5]

    def test_own_hello_rejected_as_neighbor(self, table):
        with pytest.raises(ViewError):
            table.record_hello(make_hello(0, (0, 0)))

    def test_record_own(self, table):
        h = make_hello(0, (0, 0))
        table.record_own(h)
        assert table.last_advertised is h

    def test_record_own_rejects_foreign(self, table):
        with pytest.raises(ViewError):
            table.record_own(make_hello(3, (0, 0)))

    def test_unknown_neighbor_history_empty(self, table):
        assert table.history_of(42) == ()


class TestExpiry:
    def test_known_neighbors_filters_stale(self, table):
        table.record_hello(make_hello(1, (1, 0), sent_at=0.0))
        table.record_hello(make_hello(2, (2, 0), sent_at=9.0))
        assert table.known_neighbors(now=10.0) == [2]
        assert table.known_neighbors() == [1, 2]

    def test_prune_drops_stale_records(self, table):
        table.record_hello(make_hello(1, (1, 0), sent_at=0.0))
        table.prune(now=10.0)
        assert table.history_of(1) == ()

    def test_latest_view_excludes_expired(self, table):
        table.record_hello(make_hello(1, (1, 0), sent_at=0.0))
        table.record_hello(make_hello(2, (2, 0), sent_at=9.5))
        view = table.latest_view(10.0, own_hello=make_hello(0, (0, 0), sent_at=10.0))
        assert 2 in view and 1 not in view


class TestVersionedViews:
    def _fill(self, table):
        table.record_own(make_hello(0, (0, 0), version=1, sent_at=0.0))
        table.record_own(make_hello(0, (0, 1), version=2, sent_at=1.0))
        table.record_hello(make_hello(1, (5, 0), version=1, sent_at=0.1))
        table.record_hello(make_hello(1, (6, 0), version=2, sent_at=1.1))
        table.record_hello(make_hello(2, (9, 0), version=1, sent_at=0.2))

    def test_versioned_view_selects_exact_version(self, table):
        self._fill(table)
        view = table.versioned_view(2.0, version=1)
        assert view.position_of(1) == (5.0, 0.0)
        assert view.position_of(2) == (9.0, 0.0)
        assert view.own_hello.version == 1

    def test_versioned_view_drops_missing_versions(self, table):
        self._fill(table)
        view = table.versioned_view(2.0, version=2)
        assert 1 in view and 2 not in view

    def test_versioned_view_requires_own_version(self, table):
        self._fill(table)
        with pytest.raises(ViewError):
            table.versioned_view(2.0, version=7)

    def test_available_versions(self, table):
        self._fill(table)
        assert table.available_versions() == {1, 2}

    def test_message_versions_in_use(self, table):
        self._fill(table)
        assert table.message_versions_in_use(1) == {1, 2}
        assert table.message_versions_in_use(2) == {1}


class TestMultiView:
    def test_multi_view_carries_histories(self, table):
        table.record_own(make_hello(0, (0, 0), sent_at=0.0))
        table.record_hello(make_hello(1, (5, 0), version=1, sent_at=0.0))
        table.record_hello(make_hello(1, (6, 0), version=2, sent_at=1.0))
        view = table.multi_view(1.5)
        assert [h.position for h in view.hellos_of(1)] == [(5.0, 0.0), (6.0, 0.0)]

    def test_multi_view_appends_current_hello(self, table):
        table.record_own(make_hello(0, (0, 0), version=1, sent_at=0.0))
        current = make_hello(0, (1, 1), version=2, sent_at=1.0)
        view = table.multi_view(1.0, own_hello=current)
        assert view.hellos_of(0)[-1] is current

    def test_multi_view_without_any_own_record_raises(self, table):
        with pytest.raises(ViewError):
            table.multi_view(0.0)

    def test_multi_view_filters_expired_neighbors(self, table):
        table.record_own(make_hello(0, (0, 0), sent_at=9.0))
        table.record_hello(make_hello(1, (5, 0), sent_at=0.0))
        view = table.multi_view(10.0)
        assert 1 not in view


class TestValidation:
    def test_rejects_bad_history_depth(self):
        with pytest.raises(Exception):
            NeighborTable(owner=0, normal_range=100.0, history_depth=0)

    def test_rejects_bad_expiry(self):
        with pytest.raises(Exception):
            NeighborTable(owner=0, normal_range=100.0, expiry=0.0)
