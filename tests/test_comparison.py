"""Tests for repro.analysis.comparison: paired A/B methodology."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import compare_specs
from repro.analysis.experiment import ExperimentSpec
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError

CFG = ScenarioConfig(
    n_nodes=15,
    area=Area(349.0, 349.0),
    normal_range=250.0,
    duration=6.0,
    warmup=2.0,
    sample_rate=1.0,
)


class TestCompareSpecs:
    def test_identical_specs_no_difference(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=CFG)
        result = compare_specs(spec, spec, repetitions=3, base_seed=100)
        assert result.verdict is None
        assert result.difference.mean == 0.0

    def test_buffer_clearly_helps_at_speed(self):
        a = ExperimentSpec(protocol="mst", buffer_width=0.0, mean_speed=30.0, config=CFG)
        b = a.with_(buffer_width=100.0)
        result = compare_specs(a, b, repetitions=4, base_seed=100)
        assert result.b_mean > result.a_mean
        assert result.verdict == "B"

    def test_range_metric_detects_buffer_cost(self):
        a = ExperimentSpec(protocol="rng", buffer_width=0.0, mean_speed=10.0, config=CFG)
        b = a.with_(buffer_width=100.0)
        result = compare_specs(a, b, repetitions=3, base_seed=100, metric="tx_range")
        assert result.verdict == "B"  # wider buffer => longer range

    def test_unknown_metric_rejected(self):
        spec = ExperimentSpec(protocol="rng", config=CFG)
        with pytest.raises(ConfigurationError):
            compare_specs(spec, spec, metric="happiness")

    def test_requires_two_repetitions(self):
        spec = ExperimentSpec(protocol="rng", config=CFG)
        with pytest.raises(ConfigurationError):
            compare_specs(spec, spec, repetitions=1)

    def test_summary_readable(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=CFG)
        result = compare_specs(spec, spec, repetitions=2, base_seed=100)
        text = result.summary()
        assert "connectivity" in text and "no significant difference" in text
