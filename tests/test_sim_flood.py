"""Tests for repro.sim.flood: BFS probes and Theorem 5 integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer_zone import BufferZonePolicy, buffer_width
from repro.core.consistency import ProactiveConsistency, ViewSynchronization
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.metrics.connectivity import pairwise_connectivity_ratio
from repro.mobility import Area, RandomWaypoint, StaticPlacement
from repro.protocols import MstProtocol, RngProtocol
from repro.sim.config import ScenarioConfig
from repro.sim.flood import FloodResult, directed_bfs, flood
from repro.sim.world import NetworkWorld
from repro.util.randomness import SeedSequenceFactory


def build_world(protocol=None, mechanism=None, buffer=0.0, speed=5.0, seed=5, n=14):
    cfg = ScenarioConfig(
        n_nodes=n,
        area=Area(300.0, 300.0),
        normal_range=150.0,
        duration=10.0,
        warmup=2.0,
        sample_rate=2.0,
    )
    seeds = SeedSequenceFactory(seed)
    if speed == 0:
        mobility = StaticPlacement(cfg.area, n, cfg.duration, rng=seeds.rng("m"))
    else:
        mobility = RandomWaypoint(cfg.area, n, cfg.duration, speed, rng=seeds.rng("m"))
    manager = MobilitySensitiveTopologyControl(
        protocol or RngProtocol(),
        mechanism=mechanism,
        buffer_policy=BufferZonePolicy(width=buffer, cap=cfg.normal_range),
    )
    return NetworkWorld(cfg, mobility, manager, seed=seed)


class TestDirectedBfs:
    def test_reaches_along_directed_edges_only(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True  # 0 -> 1 only
        adj[2, 1] = True
        reached = directed_bfs(adj, 0)
        assert reached.tolist() == [True, True, False]

    def test_source_always_reached(self):
        assert directed_bfs(np.zeros((4, 4), dtype=bool), 2)[2]

    def test_chain(self):
        adj = np.zeros((5, 5), dtype=bool)
        for i in range(4):
            adj[i, i + 1] = True
        assert directed_bfs(adj, 0).all()
        assert directed_bfs(adj, 4).sum() == 1

    def test_cycle(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 2] = adj[2, 0] = True
        assert directed_bfs(adj, 1).all()


class TestFloodResult:
    def test_delivery_ratio_excludes_source(self):
        reached = np.array([True, True, False, False])
        result = FloodResult(source=0, reached=reached, transmissions=2)
        assert result.delivery_ratio == pytest.approx(1 / 3)

    def test_full_coverage_is_one(self):
        reached = np.ones(5, dtype=bool)
        assert FloodResult(0, reached, 5).delivery_ratio == 1.0

    def test_single_node_network(self):
        assert FloodResult(0, np.array([True]), 1).delivery_ratio == 1.0


class TestFloodInWorld:
    def test_static_dense_network_full_delivery(self):
        # seed 0 gives a connected original topology; on a static network a
        # connectivity-preserving protocol must then deliver to everyone.
        world = build_world(speed=0.0, seed=0)
        world.run_until(4.0)
        from repro.metrics.connectivity import original_topology_connected

        assert original_topology_connected(world.snapshot())
        result = flood(world, source=0)
        assert result.delivery_ratio == 1.0

    def test_flood_counts_transmissions(self):
        world = build_world(speed=0.0)
        world.run_until(4.0)
        before = world.channel.stats.data_transmissions
        result = flood(world, source=0)
        assert world.channel.stats.data_transmissions - before == result.transmissions

    def test_delivery_matches_pairwise_reachability_from_source(self):
        world = build_world(speed=10.0)
        world.run_until(6.0)
        result = flood(world, source=3)
        snap = world.snapshot()
        reached = directed_bfs(snap.effective_directed(False), 3)
        assert np.array_equal(result.reached, reached)

    def test_physical_neighbor_mode_reaches_at_least_as_many(self):
        world = build_world(speed=20.0)
        world.run_until(6.0)
        strict = flood(world, source=0, physical_neighbor_mode=False)
        pn = flood(world, source=0, physical_neighbor_mode=True)
        assert pn.reached.sum() >= strict.reached.sum()

    def test_view_sync_triggers_redecisions(self):
        world = build_world(mechanism=ViewSynchronization(), speed=10.0)
        world.run_until(4.0)
        flood(world, source=0)
        assert all(node.packet_decisions >= 1 for node in world.nodes)

    def test_proactive_flood_uses_common_version(self):
        world = build_world(mechanism=ProactiveConsistency(), speed=10.0)
        world.run_until(5.0)
        flood(world, source=0)
        # After the packet, all deciding nodes hold decisions from the
        # packet's version epoch — bounded by one interval of each other.
        times = [n.decision.decided_at for n in world.nodes if n.decision]
        assert max(times) - min(times) <= 1e-9


class TestTheorem5Integration:
    """Buffer width l = 2 * Delta'' * v keeps every logical link effective."""

    @pytest.mark.parametrize("speed", [5.0, 20.0])
    def test_worst_case_buffer_covers_all_logical_links(self, speed):
        cfg_expiry = 2.5
        max_interval = 1.25
        # Delta'': oldest usable Hello (expiry) + decision staleness (one
        # full interval until the next refresh).
        delay = cfg_expiry + max_interval
        width = buffer_width(max_speed=2.0 * speed, max_delay=delay)
        world = build_world(protocol=MstProtocol(), buffer=width, speed=speed, seed=7)
        # remove the cap for the theorem check
        world.manager.buffer_policy = BufferZonePolicy(width=width, cap=None)
        violations = 0
        checks = 0
        for t in np.arange(2.0, 10.0, 0.5):
            world.run_until(float(t))
            snap = world.snapshot()
            for u in range(snap.n_nodes):
                for v in np.flatnonzero(snap.logical[u]):
                    checks += 1
                    if snap.dist[u, v] > snap.extended_ranges[u] + 1e-9:
                        violations += 1
        assert checks > 0
        assert violations == 0

    def test_without_buffer_links_do_fail(self):
        world = build_world(protocol=MstProtocol(), buffer=0.0, speed=40.0, seed=7)
        failures = 0
        for t in np.arange(2.0, 10.0, 0.5):
            world.run_until(float(t))
            snap = world.snapshot()
            for u in range(snap.n_nodes):
                for v in np.flatnonzero(snap.logical[u]):
                    if snap.dist[u, v] > snap.extended_ranges[u] + 1e-9:
                        failures += 1
        assert failures > 0  # mobility really does break uncovered links


class TestConnectivityEstimator:
    def test_mean_flood_delivery_estimates_pairwise_ratio(self):
        # On a frozen snapshot, averaging delivery over all sources equals
        # the exact pairwise connectivity ratio.
        world = build_world(speed=15.0, seed=9)
        world.run_until(6.0)
        snap = world.snapshot()
        adj = snap.effective_directed(False)
        n = snap.n_nodes
        ratios = [
            (directed_bfs(adj, s).sum() - 1) / (n - 1) for s in range(n)
        ]
        exact = pairwise_connectivity_ratio(snap)
        assert np.mean(ratios) == pytest.approx(exact, abs=1e-12)
