"""Tests for repro.sim.observers: pluggable instrumentation."""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.sim.observers import ObserverSet
from repro.util.errors import SimulationError


@pytest.fixture
def world():
    cfg = ScenarioConfig(
        n_nodes=12, area=Area(312.0, 312.0), normal_range=250.0,
        duration=8.0, warmup=2.0, sample_rate=1.0,
    )
    return build_world(ExperimentSpec(protocol="rng", mean_speed=5.0, config=cfg), seed=1)


class TestObserverSet:
    def test_samples_at_cadence(self, world):
        obs = ObserverSet(world)
        obs.add("time", lambda w: w.engine.now)
        obs.start(first_at=2.0, interval=1.0)
        world.run_until(6.0)
        times = [o.time for o in obs.series("time")]
        assert times == [2.0, 3.0, 4.0, 5.0, 6.0]

    def test_probe_sees_live_world(self, world):
        obs = ObserverSet(world)
        obs.add("mean_degree", lambda w: float(w.snapshot().logical_degrees().mean()))
        obs.start(first_at=3.0, interval=2.0)
        world.run_until(7.0)
        values = obs.values("mean_degree")
        assert len(values) == 3
        assert all(v > 0 for v in values)  # tables warm by t=3

    def test_multiple_probes_share_schedule(self, world):
        obs = ObserverSet(world)
        obs.add("a", lambda w: 1)
        obs.add("b", lambda w: 2)
        obs.start(first_at=2.0, interval=2.0)
        world.run_until(6.0)
        assert len(obs.series("a")) == len(obs.series("b")) == 3
        assert obs.names() == ["a", "b"]

    def test_stop_halts_sampling(self, world):
        obs = ObserverSet(world)
        obs.add("x", lambda w: 0)
        obs.start(first_at=2.0, interval=1.0)
        world.run_until(4.0)
        obs.stop()
        world.run_until(8.0)
        assert len(obs.series("x")) == 3

    def test_duplicate_probe_rejected(self, world):
        obs = ObserverSet(world)
        obs.add("x", lambda w: 0)
        with pytest.raises(SimulationError):
            obs.add("x", lambda w: 1)

    def test_double_start_rejected(self, world):
        obs = ObserverSet(world)
        obs.start(first_at=2.0, interval=1.0)
        with pytest.raises(SimulationError):
            obs.start(first_at=3.0, interval=1.0)

    def test_unknown_probe_rejected(self, world):
        with pytest.raises(SimulationError):
            ObserverSet(world).series("ghost")

    def test_add_after_start_joins_next_tick(self, world):
        obs = ObserverSet(world)
        obs.start(first_at=2.0, interval=1.0)
        world.run_until(3.5)
        obs.add("late", lambda w: w.engine.now)
        world.run_until(6.0)
        late_times = [o.time for o in obs.series("late")]
        assert late_times == [4.0, 5.0, 6.0]


class TestObserverEdgeCases:
    def test_raising_probe_surfaces_simulation_error_with_name(self, world):
        obs = ObserverSet(world)
        obs.add("healthy", lambda w: 0)
        obs.add("fragile", lambda w: 1 / 0)
        obs.start(first_at=2.0, interval=1.0)
        with pytest.raises(SimulationError, match="fragile") as excinfo:
            world.run_until(4.0)
        # the original exception stays reachable for debugging
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)

    def test_raising_probe_reports_time(self, world):
        obs = ObserverSet(world)
        obs.add("boom", lambda w: (_ for _ in ()).throw(RuntimeError("x")))
        obs.start(first_at=3.0, interval=1.0)
        with pytest.raises(SimulationError, match="t=3"):
            world.run_until(5.0)

    def test_stop_before_start_is_a_noop(self, world):
        obs = ObserverSet(world)
        obs.add("x", lambda w: 0)
        obs.stop()  # must not raise
        obs.start(first_at=2.0, interval=1.0)  # and must not block a start
        world.run_until(3.0)
        assert len(obs.series("x")) == 2

    def test_duplicate_probe_error_names_the_probe(self, world):
        obs = ObserverSet(world)
        obs.add("degree", lambda w: 0)
        with pytest.raises(SimulationError, match="degree"):
            obs.add("degree", lambda w: 1)

    def test_hello_losses_accumulate_only_during_burst(self):
        # Observe ChannelStats.hello_losses through a bursty blackout:
        # the counter must be flat outside [3, 5) and strictly growing
        # inside it.
        from repro.faults import FaultSchedule, HelloLossBurst

        cfg = ScenarioConfig(
            n_nodes=12, area=Area(312.0, 312.0), normal_range=250.0,
            duration=8.0, warmup=2.0, sample_rate=1.0,
        )
        schedule = FaultSchedule(
            events=(HelloLossBurst(start=3.0, end=5.0),)
        )
        world = build_world(
            ExperimentSpec(protocol="rng", mean_speed=5.0, config=cfg),
            seed=1,
            faults=schedule,
        )
        obs = ObserverSet(world)
        obs.add("losses", lambda w: w.channel.stats.hello_losses)
        obs.start(first_at=0.5, interval=0.5)
        world.run_until(8.0)
        series = obs.series("losses")
        before = [o.value for o in series if o.time <= 3.0]
        during = [o.value for o in series if 3.5 <= o.time <= 5.0]
        after = [o.value for o in series if o.time >= 5.5]
        assert before[-1] == 0
        assert during[-1] > 0
        assert after[0] == after[-1] == during[-1]
        assert world.fault_stats()["fault_hello_drops"] == during[-1]
