"""Tests for repro.mobility.scenario_io: setdest import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import Area, RandomWaypoint, ScenarioFileMobility
from repro.mobility.scenario_io import export_setdest, parse_setdest
from repro.util.errors import ConfigurationError

SCENARIO = """
# hand-written scenario
$node_(0) set X_ 0.0
$node_(0) set Y_ 0.0
$node_(0) set Z_ 0.0
$node_(1) set X_ 100.0
$node_(1) set Y_ 0.0
$node_(1) set Z_ 0.0
$ns_ at 1.0 "$node_(0) setdest 30.0 0.0 10.0"
$ns_ at 10.0 "$node_(0) setdest 30.0 40.0 20.0"
"""


class TestParse:
    def test_initial_positions(self):
        traj = parse_setdest(SCENARIO, horizon=20.0)
        pts = traj.positions(0.0)
        assert np.allclose(pts[0], [0.0, 0.0])
        assert np.allclose(pts[1], [100.0, 0.0])

    def test_motion_between_commands(self):
        traj = parse_setdest(SCENARIO, horizon=20.0)
        # at t=2, node 0 has moved 10 m toward (30, 0)
        assert np.allclose(traj.position(0, 2.0), [10.0, 0.0])

    def test_pause_after_arrival(self):
        traj = parse_setdest(SCENARIO, horizon=20.0)
        # arrives at (30,0) at t=4; second command at t=10
        assert np.allclose(traj.position(0, 6.0), [30.0, 0.0])

    def test_second_leg(self):
        traj = parse_setdest(SCENARIO, horizon=20.0)
        # from t=10: 40 m at 20 m/s, arrives t=12
        assert np.allclose(traj.position(0, 11.0), [30.0, 20.0])
        assert np.allclose(traj.position(0, 15.0), [30.0, 40.0])

    def test_stationary_node(self):
        traj = parse_setdest(SCENARIO, horizon=20.0)
        assert np.allclose(traj.position(1, 17.0), [100.0, 0.0])

    def test_no_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_setdest("# empty", horizon=10.0)

    def test_out_of_order_commands_rejected(self):
        text = (
            "$node_(0) set X_ 0.0\n$node_(0) set Y_ 0.0\n"
            '$ns_ at 5.0 "$node_(0) setdest 1.0 1.0 1.0"\n'
            '$ns_ at 9.0 "$node_(0) setdest 2.0 2.0 1.0"\n'
        )
        # in-order commands parse fine
        parse_setdest(text, horizon=10.0)

    def test_unquoted_command_accepted(self):
        text = (
            "$node_(0) set X_ 0.0\n$node_(0) set Y_ 0.0\n"
            "$ns_ at 1.0 $node_(0) setdest 5.0 0.0 5.0\n"
        )
        traj = parse_setdest(text, horizon=5.0)
        assert np.allclose(traj.position(0, 2.0), [5.0, 0.0])


class TestExportRoundtrip:
    def test_waypoint_roundtrip(self, area, rng):
        model = RandomWaypoint(area, 8, horizon=20.0, mean_speed=15.0, rng=rng)
        text = export_setdest(model.trajectories)
        parsed = parse_setdest(text, horizon=20.0)
        for t in np.linspace(0.0, 19.5, 14):
            assert np.allclose(
                parsed.positions(float(t)), model.positions(float(t)), atol=1e-3
            ), f"mismatch at t={t}"

    def test_export_contains_all_nodes(self, area, rng):
        model = RandomWaypoint(area, 5, horizon=10.0, mean_speed=10.0, rng=rng)
        text = export_setdest(model.trajectories)
        for i in range(5):
            assert f"$node_({i}) set X_" in text

    def test_export_commands_sorted_by_time(self, area, rng):
        model = RandomWaypoint(area, 5, horizon=10.0, mean_speed=10.0, rng=rng)
        text = export_setdest(model.trajectories)
        times = [
            float(line.split()[2])
            for line in text.splitlines()
            if line.startswith("$ns_ at")
        ]
        assert times == sorted(times)


class TestScenarioFileMobility:
    def test_model_wraps_parsed_trajectories(self, area):
        model = ScenarioFileMobility(area, SCENARIO, horizon=20.0)
        assert model.n_nodes == 2
        assert np.allclose(model.position(0, 2.0), [10.0, 0.0])

    def test_usable_in_world(self, area):
        from repro.core.manager import MobilitySensitiveTopologyControl
        from repro.protocols import RngProtocol
        from repro.sim.config import ScenarioConfig
        from repro.sim.world import NetworkWorld

        cfg = ScenarioConfig(
            n_nodes=2, area=area, normal_range=250.0, duration=15.0,
            warmup=2.0, sample_rate=1.0,
        )
        model = ScenarioFileMobility(area, SCENARIO, horizon=20.0)
        world = NetworkWorld(
            cfg, model, MobilitySensitiveTopologyControl(RngProtocol()), seed=1
        )
        world.run_until(10.0)
        snap = world.snapshot()
        assert snap.positions.shape == (2, 2)
