"""Tests for repro.cli: argument parsing and end-to-end command runs."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "quick" and args.command == "table1"

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--scale", "galactic"])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "--protocol", "mst", "--mechanism", "weak", "--buffer", "10",
             "--speed", "40", "--pn"]
        )
        assert args.protocol == "mst"
        assert args.mechanism == "weak"
        assert args.buffer == 10.0
        assert args.pn

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "pigeon"])


class TestMain:
    def test_run_command_prints_summary(self, capsys):
        code = main(
            [
                "run", "--protocol", "rng", "--speed", "5", "--nodes", "12",
                "--duration", "5", "--sample-rate", "1", "--repetitions", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "connectivity" in out
        assert "rng+baseline" in out

    def test_unicast_subcommand(self, capsys):
        code = main(["unicast", "--scale", "smoke", "--speed", "10"])
        out = capsys.readouterr().out
        assert code == 0 and "GFG/GPSR" in out

    def test_lifetime_subcommand(self, capsys):
        code = main(["lifetime", "--scale", "smoke", "--budget", "1e7"])
        out = capsys.readouterr().out
        assert code == 0 and "lifetime" in out

    def test_equivalence_subcommand(self, capsys):
        code = main(["equivalence", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0 and "v_over_R" in out

    def test_table1_smoke_with_csv(self, capsys, tmp_path, monkeypatch):
        # swap the smoke scale in for an even smaller one via --scale smoke
        csv_path = tmp_path / "t1.csv"
        code = main(["table1", "--scale", "smoke", "--csv", str(csv_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert "artifact" in header


class TestTelemetryFlag:
    def test_run_with_telemetry_writes_valid_jsonl_and_phases(self, capsys, tmp_path):
        from repro.telemetry import validate_jsonl

        path = tmp_path / "out.jsonl"
        code = main(
            [
                "run", "--protocol", "rng", "--speed", "5", "--nodes", "12",
                "--duration", "5", "--sample-rate", "1", "--repetitions", "1",
                "--telemetry", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert validate_jsonl(path) == []
        assert "telemetry — run" in out
        assert "hello_sent" in out
        phases = tmp_path / "out.jsonl.phases.json"
        assert phases.exists()
        import json

        doc = json.loads(phases.read_text())
        assert "engine_run" in doc["phases"]

    def test_telemetry_multi_worker_merges(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        code = main(
            [
                "run", "--protocol", "rng", "--speed", "5", "--nodes", "12",
                "--duration", "5", "--sample-rate", "1", "--repetitions", "2",
                "--workers", "2", "--telemetry", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "forcing --workers 1" not in out
        assert "parent-side events only" in out
        assert "hello_sent" in out  # worker counters merged into the summary
        assert path.exists()

    def test_figures_accept_telemetry(self, capsys, tmp_path):
        from repro.telemetry import validate_jsonl

        path = tmp_path / "fig.jsonl"
        code = main(["table1", "--scale", "smoke", "--telemetry", str(path)])
        assert code == 0
        assert validate_jsonl(path) == []
        assert "telemetry — table1" in capsys.readouterr().out
