"""Tests for the fault-injection subsystem (repro.faults).

Covers the schedule's value semantics (windows, normalization, JSON
round-trips), the injector's runtime queries, and the world-level seams:
outages gate emission and reception, loss bursts are charged to
``ChannelStats.hello_losses``, delivery delays reorder without breaking
the version discipline, GPS noise stays within its amplitude bound, and
the whole pipeline replays bit-identically from ``(seed, schedule)``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.experiment import ExperimentSpec, build_world, run_once
from repro.core.audit import audit_world
from repro.faults import (
    ClockSkew,
    DeliveryDelay,
    FaultInjector,
    FaultSchedule,
    HelloIntervalScale,
    HelloLossBurst,
    NodeOutage,
    PositionNoise,
)
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError


def tiny_config(**overrides) -> ScenarioConfig:
    base = dict(
        n_nodes=12,
        area=Area(320.0, 320.0),
        duration=6.0,
        warmup=2.0,
        sample_rate=2.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def tiny_spec(**overrides) -> ExperimentSpec:
    base = dict(mechanism="view-sync", mean_speed=5.0, config=tiny_config())
    base.update(overrides)
    return ExperimentSpec(**base)


ALL_KINDS = FaultSchedule(
    events=(
        HelloLossBurst(start=2.0, end=3.5, probability=0.7),
        NodeOutage(node=3, start=2.5, end=4.0),
        DeliveryDelay(start=1.0, end=5.0, delay=0.3, senders=(1, 2)),
        PositionNoise(start=0.0, end=6.0, amplitude=5.0, nodes=(0, 1, 2, 3)),
        ClockSkew(node=5, offset=0.2),
        HelloIntervalScale(node=6, start=0.0, end=6.0, factor=1.5),
    ),
    note="one of each",
)


class TestEventSemantics:
    def test_window_is_half_open(self):
        event = NodeOutage(node=0, start=1.0, end=2.0)
        assert not event.active(0.999)
        assert event.active(1.0)
        assert event.active(1.999)
        assert not event.active(2.0)

    def test_default_window_is_permanent(self):
        event = PositionNoise(amplitude=1.0)
        assert event.active(0.0)
        assert event.active(1e9)
        assert math.isinf(event.end)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node=0, start=2.0, end=2.0)

    def test_negative_node_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeOutage(node=-1)
        with pytest.raises(ConfigurationError):
            HelloLossBurst(senders=(0, -2))

    def test_zero_probability_burst_rejected(self):
        with pytest.raises(ConfigurationError):
            HelloLossBurst(probability=0.0)

    def test_node_filters_normalised_sorted(self):
        event = HelloLossBurst(senders=[5, 1, 3])
        assert event.senders == (1, 3, 5)
        assert event.matches(3, 0)
        assert not event.matches(2, 0)


class TestScheduleValueSemantics:
    def test_events_normalised_by_start(self):
        a = NodeOutage(node=0, start=3.0, end=4.0)
        b = NodeOutage(node=1, start=1.0, end=2.0)
        assert FaultSchedule(events=(a, b)) == FaultSchedule(events=(b, a))
        assert FaultSchedule(events=(a, b)).events[0] is b

    def test_horizon_ignores_infinite_ends(self):
        sched = FaultSchedule(
            events=(ClockSkew(node=0, offset=0.1), NodeOutage(node=1, start=2.0, end=5.0))
        )
        assert sched.horizon == 5.0

    def test_without_and_subset(self):
        assert len(ALL_KINDS.without(0)) == len(ALL_KINDS) - 1
        assert len(ALL_KINDS.subset([0, 2])) == 2
        assert len(ALL_KINDS.subset([])) == 0

    def test_any_active_window_overlap(self):
        sched = FaultSchedule(events=(NodeOutage(node=0, start=2.0, end=3.0),))
        assert sched.any_active(2.5, 2.6)
        assert sched.any_active(0.0, 2.0)  # touches the start
        assert not sched.any_active(3.0, 9.0)  # [start, end) excludes end

    def test_clock_skew_counts_always_active(self):
        sched = FaultSchedule(events=(ClockSkew(node=0, offset=0.1),))
        assert sched.any_active(50.0, 60.0)

    def test_json_round_trip_every_kind(self):
        assert FaultSchedule.from_json(ALL_KINDS.to_json()) == ALL_KINDS

    def test_json_encodes_infinite_end_as_null(self):
        text = FaultSchedule(events=(PositionNoise(amplitude=2.0),)).to_json()
        assert '"end": null' in text
        restored = FaultSchedule.from_json(text)
        assert math.isinf(restored.events[0].end)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSchedule.from_dict({"events": [{"kind": "meteor-strike"}]})


class TestInjectorQueries:
    def make_injector(self, schedule=ALL_KINDS, seed=0):
        return FaultInjector(schedule, np.random.default_rng(seed))

    def test_node_down_tracks_window(self):
        inj = self.make_injector()
        assert not inj.node_down(3, 2.0)
        assert inj.node_down(3, 3.0)
        assert not inj.node_down(3, 4.0)
        assert not inj.node_down(9, 3.0)

    def test_total_blackout_drops_all_matched(self):
        sched = FaultSchedule(
            events=(HelloLossBurst(start=0.0, end=1.0, receivers=(1, 2)),)
        )
        inj = self.make_injector(sched)
        receivers = np.array([1, 2, 3, 4])
        survivors = inj.filter_hello_receivers(0.5, 0, receivers)
        assert survivors.tolist() == [3, 4]
        assert inj.stats["hello_drops"] == 2

    def test_partial_burst_is_seeded(self):
        sched = FaultSchedule(events=(HelloLossBurst(probability=0.5),))
        a = self.make_injector(sched, seed=7)
        b = self.make_injector(sched, seed=7)
        receivers = np.arange(50)
        assert a.filter_hello_receivers(0.0, 0, receivers).tolist() == (
            b.filter_hello_receivers(0.0, 0, receivers).tolist()
        )

    def test_delivery_delay_sums_matching_events(self):
        sched = FaultSchedule(
            events=(
                DeliveryDelay(start=0.0, end=9.0, delay=0.2),
                DeliveryDelay(start=0.0, end=9.0, delay=0.3, senders=(1,)),
            )
        )
        inj = self.make_injector(sched)
        assert inj.delivery_delay(1.0, 1, 5) == pytest.approx(0.5)
        assert inj.delivery_delay(1.0, 2, 5) == pytest.approx(0.2)
        assert inj.delivery_delay(9.5, 1, 5) == 0.0

    def test_position_noise_within_amplitude(self):
        sched = FaultSchedule(events=(PositionNoise(amplitude=5.0),))
        inj = self.make_injector(sched, seed=3)
        pos = np.array([10.0, 20.0])
        for _ in range(200):
            noisy = inj.advertised_position(0, 0.0, pos)
            assert np.hypot(*(noisy - pos)) <= 5.0 + 1e-12
        assert inj.position_noise_bound() == 5.0

    def test_interval_scale_and_skew(self):
        inj = self.make_injector()
        assert inj.interval_scale(6, 1.0) == pytest.approx(1.5)
        assert inj.interval_scale(6, 7.0) == 1.0  # window closed
        assert inj.interval_scale(0, 1.0) == 1.0
        assert inj.clock_offset_shift(5) == pytest.approx(0.2)
        assert inj.clock_offset_shift(0) == 0.0


class TestWorldIntegration:
    def test_world_rejects_out_of_range_node(self):
        sched = FaultSchedule(events=(NodeOutage(node=99, start=1.0, end=2.0),))
        with pytest.raises(ConfigurationError, match="99"):
            build_world(tiny_spec(), seed=0, faults=sched)

    def test_outage_suppresses_sends_and_receptions(self):
        sched = FaultSchedule(events=(NodeOutage(node=0, start=0.0, end=6.0),))
        world = build_world(tiny_spec(), seed=1, faults=sched)
        world.run_until(6.0)
        stats = world.fault_stats()
        assert stats["fault_suppressed_sends"] > 0
        assert stats["fault_blocked_receptions"] > 0
        # the downed node heard nothing, so it never decided
        assert world.nodes[0].decision is None
        assert not world.nodes[0].table.known_neighbors()

    def test_blackout_charged_to_channel_hello_losses(self):
        # Bursty injected loss must be accounted exactly where the i.i.d.
        # loss model counts: a full blackout makes every would-be delivery
        # a recorded hello_loss and leaves zero deliveries.
        sched = FaultSchedule(events=(HelloLossBurst(start=0.0, end=10.0),))
        spec = tiny_spec(mean_speed=0.0)
        world = build_world(spec, seed=2, faults=sched)
        world.run_until(6.0)
        stats = world.channel.stats
        assert stats.hello_losses > 0
        assert stats.deliveries == 0
        assert stats.hello_losses == world.fault_stats()["fault_hello_drops"]
        baseline = build_world(spec, seed=2)
        baseline.run_until(6.0)
        # every delivery the fault-free twin made was dropped here
        assert stats.hello_losses == baseline.channel.stats.deliveries

    def test_delivery_delay_preserves_version_order(self):
        sched = FaultSchedule(
            events=(DeliveryDelay(start=0.0, end=6.0, delay=1.7),)
        )
        world = build_world(tiny_spec(), seed=3, faults=sched)
        world.run_until(6.0)
        # the audit's version-order invariant must hold despite reordering
        assert not [v for v in audit_world(world) if v.invariant == "version-order"]
        assert world.fault_stats()["fault_delayed_deliveries"] > 0

    def test_gps_noise_audits_clean_with_widened_slack(self):
        sched = FaultSchedule(
            events=(PositionNoise(start=0.0, end=6.0, amplitude=8.0),)
        )
        world = build_world(tiny_spec(mean_speed=10.0), seed=4, faults=sched)
        world.run_until(6.0)
        assert world.fault_stats()["fault_noisy_positions"] > 0
        assert audit_world(world) == []

    def test_run_once_merges_fault_counters(self):
        result = run_once(tiny_spec(), seed=7, faults=ALL_KINDS)
        for key in (
            "fault_hello_drops",
            "fault_suppressed_sends",
            "fault_blocked_receptions",
            "fault_delayed_deliveries",
            "fault_noisy_positions",
        ):
            assert key in result.stats.as_dict()
        assert result.stats.faults_armed
        clean = run_once(tiny_spec(), seed=7)
        assert not clean.stats.faults_armed
        assert not any(k.startswith("fault_") for k in clean.stats.as_dict())

    def test_same_seed_and_schedule_replays_bit_identically(self):
        first = run_once(tiny_spec(), seed=7, faults=ALL_KINDS)
        second = run_once(tiny_spec(), seed=7, faults=ALL_KINDS)
        assert np.array_equal(first.delivery_ratios, second.delivery_ratios)
        assert np.array_equal(first.mean_actual_ranges, second.mean_actual_ranges)
        assert first.stats == second.stats

    def test_interval_scale_changes_hello_cadence(self):
        slow = FaultSchedule(
            events=(HelloIntervalScale(node=0, start=0.0, end=20.0, factor=2.0),)
        )
        spec = tiny_spec(mean_speed=0.0)
        scaled = build_world(spec, seed=5, faults=slow)
        plain = build_world(spec, seed=5)
        scaled.run_until(6.0)
        plain.run_until(6.0)
        assert (
            scaled.channel.stats.hello_messages < plain.channel.stats.hello_messages
        )

    def test_clock_skew_shifts_offset(self):
        sched = FaultSchedule(events=(ClockSkew(node=4, offset=0.25),))
        spec = tiny_spec()
        skewed = build_world(spec, seed=6, faults=sched)
        plain = build_world(spec, seed=6)
        delta = skewed.clocks.offsets[4] - plain.clocks.offsets[4]
        assert delta == pytest.approx(0.25)
