"""Tests for repro.sim.clock, repro.sim.radio, repro.sim.config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.clock import ClockSet
from repro.sim.config import ScenarioConfig
from repro.sim.radio import ChannelStats, IdealChannel
from repro.util.errors import ConfigurationError


class TestClockSet:
    def test_zero_skew_is_identity(self, rng):
        clocks = ClockSet(5, 0.0, rng)
        assert clocks.local_time(2, 3.5) == 3.5
        assert clocks.physical_time(2, 3.5) == 3.5

    def test_offsets_bounded(self, rng):
        clocks = ClockSet(200, 0.05, rng)
        assert np.all(np.abs(clocks.offsets) <= 0.05)

    def test_local_physical_roundtrip(self, rng):
        clocks = ClockSet(10, 0.1, rng)
        for node in range(10):
            local = clocks.local_time(node, 7.0)
            assert clocks.physical_time(node, local) == pytest.approx(7.0)

    def test_epoch_progression(self, rng):
        clocks = ClockSet(3, 0.0, rng)
        assert clocks.epoch(0, 0.5, 1.0) == 0
        assert clocks.epoch(0, 1.5, 1.0) == 1
        assert clocks.epoch(0, 10.0, 1.0) == 10

    def test_epoch_start_inverts_epoch(self, rng):
        clocks = ClockSet(4, 0.02, rng)
        for node in range(4):
            t = clocks.epoch_start(node, 5, 1.0)
            assert clocks.epoch(node, t + 1e-9, 1.0) == 5

    def test_skew_shifts_epoch_boundaries(self, rng):
        clocks = ClockSet(50, 0.05, rng)
        starts = [clocks.epoch_start(i, 3, 1.0) for i in range(50)]
        assert max(starts) - min(starts) <= 0.1
        assert max(starts) != min(starts)

    def test_negative_skew_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            ClockSet(3, -0.1, rng)


class TestIdealChannel:
    def test_receivers_within_range(self):
        ch = IdealChannel()
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [11.0, 0.0]])
        assert list(ch.receivers(0, pts, 10.0)) == [1]

    def test_sender_excluded(self):
        ch = IdealChannel()
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert 0 not in ch.receivers(0, pts, 10.0)

    def test_boundary_inclusive(self):
        ch = IdealChannel()
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert list(ch.receivers(0, pts, 10.0)) == [1]

    def test_zero_range_reaches_nobody(self):
        ch = IdealChannel()
        pts = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert ch.receivers(0, pts, 0.0).size == 0

    def test_arrival_time_adds_delay(self):
        ch = IdealChannel(propagation_delay=0.002)
        assert ch.arrival_time(1.0) == pytest.approx(1.002)

    def test_stats_dict_roundtrip(self):
        stats = ChannelStats(hello_messages=3, deliveries=7)
        d = stats.as_dict()
        assert d["hello_messages"] == 3 and d["deliveries"] == 7

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            IdealChannel(propagation_delay=-0.1)

    def test_loss_without_rng_points_at_fault_schedule(self):
        # The error must teach the deterministic alternative: a
        # FaultSchedule with HelloLossBurst events wired via NetworkWorld.
        with pytest.raises(ValueError) as excinfo:
            IdealChannel(hello_loss_rate=0.2)
        message = str(excinfo.value)
        assert "requires an rng" in message
        assert "repro.faults.FaultSchedule" in message
        assert "HelloLossBurst" in message
        assert "NetworkWorld(faults=...)" in message

    def test_loss_rate_validated_before_rng_check(self):
        with pytest.raises(ConfigurationError, match="hello_loss_rate"):
            IdealChannel(hello_loss_rate=1.5)

    def test_loss_rng_kwarg_deprecated_but_equivalent(self):
        gen = np.random.default_rng(0)
        with pytest.warns(FutureWarning, match="use rng="):
            legacy = IdealChannel(hello_loss_rate=0.2, loss_rng=gen)
        assert legacy.rng is gen

    def test_loss_rng_property_deprecated(self):
        gen = np.random.default_rng(0)
        ch = IdealChannel(hello_loss_rate=0.2, rng=gen)
        with pytest.warns(FutureWarning, match="loss_rng is deprecated"):
            assert ch.loss_rng is gen

    def test_rng_and_loss_rng_together_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            IdealChannel(
                rng=np.random.default_rng(0), loss_rng=np.random.default_rng(1)
            )


class TestScenarioConfig:
    def test_paper_defaults(self):
        cfg = ScenarioConfig()
        assert cfg.n_nodes == 100
        assert cfg.normal_range == 250.0
        assert cfg.area.width == 900.0
        assert cfg.hello_interval == 1.0
        assert cfg.hello_jitter == 0.25

    def test_max_hello_interval(self):
        assert ScenarioConfig().max_hello_interval == 1.25

    def test_n_samples(self):
        cfg = ScenarioConfig(duration=12.0, warmup=2.0, sample_rate=10.0)
        assert cfg.n_samples == 100

    def test_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_nodes=1)

    def test_rejects_jitter_ge_interval(self):
        with pytest.raises(ValueError):
            ScenarioConfig(hello_interval=1.0, hello_jitter=1.0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(warmup=-1.0)

    def test_frozen(self):
        cfg = ScenarioConfig()
        with pytest.raises(AttributeError):
            cfg.n_nodes = 5  # type: ignore[misc]
