"""Tests for repro.analysis.lifetime_study."""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiment import ExperimentSpec
from repro.analysis.lifetime_study import run_lifetime_study
from repro.metrics.energy import EnergyModel
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError

CFG = ScenarioConfig(
    n_nodes=15,
    area=Area(349.0, 349.0),
    normal_range=250.0,
    duration=8.0,
    warmup=2.0,
    sample_rate=1.0,
)


class TestLifetimeStudy:
    def test_generous_budget_nobody_dies(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=CFG)
        result = run_lifetime_study(spec, budget=1e9, seed=2)
        assert result.alive_fraction_end == 1.0
        assert math.isinf(result.first_death)

    def test_tiny_budget_everyone_dies(self):
        spec = ExperimentSpec(protocol="none", mean_speed=5.0, config=CFG)
        result = run_lifetime_study(spec, budget=1.0, seed=2)
        assert result.alive_fraction_end == 0.0
        assert result.first_death <= CFG.duration

    def test_controlled_cheaper_than_uncontrolled(self):
        managed = run_lifetime_study(
            ExperimentSpec(protocol="mst", mean_speed=5.0, config=CFG),
            budget=1e9, seed=2,
        )
        unmanaged = run_lifetime_study(
            ExperimentSpec(protocol="none", mean_speed=5.0, config=CFG),
            budget=1e9, seed=2,
        )
        assert (
            managed.mean_data_energy_per_step
            < unmanaged.mean_data_energy_per_step
        )

    def test_alpha4_magnifies_the_gap(self):
        gaps = {}
        for alpha in (2.0, 4.0):
            model = EnergyModel(alpha=alpha)
            managed = run_lifetime_study(
                ExperimentSpec(protocol="mst", mean_speed=5.0, config=CFG),
                budget=1e30, seed=2, energy_model=model,
            )
            unmanaged = run_lifetime_study(
                ExperimentSpec(protocol="none", mean_speed=5.0, config=CFG),
                budget=1e30, seed=2, energy_model=model,
            )
            gaps[alpha] = (
                unmanaged.mean_data_energy_per_step
                / max(managed.mean_data_energy_per_step, 1e-12)
            )
        assert gaps[4.0] > gaps[2.0]

    def test_row_structure(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=CFG)
        result = run_lifetime_study(spec, budget=1e8, seed=1)
        assert {"configuration", "first_death_s", "alive_at_end"} <= set(result.row())

    def test_budget_validated(self):
        spec = ExperimentSpec(protocol="rng", config=CFG)
        with pytest.raises(ConfigurationError):
            run_lifetime_study(spec, budget=0.0)

    def test_reproducible(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=CFG)
        a = run_lifetime_study(spec, budget=1e7, seed=4)
        b = run_lifetime_study(spec, budget=1e7, seed=4)
        assert a.first_death == b.first_death
        assert a.mean_data_energy_per_step == b.mean_data_energy_per_step
