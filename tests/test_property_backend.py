"""Property-based equivalence of the dense and grid graph backends.

The :class:`~repro.geometry.grid.GraphBackend` contract is that the grid
index is a pure accelerator: every query — unit-disk adjacency, radius
lookups, the channel's receiver discovery — must be *bit-identical* to
the dense distance-matrix path.  Hypothesis searches point sets drawn
from a quarter-metre lattice (exactly representable coordinates, so the
``d <= r`` and ``d^2 <= r^2`` forms agree exactly) including the
boundary-inclusive case where nodes sit exactly at the query radius.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.grid import GraphBackend, GridIndex
from repro.geometry.points import distances_from
from repro.sim.radio import IdealChannel

# Quarter-metre lattice coordinates: squared distances are exact binary64
# values, so the comparison convention (not floating-point luck) is what
# the properties exercise.
_COORD = st.integers(min_value=0, max_value=4000).map(lambda k: k * 0.25)
_POINTS = st.lists(
    st.tuples(_COORD, _COORD), min_size=2, max_size=60, unique=True
).map(lambda rows: np.array(rows, dtype=np.float64))
_RADIUS = st.integers(min_value=1, max_value=1600).map(lambda k: k * 0.25)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(points=_POINTS, radius=_RADIUS)
def test_unit_disk_grid_matches_dense(points, radius):
    dense = GraphBackend(points, mode="dense").unit_disk(radius)
    grid = GraphBackend(points, mode="grid").unit_disk(radius)
    assert np.array_equal(grid, dense)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(points=_POINTS, radius=_RADIUS, data=st.data())
def test_neighbors_within_grid_matches_dense(points, radius, data):
    query = points[data.draw(st.integers(0, len(points) - 1), label="query")]
    dense = GraphBackend(points, mode="dense").neighbors_within(query, radius)
    grid = GraphBackend(points, mode="grid").neighbors_within(query, radius)
    assert np.array_equal(grid, dense)
    assert np.array_equal(np.sort(grid), grid), "indices must be ascending"


@settings(max_examples=60, deadline=None, derandomize=True)
@given(points=_POINTS, data=st.data())
def test_boundary_radius_is_inclusive_on_both_backends(points, data):
    # Query with a radius equal to an *exact measured* inter-point
    # distance: the node on the boundary must be included by both
    # representations (d <= r, the unit-disk convention).
    i = data.draw(st.integers(0, len(points) - 1), label="center")
    j = data.draw(st.integers(0, len(points) - 1), label="boundary")
    radius = float(distances_from(points[i], points)[j])
    if radius <= 0.0:
        return  # i == j or coincident draw: no boundary to test
    dense = GraphBackend(points, mode="dense").neighbors_within(points[i], radius)
    grid = GraphBackend(points, mode="grid").neighbors_within(points[i], radius)
    assert j in dense
    assert np.array_equal(grid, dense)
    assert np.array_equal(
        GridIndex(points, cell_size=radius).neighbors_within(points[i], radius),
        dense,
    )


@settings(max_examples=40, deadline=None, derandomize=True)
@given(points=_POINTS, radius=_RADIUS, data=st.data())
def test_channel_receiver_lookup_matches_across_backends(points, radius, data):
    # The radio's receiver discovery must not depend on which backend the
    # world handed it (or on getting one at all).
    channel = IdealChannel()
    sender = data.draw(st.integers(0, len(points) - 1), label="sender")
    bare = channel.receivers(sender, points, radius)
    dense = channel.receivers(
        sender, points, radius, backend=GraphBackend(points, mode="dense")
    )
    grid = channel.receivers(
        sender, points, radius, backend=GraphBackend(points, mode="grid")
    )
    assert np.array_equal(bare, dense)
    assert np.array_equal(bare, grid)
    assert sender not in bare
