"""Deep behavioral tests of the Hello protocol under each mechanism.

These pin down the *semantics* the paper's correctness arguments rely on:
what information a node actually has when it decides, how stale it can be,
and how the mechanisms change that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import (
    BaselineConsistency,
    ProactiveConsistency,
    ViewSynchronization,
    WeakConsistency,
)
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.mobility import Area, RandomWaypoint, StaticPlacement
from repro.protocols import RngProtocol
from repro.sim.config import ScenarioConfig
from repro.sim.flood import flood
from repro.sim.world import NetworkWorld
from repro.util.randomness import SeedSequenceFactory


def build(mechanism=None, speed=10.0, seed=3, n=15, history_depth=3, **cfg_extra):
    cfg = ScenarioConfig(
        n_nodes=n,
        area=Area(350.0, 350.0),
        normal_range=200.0,
        duration=10.0,
        warmup=2.0,
        sample_rate=1.0,
        history_depth=history_depth,
        **cfg_extra,
    )
    seeds = SeedSequenceFactory(seed)
    mobility = (
        StaticPlacement(cfg.area, n, cfg.duration, rng=seeds.rng("m"))
        if speed == 0
        else RandomWaypoint(cfg.area, n, cfg.duration, speed, rng=seeds.rng("m"))
    )
    manager = MobilitySensitiveTopologyControl(
        RngProtocol(),
        mechanism=mechanism or BaselineConsistency(),
        buffer_policy=BufferZonePolicy(width=10.0, cap=cfg.normal_range),
    )
    return NetworkWorld(cfg, mobility, manager, seed=seed)


class TestInformationStaleness:
    def test_received_hello_positions_are_send_time_positions(self):
        world = build(speed=40.0)
        world.run_until(5.0)
        for node in world.nodes:
            for nbr in node.table.known_neighbors(world.engine.now):
                for hello in node.table.history_of(nbr):
                    true_then = world.mobility.position(nbr, hello.sent_at)
                    assert np.allclose(hello.position, true_then, atol=1e-9)

    def test_hello_age_bounded_by_expiry(self):
        world = build(speed=5.0)
        world.run_until(8.0)
        now = world.engine.now
        for node in world.nodes:
            for nbr in node.table.known_neighbors(now):
                latest = node.table.history_of(nbr)[-1]
                assert now - latest.sent_at <= world.config.hello_expiry + 1e-9

    def test_history_depth_respected(self):
        world = build(history_depth=2)
        world.run_until(9.0)
        for node in world.nodes:
            for nbr in node.table.known_neighbors():
                assert len(node.table.history_of(nbr)) <= 2

    def test_versions_strictly_increase_per_sender(self):
        world = build()
        world.run_until(8.0)
        for node in world.nodes:
            for nbr in node.table.known_neighbors():
                versions = [h.version for h in node.table.history_of(nbr)]
                assert versions == sorted(versions)
                assert len(set(versions)) == len(versions)


class TestDecisionTiming:
    def test_baseline_decides_at_own_hello_times_only(self):
        world = build()
        world.run_until(6.0)
        for node in world.nodes:
            if node.decision is None:
                continue
            # The standing decision was made when the node last sent a
            # Hello — never in between (no packet recomputation).
            assert node.packet_decisions == 0

    def test_view_sync_decides_at_flood_times(self):
        world = build(mechanism=ViewSynchronization())
        world.run_until(6.0)
        flood(world, source=0)
        t = world.engine.now
        for node in world.nodes:
            assert node.decision is not None and node.decision.decided_at == t

    def test_decisions_never_use_future_information(self):
        world = build(speed=20.0)
        world.run_until(7.0)
        for node in world.nodes:
            if node.decision is None:
                continue
            for nbr in node.table.known_neighbors():
                for hello in node.table.history_of(nbr):
                    assert hello.sent_at <= world.engine.now + 1e-9


class TestProactiveSemantics:
    def test_versioned_views_hold_single_version(self):
        world = build(mechanism=ProactiveConsistency(), speed=5.0)
        world.run_until(6.0)
        node = world.nodes[0]
        versions = sorted(node.table.available_versions())
        v = versions[-2] if len(versions) > 1 else versions[-1]
        view = node.table.versioned_view(world.engine.now, v)
        for nid in view.members:
            assert view.hello_of(nid).version == v

    def test_complete_version_contains_all_current_neighbors(self):
        world = build(mechanism=ProactiveConsistency(), speed=0.0)
        world.run_until(6.0)
        node = world.nodes[0]
        versions = sorted(node.table.available_versions())
        complete = versions[-2]
        view = node.table.versioned_view(world.engine.now, complete)
        # On a static network the version-complete view matches the live set.
        live = set(node.table.known_neighbors(world.engine.now))
        assert set(view.neighbor_hellos) == live


class TestWeakSemantics:
    def test_weak_decisions_monotone_in_history(self):
        """More retained versions can only make selection more conservative
        on the same world trajectory."""
        conn = {}
        degree = {}
        for k in (1, 3):
            world = build(mechanism=WeakConsistency(), speed=20.0, history_depth=k)
            world.run_until(8.0)
            snap = world.snapshot()
            degree[k] = float(snap.logical_degrees().mean())
            conn[k] = flood(world, source=0).delivery_ratio
        assert degree[3] >= degree[1] - 1e-9

    def test_weak_range_covers_every_position_known_at_decision_time(self):
        world = build(mechanism=WeakConsistency(), speed=20.0)
        world.run_until(8.0)
        prop = world.config.propagation_delay
        for node in world.nodes:
            decision = node.decision
            if decision is None:
                continue
            own = node.table.multi_view(world.engine.now)
            known = lambda h: h.sent_at + prop <= decision.decided_at + 1e-12
            for nbr in decision.logical_neighbors:
                if nbr not in own:
                    continue
                for own_h in filter(known, own.hellos_of(node.node_id)):
                    for nbr_h in filter(known, own.hellos_of(nbr)):
                        assert (
                            own_h.distance_to(nbr_h)
                            <= decision.actual_range + 1e-6
                        )


class TestChannelAccounting:
    def test_every_delivery_is_counted(self):
        world = build(speed=0.0)
        world.run_until(6.0)
        recorded = sum(node.table.hellos_received for node in world.nodes)
        assert world.channel.stats.deliveries == recorded

    def test_loss_reduces_deliveries(self):
        lossless = build(speed=0.0, seed=9)
        lossless.run_until(8.0)
        lossy = build(speed=0.0, seed=9, hello_loss_rate=0.4)
        lossy.run_until(8.0)
        assert (
            lossy.channel.stats.deliveries < lossless.channel.stats.deliveries
        )
        assert lossy.channel.stats.hello_losses > 0
