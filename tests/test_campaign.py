"""Tests for repro.analysis.campaign: the full-report generator."""

from __future__ import annotations

import pytest

from repro.analysis.campaign import CampaignResult, render_experiments_md, run_campaign
from repro.analysis.scales import Scale

# A micro-scale so the campaign completes in seconds inside the test.
MICRO = Scale(
    name="micro",
    n_nodes=20,
    area_side=403.0,  # paper density
    duration=5.0,
    sample_rate=1.0,
    warmup=2.0,
    repetitions=1,
    speeds=(1.0, 40.0),
    buffer_widths=(0.0, 100.0),
)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(MICRO, base_seed=9100)


class TestRunCampaign:
    def test_produces_all_artifacts(self, campaign):
        assert isinstance(campaign, CampaignResult)
        assert campaign.table1.results
        for fig in (campaign.fig6, campaign.fig7, campaign.fig8a,
                    campaign.fig8b, campaign.fig9, campaign.fig10):
            assert fig.series

    def test_wall_clock_recorded(self, campaign):
        assert campaign.wall_clock_s > 0

    def test_figure_ids(self, campaign):
        assert campaign.fig6.figure_id == "fig6"
        assert campaign.fig8b.figure_id == "fig8b"


class TestRenderExperimentsMd:
    def test_contains_every_section(self, campaign):
        text = render_experiments_md(campaign)
        for heading in (
            "# EXPERIMENTS — paper vs measured",
            "## Table 1",
            "## Fig. 6",
            "## Fig. 7",
            "## Fig. 8",
            "## Fig. 9",
            "## Fig. 10",
            "## Beyond the paper",
        ):
            assert heading in text

    def test_markdown_tables_well_formed(self, campaign):
        text = render_experiments_md(campaign)
        for line in text.splitlines():
            if line.startswith("|") and not line.startswith("|-"):
                assert line.endswith("|")

    def test_verdict_lines_present(self, campaign):
        text = render_experiments_md(campaign)
        assert "✅" in text or "⚠️" in text

    def test_scale_described(self, campaign):
        text = render_experiments_md(campaign)
        assert "micro" in text
        assert "20 nodes" in text

    def test_notes_appended(self, campaign):
        campaign.notes.append("custom-note-xyz")
        try:
            assert "custom-note-xyz" in render_experiments_md(campaign)
        finally:
            campaign.notes.clear()
