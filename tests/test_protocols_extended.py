"""Tests for the enclosure protocol, composite protocols, and the
fast-path (batched/rank) removal predicates' exact equivalence."""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import make_multi_view, make_view
from repro.core.costs import DistanceCost, EnergyCost
from repro.core.framework import (
    LocalCostGraph,
    mst_removable,
    mst_removable_batch,
    rng_removable,
    spt_removable,
    spt_removable_batch,
)
from repro.geometry.graphs import is_connected, unit_disk_graph
from repro.protocols import (
    CompositeProtocol,
    EnclosureProtocol,
    GabrielProtocol,
    MstProtocol,
    RngProtocol,
    Spt2Protocol,
    Spt4Protocol,
    YaoProtocol,
)
from repro.util.errors import ProtocolError

NORMAL = 120.0


def consistent_views(points, normal_range=NORMAL):
    views = []
    for owner in range(len(points)):
        members = {owner: tuple(points[owner])}
        for other in range(len(points)):
            d = math.hypot(*(points[other] - points[owner]))
            if other != owner and d <= normal_range:
                members[other] = tuple(points[other])
        views.append(make_view(owner, members, normal_range=normal_range))
    return views


def union(protocol, views, n):
    adj = np.zeros((n, n), dtype=bool)
    for view in views:
        for v in protocol.select(view).logical_neighbors:
            adj[view.owner, v] = True
    return adj


@pytest.fixture
def cloud(rng):
    return rng.random((18, 2)) * 180


class TestEnclosureProtocol:
    def test_supergraph_of_spt4(self, cloud):
        views = consistent_views(cloud)
        enc = union(EnclosureProtocol(alpha=4.0), views, len(cloud))
        spt = union(Spt4Protocol(), views, len(cloud))
        assert not (spt & ~enc).any()

    def test_preserves_connectivity(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("disconnected")
        views = consistent_views(cloud)
        assert is_connected(union(EnclosureProtocol(), views, len(cloud)))

    def test_receiver_cost_keeps_more_links(self, cloud):
        views = consistent_views(cloud)
        cheap_relay = union(EnclosureProtocol(alpha=2.0), views, len(cloud)).sum()
        costly_relay = union(
            EnclosureProtocol(alpha=2.0, receiver_cost=500.0), views, len(cloud)
        ).sum()
        assert costly_relay >= cheap_relay

    def test_conservative_mode_supported(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(10, 0), (4, 0)], 2: [(5, 0)]})
        result = EnclosureProtocol(alpha=2.0).select_conservative(view)
        assert result.owner == 0

    def test_three_collinear_removes_long_link(self):
        # Relay through the midpoint halves the energy (alpha = 2).
        view = make_view(0, {0: (0, 0), 1: (10, 0), 2: (5, 0)})
        result = EnclosureProtocol(alpha=2.0).select(view)
        assert result.logical_neighbors == frozenset({2})


class TestCompositeProtocol:
    def test_intersection_of_selections(self, cloud):
        views = consistent_views(cloud)
        combo = CompositeProtocol([RngProtocol(), Spt2Protocol()])
        for view in views:
            merged = combo.select(view).logical_neighbors
            a = RngProtocol().select(view).logical_neighbors
            b = Spt2Protocol().select(view).logical_neighbors
            assert merged == (a & b)

    def test_preserves_connectivity(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("disconnected")
        views = consistent_views(cloud)
        combo = CompositeProtocol([RngProtocol(), Spt2Protocol(), GabrielProtocol()])
        assert is_connected(union(combo, views, len(cloud)))

    def test_range_covers_farthest_survivor(self, cloud):
        combo = CompositeProtocol([RngProtocol(), Spt4Protocol()])
        for view in consistent_views(cloud)[:5]:
            result = combo.select(view)
            for v in result.logical_neighbors:
                assert (
                    view.own_hello.distance_to(view.hello_of(v))
                    <= result.actual_range + 1e-9
                )

    def test_name_concatenates(self):
        assert CompositeProtocol([MstProtocol(), RngProtocol()]).name == "mst&rng"

    def test_conservative_requires_all_constituents(self):
        combo = CompositeProtocol([RngProtocol(), YaoProtocol()])
        assert not combo.supports_conservative
        view = make_multi_view(0, {0: [(0, 0)], 1: [(5, 0)]})
        with pytest.raises(ProtocolError):
            combo.select_conservative(view)

    def test_conservative_with_condition_protocols(self):
        combo = CompositeProtocol([RngProtocol(), MstProtocol()])
        view = make_multi_view(0, {0: [(0, 0)], 1: [(10, 0), (4, 0)], 2: [(5, 1)]})
        result = combo.select_conservative(view)
        assert result.owner == 0

    def test_empty_constituents_rejected(self):
        with pytest.raises(ProtocolError):
            CompositeProtocol([])


class TestFastPathEquivalence:
    """The rank/batched predicates must match the reference tuple-key
    semantics exactly, including ID tie-breaks on degenerate inputs."""

    def _graphs(self, rng, n_trials=60):
        for trial in range(n_trials):
            n = int(rng.integers(2, 12))
            if trial % 3 == 0:
                # grid positions: many exact cost ties
                pts = {
                    i: (float(i % 3) * 10.0, float(i // 3) * 10.0) for i in range(n)
                }
            else:
                pts = {i: tuple(rng.random(2) * 70) for i in range(n)}
            for model in (DistanceCost(), EnergyCost(alpha=2)):
                yield LocalCostGraph.from_local_view(
                    make_view(0, pts, normal_range=60.0), model
                )

    def test_spt_batch_matches_per_edge(self, rng):
        for graph in self._graphs(rng):
            batch = spt_removable_batch(graph)
            for j, verdict in batch.items():
                assert verdict == spt_removable(graph, 0, j)

    def test_mst_batch_matches_per_edge(self, rng):
        for graph in self._graphs(rng):
            batch = mst_removable_batch(graph)
            for j, verdict in batch.items():
                assert verdict == mst_removable(graph, 0, j)

    def test_mst_batch_interval_fallback_matches(self, rng):
        for _ in range(30):
            n = int(rng.integers(2, 8))
            hist = {
                i: [tuple(rng.random(2) * 60), tuple(rng.random(2) * 60)]
                for i in range(n)
            }
            view = make_multi_view(0, hist, normal_range=70.0)
            graph = LocalCostGraph.from_multi_version_view(view, DistanceCost())
            batch = mst_removable_batch(graph)
            for j, verdict in batch.items():
                assert verdict == mst_removable(graph, 0, j)

    def test_rank_order_matches_key_order(self, rng):
        for graph in self._graphs(rng, n_trials=20):
            m = graph.size
            for i in range(m):
                for j in range(i + 1, m):
                    for a in range(m):
                        for b in range(a + 1, m):
                            assert (
                                (graph.rank_high[i, j] < graph.rank_low[a, b])
                                == (graph.key_high(i, j) < graph.key_low(a, b))
                            )

    def test_rng_tie_break_on_grid(self):
        # Equidistant witnesses: removal must follow the ID tie-break
        # deterministically (no crash, stable output).
        pts = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (5.0, 5.0), 3: (5.0, -5.0)}
        view = make_view(0, pts, normal_range=50.0)
        a = RngProtocol().select(view).logical_neighbors
        b = RngProtocol().select(view).logical_neighbors
        assert a == b
