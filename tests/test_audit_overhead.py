"""Tests for the world auditor and the overhead accounting."""

from __future__ import annotations

import pytest

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.core.audit import Violation, audit_world
from repro.core.manager import NodeDecision
from repro.metrics.overhead import measure_overhead
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig


def world_for(mechanism="baseline", speed=10.0, seed=3, buffer=10.0):
    cfg = ScenarioConfig(
        n_nodes=15, area=Area(349.0, 349.0), normal_range=250.0,
        duration=10.0, warmup=2.0, sample_rate=1.0,
    )
    spec = ExperimentSpec(
        protocol="rng", mechanism=mechanism, buffer_width=buffer,
        mean_speed=speed, config=cfg,
    )
    return build_world(spec, seed=seed)


class TestAuditWorld:
    @pytest.mark.parametrize(
        "mechanism", ["baseline", "view-sync", "proactive", "reactive", "weak"]
    )
    def test_clean_runs_have_no_violations(self, mechanism):
        world = world_for(mechanism=mechanism)
        world.run_until(8.0)
        violations = audit_world(world)
        assert violations == [], [str(v) for v in violations]

    def test_detects_tampered_buffer_arithmetic(self):
        world = world_for()
        world.run_until(5.0)
        node = world.nodes[0]
        node.decision = NodeDecision(
            owner=0,
            logical_neighbors=node.decision.logical_neighbors,
            actual_range=node.decision.actual_range,
            extended_range=node.decision.actual_range + 999.0,
            decided_at=node.decision.decided_at,
        )
        kinds = {v.invariant for v in audit_world(world)}
        assert "buffer-arithmetic" in kinds

    def test_detects_ghost_neighbor(self):
        world = world_for()
        world.run_until(5.0)
        node = world.nodes[0]
        node.decision = NodeDecision(
            owner=0,
            logical_neighbors=frozenset({9999}) | node.decision.logical_neighbors,
            actual_range=node.decision.actual_range,
            extended_range=node.decision.extended_range,
            decided_at=node.decision.decided_at,
        )
        kinds = {v.invariant for v in audit_world(world)}
        assert "ghost-neighbor" in kinds

    def test_detects_range_without_neighbors(self):
        world = world_for()
        world.run_until(5.0)
        node = world.nodes[0]
        node.decision = NodeDecision(
            owner=0, logical_neighbors=frozenset(),
            actual_range=50.0, extended_range=60.0,
            decided_at=node.decision.decided_at,
        )
        kinds = {v.invariant for v in audit_world(world)}
        assert "range-without-neighbors" in kinds

    def test_violation_str(self):
        v = Violation(node=3, invariant="x", detail="y")
        assert "node 3" in str(v)


class TestMeasureOverhead:
    def test_hello_rate_matches_interval(self):
        world = world_for()
        world.run_until(10.0)
        report = measure_overhead(world)
        # interval ~ 1 s/node => ~1 Hello per node-second
        assert 0.7 <= report.hello_rate <= 1.4

    def test_reactive_pays_sync_cost(self):
        quiet = world_for(mechanism="baseline")
        quiet.run_until(8.0)
        noisy = world_for(mechanism="reactive")
        noisy.run_until(8.0)
        assert measure_overhead(quiet).sync_rate == 0.0
        assert measure_overhead(noisy).sync_rate > 0.5

    def test_view_sync_pays_packet_decisions(self):
        from repro.sim.flood import flood

        world = world_for(mechanism="view-sync")
        world.run_until(8.0)
        flood(world, source=0)
        report = measure_overhead(world)
        assert report.packet_decision_rate > 0.0

    def test_stored_hellos_scale_with_history_depth(self):
        cfg_kwargs = dict(
            n_nodes=15, area=Area(349.0, 349.0), normal_range=250.0,
            duration=10.0, warmup=2.0, sample_rate=1.0,
        )
        reports = {}
        for k in (1, 3):
            cfg = ScenarioConfig(history_depth=k, **cfg_kwargs)
            spec = ExperimentSpec(protocol="rng", mean_speed=5.0, config=cfg)
            world = build_world(spec, seed=4)
            world.run_until(9.0)
            reports[k] = measure_overhead(world).stored_hellos_per_node
        assert reports[3] > reports[1]

    def test_row_structure(self):
        world = world_for()
        world.run_until(5.0)
        row = measure_overhead(world).row()
        assert {"hello_per_node_s", "sync_per_node_s", "stored_hellos"} <= set(row)
