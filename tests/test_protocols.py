"""Tests for repro.protocols: every protocol implementation + the registry.

The key validation invariant: on a static network with consistent views,
each localized protocol's union of selections equals the corresponding
*global* geometric construction restricted to the unit-disk graph.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import make_multi_view, make_view
from repro.geometry.graphs import (
    gabriel_graph,
    is_connected,
    relative_neighborhood_graph,
    unit_disk_graph,
    yao_graph,
)
from repro.protocols import (
    CbtcProtocol,
    GabrielProtocol,
    KNeighProtocol,
    MstProtocol,
    NoTopologyControl,
    RngProtocol,
    Spt2Protocol,
    Spt4Protocol,
    SptProtocol,
    YaoProtocol,
    available_protocols,
    make_protocol,
)
from repro.util.errors import ConfigurationError, ProtocolError


def consistent_views(points: np.ndarray, normal_range: float):
    """One LocalView per node, all built from the same global positions."""
    n = len(points)
    views = []
    for owner in range(n):
        members = {owner: tuple(points[owner])}
        for other in range(n):
            if other != owner and math.hypot(*(points[other] - points[owner])) <= normal_range:
                members[other] = tuple(points[other])
        views.append(make_view(owner, members, normal_range=normal_range))
    return views


def union_selection(protocol, views, n):
    """Union of all nodes' logical links as a boolean adjacency matrix."""
    adj = np.zeros((n, n), dtype=bool)
    for view in views:
        result = protocol.select(view)
        for v in result.logical_neighbors:
            adj[view.owner, v] = True
    return adj


@pytest.fixture
def cloud(rng):
    return rng.random((20, 2)) * 200


NORMAL = 120.0


class TestRngProtocol:
    def test_matches_global_rng(self, cloud):
        views = consistent_views(cloud, NORMAL)
        ours = union_selection(RngProtocol(), views, len(cloud))
        reference = relative_neighborhood_graph(cloud, radius=NORMAL)
        assert np.array_equal(ours, reference)

    def test_symmetric_on_consistent_views(self, cloud):
        views = consistent_views(cloud, NORMAL)
        adj = union_selection(RngProtocol(), views, len(cloud))
        assert np.array_equal(adj, adj.T)

    def test_preserves_connectivity(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("random cloud disconnected at this range")
        views = consistent_views(cloud, NORMAL)
        adj = union_selection(RngProtocol(), views, len(cloud))
        assert is_connected(adj)


class TestGabrielProtocol:
    def test_matches_global_gabriel(self, cloud):
        views = consistent_views(cloud, NORMAL)
        ours = union_selection(GabrielProtocol(), views, len(cloud))
        reference = gabriel_graph(cloud, radius=NORMAL)
        assert np.array_equal(ours, reference)

    def test_contains_rng_selection(self, cloud):
        views = consistent_views(cloud, NORMAL)
        gg = union_selection(GabrielProtocol(), views, len(cloud))
        rng_adj = union_selection(RngProtocol(), views, len(cloud))
        assert not (rng_adj & ~gg).any()


class TestMstProtocol:
    def test_preserves_connectivity(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("random cloud disconnected at this range")
        views = consistent_views(cloud, NORMAL)
        adj = union_selection(MstProtocol(), views, len(cloud))
        assert is_connected(adj)

    def test_sparsest_of_the_condition_protocols(self, cloud):
        views = consistent_views(cloud, NORMAL)
        mst_edges = union_selection(MstProtocol(), views, len(cloud)).sum()
        rng_edges = union_selection(RngProtocol(), views, len(cloud)).sum()
        assert mst_edges <= rng_edges

    def test_subset_of_rng(self, cloud):
        views = consistent_views(cloud, NORMAL)
        mst_adj = union_selection(MstProtocol(), views, len(cloud))
        rng_adj = union_selection(RngProtocol(), views, len(cloud))
        assert not (mst_adj & ~rng_adj).any()

    def test_lmst_degree_bound_six(self, cloud):
        # Li, Hou & Sha: LMST node degree is at most 6.
        views = consistent_views(cloud, NORMAL)
        adj = union_selection(MstProtocol(), views, len(cloud))
        sym = adj & adj.T
        assert sym.sum(axis=1).max() <= 6


class TestSptProtocol:
    def test_alpha4_prunes_at_least_alpha2(self, cloud):
        views = consistent_views(cloud, NORMAL)
        e2 = union_selection(Spt2Protocol(), views, len(cloud)).sum()
        e4 = union_selection(Spt4Protocol(), views, len(cloud)).sum()
        assert e4 <= e2

    def test_preserves_connectivity(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("random cloud disconnected at this range")
        for proto in (Spt2Protocol(), Spt4Protocol()):
            views = consistent_views(cloud, NORMAL)
            assert is_connected(union_selection(proto, views, len(cloud)))

    def test_contains_mst_selection(self, cloud):
        views = consistent_views(cloud, NORMAL)
        mst_adj = union_selection(MstProtocol(), views, len(cloud))
        spt_adj = union_selection(Spt2Protocol(), views, len(cloud))
        assert not (mst_adj & ~spt_adj).any()

    def test_repr_carries_alpha(self):
        assert "4" in repr(SptProtocol(alpha=4))


class TestYaoProtocol:
    def test_matches_global_yao_out_edges(self, cloud):
        # Per-node selections equal the directed Yao edges; the global
        # helper symmetrises, so compare unions.
        views = consistent_views(cloud, NORMAL)
        ours = union_selection(YaoProtocol(k=6), views, len(cloud))
        reference = yao_graph(cloud, k=6, radius=NORMAL)
        assert np.array_equal(ours | ours.T, reference)

    def test_at_most_k_selections(self, cloud):
        views = consistent_views(cloud, NORMAL)
        for view in views:
            result = YaoProtocol(k=6).select(view)
            assert len(result.logical_neighbors) <= 6

    def test_preserves_connectivity_with_k6(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("random cloud disconnected at this range")
        views = consistent_views(cloud, NORMAL)
        adj = union_selection(YaoProtocol(k=6), views, len(cloud))
        assert is_connected(adj | adj.T)

    def test_invalid_k(self):
        with pytest.raises(Exception):
            YaoProtocol(k=0)


class TestCbtcProtocol:
    def test_cone_coverage_or_exhaustion(self, cloud):
        proto = CbtcProtocol(alpha=2 * math.pi / 3, shrink_back=False)
        for view in consistent_views(cloud, NORMAL):
            result = proto.select(view)
            neighbors = view.neighbor_hellos
            if result.logical_neighbors != frozenset(neighbors):
                own = np.asarray(view.own_hello.position)
                angles = [
                    math.atan2(*(np.asarray(neighbors[nid].position) - own)[::-1])
                    for nid in result.logical_neighbors
                ]
                from repro.geometry.cones import covers_with_alpha

                assert covers_with_alpha(angles, 2 * math.pi / 3)

    def test_shrink_back_never_increases(self, cloud):
        plain = CbtcProtocol(shrink_back=False)
        shrunk = CbtcProtocol(shrink_back=True)
        for view in consistent_views(cloud, NORMAL):
            a = plain.select(view).logical_neighbors
            b = shrunk.select(view).logical_neighbors
            assert b <= a

    def test_preserves_connectivity_alpha_two_thirds_pi(self, cloud):
        if not is_connected(unit_disk_graph(cloud, NORMAL)):
            pytest.skip("random cloud disconnected at this range")
        proto = CbtcProtocol(alpha=2 * math.pi / 3)
        views = consistent_views(cloud, NORMAL)
        adj = union_selection(proto, views, len(cloud))
        assert is_connected(adj | adj.T)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            CbtcProtocol(alpha=0.0)
        with pytest.raises(ConfigurationError):
            CbtcProtocol(alpha=7.0)

    def test_no_conservative_mode(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(5, 0)]})
        with pytest.raises(ProtocolError):
            CbtcProtocol().select_conservative(view)


class TestKNeighProtocol:
    def test_keeps_k_nearest(self):
        view = make_view(
            0,
            {0: (0, 0), 1: (10, 0), 2: (20, 0), 3: (30, 0), 4: (40, 0)},
            normal_range=100.0,
        )
        result = KNeighProtocol(k=2).select(view)
        assert result.logical_neighbors == frozenset({1, 2})
        assert result.actual_range == 20.0

    def test_fewer_neighbors_than_k(self):
        view = make_view(0, {0: (0, 0), 1: (10, 0)}, normal_range=100.0)
        result = KNeighProtocol(k=9).select(view)
        assert result.logical_neighbors == frozenset({1})

    def test_ignores_out_of_range(self):
        view = make_view(0, {0: (0, 0), 1: (10, 0), 2: (500, 0)}, normal_range=100.0)
        assert 2 not in KNeighProtocol(k=5).select(view).logical_neighbors


class TestNoTopologyControl:
    def test_keeps_all_in_range_neighbors(self):
        view = make_view(0, {0: (0, 0), 1: (10, 0), 2: (90, 0)}, normal_range=100.0)
        result = NoTopologyControl().select(view)
        assert result.logical_neighbors == frozenset({1, 2})
        assert result.actual_range == 100.0

    def test_isolated_node_zero_range(self):
        view = make_view(0, {0: (0, 0)}, normal_range=100.0)
        result = NoTopologyControl().select(view)
        assert result.actual_range == 0.0

    def test_conservative_mode_supported(self):
        view = make_multi_view(0, {0: [(0, 0)], 1: [(5, 0)]})
        result = NoTopologyControl().select_conservative(view)
        assert result.logical_neighbors == frozenset({1})


class TestConservativeSelection:
    @pytest.mark.parametrize(
        "proto", [RngProtocol(), GabrielProtocol(), MstProtocol(), Spt2Protocol()]
    )
    def test_conservative_supersets_plain_on_oscillating_neighbor(self, proto):
        histories = {
            0: [(0.0, 0.0)],
            1: [(10.0, 0.0), (4.0, 0.0)],
            2: [(5.0, 1.0)],
        }
        view = make_multi_view(0, histories, normal_range=100.0)
        conservative = proto.select_conservative(view).logical_neighbors
        plain = proto.select(view.to_local_view()).logical_neighbors
        assert plain <= conservative

    @pytest.mark.parametrize(
        "proto", [RngProtocol(), GabrielProtocol(), MstProtocol(), Spt2Protocol()]
    )
    def test_conservative_equals_plain_on_single_version(self, proto, cloud):
        for owner in range(5):
            members = {owner: tuple(cloud[owner])}
            for other in range(len(cloud)):
                d = math.hypot(*(cloud[other] - cloud[owner]))
                if other != owner and d <= NORMAL:
                    members[other] = tuple(cloud[other])
            single = make_view(owner, members, normal_range=NORMAL)
            multi = make_multi_view(
                owner, {nid: [pos] for nid, pos in members.items()}, normal_range=NORMAL
            )
            assert (
                proto.select(single).logical_neighbors
                == proto.select_conservative(multi).logical_neighbors
            )


class TestRegistry:
    def test_all_expected_names(self):
        assert set(available_protocols()) >= {
            "rng",
            "gabriel",
            "mst",
            "spt2",
            "spt4",
            "yao",
            "cbtc",
            "kneigh",
            "none",
        }

    def test_make_protocol_with_kwargs(self):
        proto = make_protocol("yao", k=8)
        assert proto.k == 8

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            make_protocol("carrier-pigeon")

    @pytest.mark.parametrize("name", ["rng", "gabriel", "mst", "spt2", "spt4"])
    def test_condition_protocols_support_conservative(self, name):
        assert make_protocol(name).supports_conservative

    @pytest.mark.parametrize("name", ["yao", "cbtc", "kneigh"])
    def test_geometric_protocols_do_not(self, name):
        assert not make_protocol(name).supports_conservative
