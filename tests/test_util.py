"""Tests for repro.util: errors, validation, deterministic randomness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    ViewError,
)
from repro.util.randomness import SeedSequenceFactory, child_rng
from repro.util.validate import (
    check_in,
    check_int_range,
    check_non_negative,
    check_positive,
    check_probability,
    require,
)


class TestErrors:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (ConfigurationError, SimulationError, ScheduleError, ProtocolError, ViewError):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)

    def test_schedule_error_is_simulation_error(self):
        assert issubclass(ScheduleError, SimulationError)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false_with_message(self):
        with pytest.raises(ConfigurationError, match="broken invariant"):
            require(False, "broken invariant")


class TestCheckPositive:
    def test_accepts_positive_int_and_float(self):
        assert check_positive("x", 3) == 3.0
        assert check_positive("x", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("nan"))
        with pytest.raises(ConfigurationError):
            check_positive("x", float("inf"))

    def test_rejects_non_number(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", "5")  # type: ignore[arg-type]


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)

    @pytest.mark.parametrize(
        "value",
        [float("nan"), float("inf"), float("-inf"), None, "0.5", [0.5]],
        ids=["nan", "inf", "-inf", "none", "string", "list"],
    )
    def test_rejects_non_finite_and_non_numeric(self, value):
        # NaN must not sneak through interval comparisons, and type
        # confusion (strings, containers, None) must fail loudly at
        # configuration time rather than deep inside a loss draw.
        with pytest.raises(ConfigurationError, match="p"):
            check_probability("p", value)

    def test_error_names_the_parameter_and_value(self):
        with pytest.raises(ConfigurationError, match=r"hello_loss_rate.*1\.5"):
            check_probability("hello_loss_rate", 1.5)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("mode", "a", ["a", "b"]) == "a"

    def test_rejects_non_member_and_names_options(self):
        with pytest.raises(ConfigurationError, match="'a'"):
            check_in("mode", "z", ["a", "b"])


class TestCheckIntRange:
    def test_accepts_in_range(self):
        assert check_int_range("k", 3, 1, 5) == 3

    def test_rejects_below_low(self):
        with pytest.raises(ConfigurationError):
            check_int_range("k", 0, 1)

    def test_rejects_above_high(self):
        with pytest.raises(ConfigurationError):
            check_int_range("k", 9, 1, 5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_int_range("k", True, 0)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_int_range("k", 2.0, 1)  # type: ignore[arg-type]


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        a = SeedSequenceFactory(7).rng("placement").random(4)
        b = SeedSequenceFactory(7).rng("placement").random(4)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        f = SeedSequenceFactory(7)
        a = f.rng("a").random(4)
        b = f.rng("b").random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeedSequenceFactory(1).rng("x").random(4)
        b = SeedSequenceFactory(2).rng("x").random(4)
        assert not np.array_equal(a, b)

    def test_multipart_names(self):
        f = SeedSequenceFactory(7)
        a = f.rng("hello", 3).random()
        b = f.rng("hello", 4).random()
        assert a != b

    def test_creation_order_irrelevant(self):
        f1 = SeedSequenceFactory(9)
        _ = f1.rng("first")
        late = f1.rng("second").random(3)
        f2 = SeedSequenceFactory(9)
        early = f2.rng("second").random(3)
        assert np.array_equal(late, early)

    def test_seed_property(self):
        assert SeedSequenceFactory(42).seed == 42

    def test_root_seed_property_deprecated_but_working(self):
        factory = SeedSequenceFactory(42)
        with pytest.warns(FutureWarning, match="root_seed is deprecated"):
            assert factory.root_seed == 42

    def test_root_seed_kwarg_deprecated_but_equivalent(self):
        with pytest.warns(FutureWarning, match="use seed="):
            legacy = SeedSequenceFactory(root_seed=42)
        assert legacy.seed == 42
        assert (
            legacy.rng("placement").random()
            == SeedSequenceFactory(42).rng("placement").random()
        )

    def test_seed_and_root_seed_together_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            SeedSequenceFactory(1, root_seed=2)

    def test_seed_required(self):
        with pytest.raises(TypeError, match="seed"):
            SeedSequenceFactory()


class TestChildRng:
    def test_child_is_independent_generator(self, rng):
        child = child_rng(rng)
        assert child is not rng
        assert isinstance(child, np.random.Generator)
