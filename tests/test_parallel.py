"""Tests for process-parallel repetition execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiment import (
    ExperimentSpec,
    default_workers,
    run_repetitions,
)
from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig

TINY = ScenarioConfig(
    n_nodes=10,
    area=Area(285.0, 285.0),
    normal_range=250.0,
    duration=5.0,
    warmup=2.0,
    sample_rate=1.0,
)


class TestParallelRepetitions:
    def test_parallel_matches_sequential_exactly(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)
        seq = run_repetitions(spec, repetitions=3, base_seed=50, workers=1)
        par = run_repetitions(spec, repetitions=3, base_seed=50, workers=3)
        assert seq.connectivity.mean == par.connectivity.mean
        assert seq.transmission_range.mean == par.transmission_range.mean
        assert seq.logical_degree.mean == par.logical_degree.mean

    def test_single_repetition_stays_in_process(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)
        agg = run_repetitions(spec, repetitions=1, base_seed=50, workers=8)
        assert agg.n_repetitions == 1

    def test_workers_capped_at_repetitions(self):
        spec = ExperimentSpec(protocol="rng", mean_speed=10.0, config=TINY)
        agg = run_repetitions(spec, repetitions=2, base_seed=50, workers=16)
        assert agg.n_repetitions == 2


class TestDefaultWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS='many'"):
            assert default_workers() == 1

    def test_valid_env_does_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert default_workers() == 2
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_nonpositive_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_spec_is_picklable(self):
        import pickle

        spec = ExperimentSpec(
            protocol="yao", protocol_kwargs={"k": 7},
            mechanism="weak", mechanism_kwargs={"history_depth": 2},
            config=TINY,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.protocol_kwargs == {"k": 7}


class TestWorkerFailureNaming:
    def test_parallel_failure_names_spec_and_seed(self):
        from repro.util.errors import WorkUnitError

        bad = ExperimentSpec(
            protocol="yao", protocol_kwargs={"k": -1},
            mean_speed=10.0, config=TINY,
        )
        with pytest.raises(WorkUnitError) as excinfo:
            run_repetitions(bad, repetitions=2, base_seed=50, workers=2)
        assert excinfo.value.label == bad.describe()
        assert excinfo.value.seed in (50, 51)
        assert "seed" in str(excinfo.value)
