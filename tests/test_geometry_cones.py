"""Tests for repro.geometry.cones: angular coverage for CBTC/Yao."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.cones import cone_index, covers_with_alpha, max_angular_gap

TWO_PI = 2 * math.pi


class TestMaxAngularGap:
    def test_empty_is_full_circle(self):
        assert max_angular_gap([]) == pytest.approx(TWO_PI)

    def test_single_direction_is_full_circle(self):
        assert max_angular_gap([1.0]) == pytest.approx(TWO_PI)

    def test_two_opposite_directions(self):
        assert max_angular_gap([0.0, math.pi]) == pytest.approx(math.pi)

    def test_evenly_spread(self):
        angles = [i * TWO_PI / 8 for i in range(8)]
        assert max_angular_gap(angles) == pytest.approx(TWO_PI / 8)

    def test_wraparound_gap(self):
        # Cluster near 0 leaves a wrap gap of almost 2*pi.
        assert max_angular_gap([0.1, 0.2, 0.3]) == pytest.approx(TWO_PI - 0.2)

    def test_negative_angles_normalised(self):
        assert max_angular_gap([-0.1, 0.1]) == pytest.approx(TWO_PI - 0.2)

    def test_duplicates_are_harmless(self):
        assert max_angular_gap([1.0, 1.0, 1.0 + math.pi]) == pytest.approx(math.pi)


class TestCoversWithAlpha:
    def test_exact_threshold_counts_as_covered(self):
        angles = [0.0, math.pi]
        assert covers_with_alpha(angles, math.pi)

    def test_not_covered_when_gap_exceeds(self):
        assert not covers_with_alpha([0.0, math.pi], math.pi - 0.01)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            covers_with_alpha([0.0], 0.0)

    def test_random_dense_set_covers_two_pi_over_three(self, rng):
        angles = rng.uniform(0, TWO_PI, size=200)
        assert covers_with_alpha(angles, 2 * math.pi / 3)


class TestConeIndex:
    def test_first_cone(self):
        assert cone_index(0.0, 6) == 0

    def test_last_cone(self):
        assert cone_index(TWO_PI - 1e-9, 6) == 5

    def test_negative_angle_wraps(self):
        assert cone_index(-0.1, 4) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cone_index(0.0, 0)

    def test_boundary_angle_exactly_two_pi(self):
        # 2*pi wraps to 0.
        assert cone_index(TWO_PI, 6) == 0

    @pytest.mark.parametrize("k", [1, 2, 3, 6, 12])
    def test_all_angles_land_in_valid_cone(self, k, rng):
        for angle in rng.uniform(-10, 10, size=100):
            assert 0 <= cone_index(float(angle), k) < k
