"""Ambient orchestration context: how sweeps find the active orchestrator.

The experiment layer (:func:`repro.analysis.experiment.run_repetitions_many`)
asks :func:`current_orchestrator` whether a checkpointed
:class:`~repro.orchestrator.runner.OrchestrationContext` is in force and, if
so, routes its work units through it — figure generators and campaigns need
no parameter threading, exactly the :func:`repro.telemetry.use_telemetry`
pattern.

This module holds only the context variable so that
:mod:`repro.analysis.experiment` can import it without dragging in the rest
of the orchestrator (which itself imports the experiment layer).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.orchestrator.runner import OrchestrationContext

__all__ = ["current_orchestrator", "use_orchestrator"]

_ACTIVE: ContextVar["OrchestrationContext | None"] = ContextVar(
    "repro_orchestrator", default=None
)


def current_orchestrator() -> "OrchestrationContext | None":
    """The ambient orchestration context, or None when sweeps run plain."""
    return _ACTIVE.get()


@contextmanager
def use_orchestrator(context: "OrchestrationContext") -> Iterator["OrchestrationContext"]:
    """Arm *context* for every sweep executed inside the ``with`` block."""
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)
