"""The RunStore: durable, resumable persistence for campaign work units.

A :class:`RunStore` is one SQLite database in WAL mode holding every work
unit a campaign has seen: its content-hash ID, canonical spec JSON, seed,
status, attempt count, and (once executed) the result document.  Writes
are idempotent upserts keyed by unit ID, so re-running any slice of a
campaign — after a crash, a kill, or on purpose — converges on the same
rows.  Schema versioning is enforced on open: a store written by an
incompatible code revision refuses to resume rather than silently mixing
result generations.

Unit lifecycle::

    pending ──execute──▶ done
        │ └──retry×N──▶ quarantined (error recorded, sweep continues)
        └──(resume)───▶ skipped entirely when already done

Schema v2 adds the *work-queue* columns (``lease_owner``,
``lease_expires``, ``heartbeat_at``) that let several worker processes
share one store: :meth:`RunStore.claim_units` atomically leases pending
units to an owner, :meth:`RunStore.heartbeat` keeps live leases fresh,
and expired leases are reclaimable by any other worker — a stalled
worker's units simply flow back into the pending pool.  A v1 store is
migrated in place on open (pure ``ALTER TABLE ... ADD COLUMN``; no row
rewrites, so a v1 reader's data is never touched destructively).

Exports: :meth:`RunStore.export_jsonl` (one self-contained JSON document
per unit) and :meth:`RunStore.export_csv` (flat scalar summary per unit),
both consumed by ``repro runs export``.  ``export_jsonl``'s
*deterministic* mode omits wall-clock columns so two campaigns over the
same units produce byte-identical files.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass
from pathlib import Path
import sqlite3

from repro.orchestrator.units import SCHEMA_VERSION, WorkUnit
from repro.util.errors import ConfigurationError

__all__ = ["STORE_SCHEMA_VERSION", "UnitRow", "RunStore"]

#: Version of the SQLite layout itself (tables/columns), independent of the
#: unit-content schema in :data:`repro.orchestrator.units.SCHEMA_VERSION`.
#: v2 added the lease/heartbeat work-queue columns; v1 stores migrate in
#: place on open.
STORE_SCHEMA_VERSION = 2

#: SQLite layout versions this code can open (older ones migrate forward).
_MIGRATABLE_VERSIONS = ("1",)

#: Unit states a row may be in.
_STATUSES = ("pending", "done", "quarantined")


@dataclass(frozen=True)
class UnitRow:
    """One stored work unit, as read back from the database."""

    unit_id: str
    kind: str
    label: str
    seed: int
    status: str
    attempts: int
    spec_json: str
    result_json: str | None
    error: str | None
    created_at: str
    updated_at: str

    def as_dict(
        self,
        include_payloads: bool = True,
        include_timestamps: bool = True,
    ) -> dict:
        """JSON-ready form (the ``runs export --format jsonl`` document).

        ``include_timestamps=False`` drops the wall-clock columns, which
        is what makes deterministic exports byte-comparable across
        machines and runs.
        """
        out = {
            "unit_id": self.unit_id,
            "kind": self.kind,
            "label": self.label,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }
        if include_timestamps:
            out["created_at"] = self.created_at
            out["updated_at"] = self.updated_at
        if include_payloads:
            out["spec"] = json.loads(self.spec_json)
            out["result"] = (
                json.loads(self.result_json) if self.result_json else None
            )
        return out


class RunStore:
    """SQLite-WAL persistence of campaign work units (see module docs)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        # Several QueueBackend workers share one database file; block (up
        # to this long) on a writer's lock instead of failing immediately.
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._create()
        self._migrate()
        self._check_schema()

    # ------------------------------------------------------------------ #
    # lifecycle

    def _create(self) -> None:
        with self._conn:
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS meta (
                    key TEXT PRIMARY KEY,
                    value TEXT NOT NULL
                )
                """
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS units (
                    unit_id TEXT PRIMARY KEY,
                    kind TEXT NOT NULL,
                    label TEXT NOT NULL,
                    seed INTEGER NOT NULL,
                    status TEXT NOT NULL,
                    attempts INTEGER NOT NULL DEFAULT 0,
                    spec_json TEXT NOT NULL,
                    result_json TEXT,
                    error TEXT,
                    created_at TEXT NOT NULL DEFAULT (datetime('now')),
                    updated_at TEXT NOT NULL DEFAULT (datetime('now')),
                    lease_owner TEXT,
                    lease_expires REAL,
                    heartbeat_at REAL
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_units_status ON units (status)"
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_schema_version", str(STORE_SCHEMA_VERSION)),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("unit_schema_version", SCHEMA_VERSION),
            )

    def _migrate(self) -> None:
        """Upgrade an older on-disk layout in place (v1 -> v2).

        v2 only *adds* nullable columns, so the migration is a pure
        ``ALTER TABLE ... ADD COLUMN`` — existing rows, IDs, and result
        payloads are untouched and the store stays resumable.
        """
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'store_schema_version'"
        ).fetchone()
        if row is None or row[0] not in _MIGRATABLE_VERSIONS:
            return
        with self._conn:
            have = {
                r[1]
                for r in self._conn.execute("PRAGMA table_info(units)")
            }
            for column, decl in (
                ("lease_owner", "TEXT"),
                ("lease_expires", "REAL"),
                ("heartbeat_at", "REAL"),
            ):
                if column not in have:
                    self._conn.execute(
                        f"ALTER TABLE units ADD COLUMN {column} {decl}"
                    )
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'store_schema_version'",
                (str(STORE_SCHEMA_VERSION),),
            )

    def _check_schema(self) -> None:
        stored = dict(
            self._conn.execute("SELECT key, value FROM meta").fetchall()
        )
        store_version = stored.get("store_schema_version")
        unit_version = stored.get("unit_schema_version")
        if store_version != str(STORE_SCHEMA_VERSION):
            raise ConfigurationError(
                f"run store {self.path} has store schema {store_version!r}; "
                f"this code writes {STORE_SCHEMA_VERSION!r} — use a fresh store"
            )
        if unit_version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"run store {self.path} holds units of schema {unit_version!r}; "
                f"this code produces {SCHEMA_VERSION!r} — its results are not "
                "comparable, use a fresh store"
            )

    def close(self) -> None:
        """Flush and close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # writes (all idempotent upserts keyed by unit ID)

    def register(self, units: list[WorkUnit], kind: str = "run") -> None:
        """Ensure a pending row exists for every unit (no-op when present)."""
        with self._conn:
            self._conn.executemany(
                """
                INSERT OR IGNORE INTO units
                    (unit_id, kind, label, seed, status, spec_json)
                VALUES (?, ?, ?, ?, 'pending', ?)
                """,
                [
                    (u.unit_id, kind, u.label, u.seed, u.spec_json)
                    for u in units
                ],
            )

    def _upsert(
        self,
        unit_id: str,
        kind: str,
        label: str,
        seed: int,
        spec_json: str,
        status: str,
        attempts: int,
        result_json: str | None,
        error: str | None,
    ) -> None:
        with self._conn:
            self._conn.execute(
                """
                INSERT INTO units
                    (unit_id, kind, label, seed, status, attempts,
                     spec_json, result_json, error)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT(unit_id) DO UPDATE SET
                    status = excluded.status,
                    attempts = excluded.attempts,
                    result_json = excluded.result_json,
                    error = excluded.error,
                    lease_owner = NULL,
                    lease_expires = NULL,
                    updated_at = datetime('now')
                """,
                (unit_id, kind, label, seed, status, attempts,
                 spec_json, result_json, error),
            )

    def record_result(
        self,
        unit: WorkUnit,
        payload: dict,
        attempts: int = 1,
        kind: str = "run",
    ) -> None:
        """Mark a unit done with its result document (idempotent)."""
        self._upsert(
            unit.unit_id, kind, unit.label, unit.seed, unit.spec_json,
            "done", attempts,
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            None,
        )

    def record_quarantine(
        self,
        unit: WorkUnit,
        error: str,
        attempts: int,
        kind: str = "run",
    ) -> None:
        """Mark a unit quarantined with its final error (idempotent)."""
        self._upsert(
            unit.unit_id, kind, unit.label, unit.seed, unit.spec_json,
            "quarantined", attempts, None, error,
        )

    # ------------------------------------------------------------------ #
    # work-queue (schema v2): lease-based claims shared across processes

    def claim_units(
        self,
        owner: str,
        limit: int = 1,
        lease_seconds: float = 60.0,
        max_attempts: int | None = None,
    ) -> list[UnitRow]:
        """Atomically lease up to *limit* pending units to *owner*.

        A unit is claimable when it is ``pending`` and unleased — or its
        lease has expired, which is how a crashed or stalled worker's
        units flow back into the pool.  Each claim increments the row's
        attempt counter; when *max_attempts* is set, candidates that have
        already burned that many claims are quarantined here instead of
        leased (their worker evidently never lived long enough to report
        a failure).  Claims are serialised by an immediate transaction,
        so two workers never hold the same unit concurrently.
        """
        now = time.time()
        claimed: list[UnitRow] = []
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            rows = self._conn.execute(
                "SELECT unit_id, attempts FROM units"
                " WHERE status = 'pending'"
                "   AND (lease_owner IS NULL OR lease_expires < ?)"
                " ORDER BY rowid LIMIT ?",
                (now, limit),
            ).fetchall()
            for unit_id, attempts in rows:
                if max_attempts is not None and attempts >= max_attempts:
                    self._conn.execute(
                        "UPDATE units SET status = 'quarantined',"
                        " error = ?, lease_owner = NULL, lease_expires = NULL,"
                        " updated_at = datetime('now') WHERE unit_id = ?",
                        (
                            f"exhausted {attempts} claim(s) without a result "
                            "(worker crashed or stalled; lease reclaimed)",
                            unit_id,
                        ),
                    )
                    continue
                self._conn.execute(
                    "UPDATE units SET attempts = attempts + 1,"
                    " lease_owner = ?, lease_expires = ?, heartbeat_at = ?,"
                    " updated_at = datetime('now') WHERE unit_id = ?",
                    (owner, now + lease_seconds, now, unit_id),
                )
                row = self.get(unit_id)
                assert row is not None
                claimed.append(row)
        return claimed

    def heartbeat(
        self,
        owner: str,
        unit_ids: list[str],
        lease_seconds: float = 60.0,
    ) -> None:
        """Refresh *owner*'s leases so live in-flight units stay claimed."""
        if not unit_ids:
            return
        now = time.time()
        marks = ",".join("?" * len(unit_ids))
        with self._conn:
            self._conn.execute(
                f"UPDATE units SET lease_expires = ?, heartbeat_at = ?"
                f" WHERE lease_owner = ? AND unit_id IN ({marks})",
                (now + lease_seconds, now, owner, *unit_ids),
            )

    def release_unit(self, unit_id: str) -> None:
        """Return a leased unit to the pool without recording an outcome."""
        with self._conn:
            self._conn.execute(
                "UPDATE units SET lease_owner = NULL, lease_expires = NULL"
                " WHERE unit_id = ?",
                (unit_id,),
            )

    # ------------------------------------------------------------------ #
    # control flags (campaign-level signalling through the shared store)

    def set_control(self, key: str, value: str) -> None:
        """Set a campaign control flag (e.g. cancellation) in the store."""
        with self._conn:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (f"control:{key}", value),
            )

    def get_control(self, key: str) -> str | None:
        """Read a control flag set by :meth:`set_control` (None if unset)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (f"control:{key}",)
        ).fetchone()
        return row[0] if row is not None else None

    def request_cancel(self) -> None:
        """Ask every worker sharing this store to stop claiming units."""
        self.set_control("cancel", "1")

    def cancel_requested(self) -> bool:
        """Whether :meth:`request_cancel` has been called on this store."""
        return self.get_control("cancel") == "1"

    # ------------------------------------------------------------------ #
    # reads

    def completed(self, unit_ids: list[str]) -> dict[str, dict]:
        """Result payloads of the given IDs that are already ``done``."""
        out: dict[str, dict] = {}
        # SQLite caps bound parameters; chunk generously below the limit.
        for i in range(0, len(unit_ids), 500):
            chunk = unit_ids[i : i + 500]
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT unit_id, result_json FROM units "
                f"WHERE status = 'done' AND unit_id IN ({marks})",
                chunk,
            ).fetchall()
            for uid, result_json in rows:
                out[uid] = json.loads(result_json)
        return out

    def get(self, unit_id: str) -> UnitRow | None:
        """One unit by exact ID, or by unique ID prefix (>= 6 chars)."""
        row = self._conn.execute(
            "SELECT unit_id, kind, label, seed, status, attempts, spec_json,"
            " result_json, error, created_at, updated_at"
            " FROM units WHERE unit_id = ?",
            (unit_id,),
        ).fetchone()
        if row is None and len(unit_id) >= 6:
            rows = self._conn.execute(
                "SELECT unit_id, kind, label, seed, status, attempts, spec_json,"
                " result_json, error, created_at, updated_at"
                " FROM units WHERE unit_id LIKE ? LIMIT 2",
                (unit_id + "%",),
            ).fetchall()
            if len(rows) == 1:
                row = rows[0]
        return UnitRow(*row) if row is not None else None

    def units(
        self, status: str | None = None, kind: str | None = None
    ) -> list[UnitRow]:
        """Every stored unit (optionally filtered), in insertion order."""
        query = (
            "SELECT unit_id, kind, label, seed, status, attempts, spec_json,"
            " result_json, error, created_at, updated_at FROM units"
        )
        clauses, params = [], []
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY rowid"
        return [
            UnitRow(*row) for row in self._conn.execute(query, params).fetchall()
        ]

    def counts(self) -> dict[str, int]:
        """Unit tally per status (statuses with zero units included)."""
        out = {status: 0 for status in _STATUSES}
        for status, n in self._conn.execute(
            "SELECT status, COUNT(*) FROM units GROUP BY status"
        ).fetchall():
            out[status] = n
        return out

    # ------------------------------------------------------------------ #
    # exports

    @staticmethod
    def _strip_result_wall_clock(result: object) -> None:
        """Drop per-run span timings (``*_s`` keys) from an embedded
        telemetry block, in place.

        Span *counts* are simulation-driven and stay; the timing moments
        are wall clock, so a deterministic export must shed them the same
        way it sheds the row timestamps.
        """
        if not isinstance(result, dict):
            return
        stats = result.get("stats")
        telemetry = stats.get("telemetry") if isinstance(stats, dict) else None
        spans = telemetry.get("spans") if isinstance(telemetry, dict) else None
        if not isinstance(spans, dict):
            return
        for span in spans.values():
            if isinstance(span, dict):
                for key in [k for k in span if k.endswith("_s")]:
                    del span[key]

    def export_jsonl(
        self, path: str | Path, deterministic: bool = False
    ) -> int:
        """Write one JSON document per unit; returns the line count.

        *deterministic* omits every wall-clock field — the timestamp
        columns and the per-run telemetry span timings embedded in
        results — and sorts rows by unit ID instead of insertion order,
        so two stores holding the same unit outcomes export byte-identical
        files regardless of which worker, backend, or machine produced
        them (the service byte-identity contract rides on this).
        """
        rows = self.units()
        if deterministic:
            rows = sorted(rows, key=lambda r: r.unit_id)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "record": "header",
                        "schema": "repro-runstore/1",
                        "store_schema_version": STORE_SCHEMA_VERSION,
                        "unit_schema_version": SCHEMA_VERSION,
                        "units": len(rows),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            for row in rows:
                doc = row.as_dict(include_timestamps=not deterministic)
                if deterministic:
                    self._strip_result_wall_clock(doc.get("result"))
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        return len(rows) + 1

    def export_csv(self, path: str | Path) -> int:
        """Write a flat per-unit scalar summary; returns the row count.

        Series payloads are reduced to their per-run means (the scalars
        campaign aggregates are built from), keeping the CSV joinable
        against figures without re-parsing JSON.
        """
        rows = self.units()
        columns = [
            "unit_id", "kind", "label", "seed", "status", "attempts", "error",
            "connectivity", "tx_range", "logical_degree", "physical_degree",
            "strict",
        ]
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            for row in rows:
                record = {
                    "unit_id": row.unit_id,
                    "kind": row.kind,
                    "label": row.label,
                    "seed": row.seed,
                    "status": row.status,
                    "attempts": row.attempts,
                    "error": row.error or "",
                }
                if row.result_json and row.kind == "run":
                    series = json.loads(row.result_json).get("series", {})

                    def mean(name: str) -> float | str:
                        values = series.get(name)
                        if not values:
                            return ""
                        return sum(values) / len(values)

                    record.update(
                        connectivity=mean("delivery_ratios"),
                        tx_range=mean("mean_extended_ranges"),
                        logical_degree=mean("mean_logical_degrees"),
                        physical_degree=mean("mean_physical_degrees"),
                        strict=mean("strict_connected"),
                    )
                writer.writerow(record)
        return len(rows)
