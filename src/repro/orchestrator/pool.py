"""Fault-contained worker pool: per-unit timeout, retry, quarantine.

The pool executes opaque payloads through a top-level *worker function*
(pickled into ``ProcessPoolExecutor`` children) and contains every failure
to the unit that caused it:

- an exception in a worker is retried with linear backoff up to
  ``retries`` extra attempts, then **quarantined** — reported through a
  callback naming the unit, never aborting the rest of the batch;
- a unit exceeding ``unit_timeout`` raises
  :class:`~repro.util.errors.UnitTimeoutError` *inside the child* (SIGALRM
  via ``signal.setitimer``), so the pool itself survives hangs;
- a hard worker death (segfault, ``os._exit``) breaks the executor —
  the pool rebuilds it, re-accounts every in-flight unit as one failed
  attempt, and carries on.

``workers == 1`` runs inline in the parent process (deterministic, easy
to debug, no pickling); the timeout is then not enforced, since there is
no child to bound.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

__all__ = [
    "QuarantinedUnit",
    "WorkerPool",
    "install_unit_timeout",
    "clear_unit_timeout",
]


@dataclass(frozen=True)
class QuarantinedUnit:
    """One unit that exhausted its retry budget, with its final error."""

    unit_id: str
    label: str
    seed: int
    attempts: int
    error: str

    def __str__(self) -> str:
        return (
            f"{self.label} (seed {self.seed}, unit {self.unit_id[:12]}): "
            f"{self.error} [after {self.attempts} attempt(s)]"
        )


def install_unit_timeout(timeout: float | None) -> None:
    """Arm a SIGALRM-based wall-clock bound in the *current* process.

    Called by worker functions at the top of each unit.  No-op when
    *timeout* is falsy or the platform lacks ``SIGALRM`` (the pool then
    degrades to unbounded units rather than failing).
    """
    if not timeout:
        return
    import signal

    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        return

    def _on_timeout(signum: int, frame: object) -> None:
        from repro.util.errors import UnitTimeoutError

        raise UnitTimeoutError(
            "<unit>", -1, f"exceeded per-unit timeout of {timeout:g}s"
        )

    signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, float(timeout))


def clear_unit_timeout() -> None:
    """Disarm a previously installed per-unit timer (worker epilogue)."""
    import signal

    if hasattr(signal, "SIGALRM"):
        signal.setitimer(signal.ITIMER_REAL, 0.0)


class WorkerPool:
    """Execute payloads fault-contained; see module docstring.

    Parameters
    ----------
    worker_fn:
        Top-level picklable callable ``payload -> result``.
    workers:
        Process count; 1 executes inline in the parent.
    retries:
        Extra attempts after the first failure before quarantining.
    backoff:
        Sleep before retry *k* is ``backoff * k`` seconds (linear).
    should_stop:
        Optional cooperative cancellation probe, polled between units.
        When it returns True the pool stops launching new units, lets
        in-flight ones finish (their callbacks still fire), and returns
        early — unstarted units simply get no callback, which is how
        :meth:`OrchestrationContext.cancel` turns into
        ``CampaignInterrupted`` without killing anything mid-write.
    """

    def __init__(
        self,
        worker_fn: Callable[[dict], dict],
        workers: int = 1,
        retries: int = 1,
        backoff: float = 0.05,
        should_stop: Callable[[], bool] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.worker_fn = worker_fn
        self.workers = int(workers)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.should_stop = should_stop

    def _stopped(self) -> bool:
        return self.should_stop is not None and self.should_stop()

    # ------------------------------------------------------------------ #

    def run(
        self,
        payloads: dict[str, dict],
        on_result: Callable[[str, dict, int], None],
        on_failure: Callable[[str, str, int], None],
    ) -> None:
        """Execute every payload, reporting per-unit outcomes via callbacks.

        ``on_result(unit_id, result, attempts)`` fires as each unit
        completes (incremental checkpointing hangs off this); a unit that
        exhausts its retry budget fires ``on_failure(unit_id, error,
        attempts)`` instead.  The call returns only when every unit has
        reached one of the two outcomes — a failing unit never aborts its
        batch.
        """
        if not payloads:
            return
        if self.workers == 1:
            self._run_inline(payloads, on_result, on_failure)
        else:
            self._run_pooled(payloads, on_result, on_failure)

    # ------------------------------------------------------------------ #

    def _run_inline(self, payloads, on_result, on_failure) -> None:
        for uid, payload in payloads.items():
            if self._stopped():
                return
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = self.worker_fn(payload)
                except Exception as exc:
                    if attempts <= self.retries:
                        time.sleep(self.backoff * attempts)
                        continue
                    on_failure(uid, str(exc), attempts)
                    break
                else:
                    on_result(uid, result, attempts)
                    break

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _run_pooled(self, payloads, on_result, on_failure) -> None:
        queue: deque[str] = deque(payloads)
        attempts: dict[str, int] = {uid: 0 for uid in payloads}
        retry_at: dict[str, float] = {}
        executor = self._new_executor()
        futures: dict[object, str] = {}
        try:
            while queue or futures:
                if self._stopped():
                    # Stop feeding; report what's already in flight, then
                    # bail.  Cancelled futures never started a unit.
                    queue.clear()
                    if not futures:
                        return
                now = time.monotonic()
                # Submit everything currently runnable (not in backoff).
                deferred: list[str] = []
                while queue:
                    uid = queue.popleft()
                    if retry_at.get(uid, 0.0) > now:
                        deferred.append(uid)
                        continue
                    attempts[uid] += 1
                    futures[executor.submit(self.worker_fn, payloads[uid])] = uid
                queue.extend(deferred)
                if not futures:
                    # Everything runnable is in backoff; wait the shortest.
                    time.sleep(
                        max(0.0, min(retry_at[uid] for uid in queue) - now)
                    )
                    continue
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    uid = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._account_failure(
                            uid, "worker process died (pool broken)",
                            attempts, retry_at, queue, on_failure,
                        )
                    except Exception as exc:
                        self._account_failure(
                            uid, str(exc), attempts, retry_at, queue, on_failure
                        )
                    else:
                        on_result(uid, result, attempts[uid])
                if broken:
                    # A dead worker poisons the whole executor: every
                    # in-flight unit fails with BrokenProcessPool.  Charge
                    # each one attempt, rebuild, and resume.
                    for future, uid in list(futures.items()):
                        self._account_failure(
                            uid, "worker process died (pool broken)",
                            attempts, retry_at, queue, on_failure,
                        )
                    futures.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._new_executor()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _account_failure(
        self, uid, error, attempts, retry_at, queue, on_failure
    ) -> None:
        if attempts[uid] <= self.retries:
            retry_at[uid] = time.monotonic() + self.backoff * attempts[uid]
            queue.append(uid)
        else:
            on_failure(uid, error, attempts[uid])
