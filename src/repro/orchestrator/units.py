"""Work units: the deterministic identity layer of campaign orchestration.

A campaign decomposes into **work units** — one simulated repetition each.
A unit's identity is a pure content hash of

- the canonical :meth:`~repro.analysis.experiment.ExperimentSpec.to_json`
  form of its spec (sorted keys, compact separators, coerced numerics),
- its seed, and
- the code-schema version (:data:`SCHEMA_VERSION`, bumped whenever a code
  change makes previously stored results incomparable),

so the same (spec, seed) always maps to the same unit ID on any host, at
any worker count, in any submission order — which is what makes resuming
from a :class:`~repro.orchestrator.store.RunStore` sound: a completed ID
*is* the proof that this exact simulation already ran.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.analysis.experiment import ExperimentSpec

__all__ = ["SCHEMA_VERSION", "WorkUnit", "unit_id", "content_unit_id"]

#: Code-schema version folded into every unit hash.  Bump when simulation
#: semantics change such that stored results no longer equal a fresh run.
SCHEMA_VERSION = "repro-unit/1"


def content_unit_id(kind: str, canonical_json: str, seed: int) -> str:
    """SHA-256 content hash of ``(kind, canonical payload JSON, seed)``.

    *kind* namespaces unit families sharing one store (``"run"`` for
    experiment repetitions, ``"fuzz"`` for fuzz cases).
    """
    digest = hashlib.sha256(
        json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "kind": kind,
                "payload": canonical_json,
                "seed": int(seed),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
    )
    return digest.hexdigest()


def unit_id(spec: ExperimentSpec, seed: int) -> str:
    """The content hash identifying one experiment repetition."""
    return content_unit_id("run", spec.to_json(), seed)


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable repetition: a spec, a seed, and their content hash.

    ``spec_json`` is precomputed once per spec so batching a thousand
    seeds of the same spec does not re-serialize it a thousand times.
    """

    spec: ExperimentSpec
    seed: int
    spec_json: str = ""
    unit_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.spec_json:
            object.__setattr__(self, "spec_json", self.spec.to_json())
        if not self.unit_id:
            object.__setattr__(
                self, "unit_id", content_unit_id("run", self.spec_json, self.seed)
            )

    @property
    def label(self) -> str:
        """Human-readable unit name (spec label + seed)."""
        return f"{self.spec.describe()} seed={self.seed}"
