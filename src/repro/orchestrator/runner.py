"""Campaign orchestration: checkpointed, resumable, fault-contained sweeps.

An :class:`OrchestrationContext` is the durable replacement for the old
in-memory ``ProcessPoolExecutor.map`` sweep loop.  Arm one with
:func:`~repro.orchestrator.context.use_orchestrator` and every sweep that
reaches :func:`repro.analysis.experiment.run_repetitions_many` decomposes
into content-hashed :class:`~repro.orchestrator.units.WorkUnit` objects and
flows through this pipeline:

1. **Resume** — units whose ID is already ``done`` in the
   :class:`~repro.orchestrator.store.RunStore` are loaded, not re-run.
2. **Execute** — the rest flow through a pluggable
   :class:`~repro.orchestrator.backend.ExecutionBackend` (the default
   ``local`` backend wraps the fault-contained
   :class:`~repro.orchestrator.pool.WorkerPool`: per-unit timeout,
   bounded retry, quarantine); each completed unit is upserted into the
   store *immediately*, so a kill at any instant loses at most the
   in-flight units.  ``backend="queue"`` instead lets several worker
   processes steal leased units from the shared store.
3. **Merge** — results are returned in seed order; per-unit telemetry
   summaries are absorbed into the ambient collector when one is armed,
   which is what lifts the old ``--telemetry ⇒ --workers 1`` restriction.

Aggregates are bit-identical to a cold, store-less run at any worker
count: unit results always pass through the exact JSON round trip of
:mod:`repro.orchestrator.results`, and seeds — not schedulers — define
every simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from collections.abc import Callable

from repro.analysis.experiment import ExperimentSpec, RunResult, run_once
from repro.orchestrator.backend import ExecutionBackend, make_backend
from repro.orchestrator.context import current_orchestrator, use_orchestrator
from repro.orchestrator.pool import (
    QuarantinedUnit,
    clear_unit_timeout,
    install_unit_timeout,
)
from repro.orchestrator.results import result_from_dict, result_to_dict
from repro.orchestrator.store import RunStore
from repro.orchestrator.units import WorkUnit
from repro.telemetry.core import Telemetry, TelemetrySummary
from repro.telemetry.runtime import current_telemetry
from repro.util.errors import OrchestrationError, WorkUnitError

__all__ = [
    "CampaignInterrupted",
    "OrchestrationContext",
    "execute_unit",
]


class CampaignInterrupted(OrchestrationError):
    """The campaign stopped before every unit ran.

    Raised when the unit budget (``max_units``) runs out mid-campaign or
    when :meth:`OrchestrationContext.cancel` is called.  Everything
    executed so far is already persisted; rerun with resume to continue
    from the checkpoint.
    """


def execute_unit(payload: dict) -> dict:
    """Worker entry point: run one unit, return its result document.

    *payload* is ``{"spec_json", "seed", "timeout", "telemetry"}``.  Runs
    under a SIGALRM wall-clock bound when a timeout is set, traces the run
    with a process-local collector when asked, and wraps any failure in a
    :class:`~repro.util.errors.WorkUnitError` naming the (spec, seed)
    unit.  Top-level and payload-picklable by construction so it crosses
    the ``ProcessPoolExecutor`` boundary.
    """
    spec = ExperimentSpec.from_json(payload["spec_json"])
    seed = int(payload["seed"])
    telemetry = Telemetry() if payload.get("telemetry") else None
    install_unit_timeout(payload.get("timeout"))
    try:
        result = run_once(spec, seed=seed, telemetry=telemetry)
    except WorkUnitError:
        raise
    except Exception as exc:
        raise WorkUnitError(
            spec.describe(), seed, f"{type(exc).__name__}: {exc}"
        ) from exc
    finally:
        clear_unit_timeout()
    return result_to_dict(result)


@dataclass
class OrchestrationContext:
    """One durable campaign: a store, a pool policy, and its live tallies.

    Parameters
    ----------
    store:
        Checkpoint database; None runs the same fault-contained pipeline
        without persistence (retry/quarantine still apply).
    workers:
        Process fan-out (1 = inline).
    retries:
        Extra attempts per unit before quarantine.
    unit_timeout:
        Per-unit wall-clock bound in seconds (enforced in worker
        processes; inline execution is unbounded).
    resume:
        Skip units already ``done`` in the store.  Off, every unit
        re-executes (and idempotently overwrites its row).
    max_units:
        Execute at most this many *fresh* units, then raise
        :class:`CampaignInterrupted` (budgeted runs; the interrupted-
        resume tests and CI smoke use it to kill campaigns mid-sweep).
    backoff:
        Linear retry backoff factor, seconds.
    backend:
        Execution engine: a registry name (``"inprocess"``, ``"local"``,
        ``"queue"``) or a ready :class:`ExecutionBackend` instance.
        None resolves to ``"local"`` — the historical WorkerPool
        behaviour, bit for bit.
    on_progress:
        Optional hook called (with this context) after each settled
        unit batch — the HTTP service hangs live telemetry snapshots
        off it.

    Attributes
    ----------
    executed_units:
        Fresh executions this context performed (excludes resumed units).
    resumed_units:
        Units served straight from the store.
    quarantined:
        Every unit that exhausted its retries, with its final error.
    """

    store: RunStore | None = None
    workers: int = 1
    retries: int = 1
    unit_timeout: float | None = None
    resume: bool = True
    max_units: int | None = None
    backoff: float = 0.05
    backend: "str | ExecutionBackend | None" = None
    on_progress: Callable[["OrchestrationContext"], None] | None = None
    executed_units: int = 0
    resumed_units: int = 0
    quarantined: list[QuarantinedUnit] = field(default_factory=list)
    cancelled: bool = False

    def __enter__(self) -> "OrchestrationContext":
        self._token_ctx = use_orchestrator(self)
        return self._token_ctx.__enter__()

    def __exit__(self, *exc_info: object) -> None:
        self._token_ctx.__exit__(*exc_info)

    # ------------------------------------------------------------------ #

    def run_spec_batch(
        self,
        specs: list[ExperimentSpec],
        repetitions: int,
        base_seed: int,
    ) -> list[list[RunResult]]:
        """Run every (spec, seed) unit of a sweep batch; group per spec.

        Returns one seed-ordered result list per spec, with quarantined
        units omitted.  A spec whose *every* repetition was quarantined
        raises :class:`~repro.util.errors.OrchestrationError` naming it.
        """
        batches = [
            [WorkUnit(spec=spec, seed=base_seed + i, spec_json=spec_json)
             for i in range(repetitions)]
            for spec, spec_json in ((s, s.to_json()) for s in specs)
        ]
        results = self.run_units([u for batch in batches for u in batch])
        out: list[list[RunResult]] = []
        for spec, batch in zip(specs, batches):
            runs = [results[u.unit_id] for u in batch if u.unit_id in results]
            if not runs:
                failed = "; ".join(
                    str(q) for q in self.quarantined
                    if any(q.unit_id == u.unit_id for u in batch)
                )
                raise OrchestrationError(
                    f"every repetition of {spec.describe()!r} was quarantined: "
                    f"{failed or 'no units completed'}"
                )
            out.append(runs)
        return out

    def run_units(self, units: list[WorkUnit]) -> dict[str, RunResult]:
        """Execute (or resume) work units; return results keyed by unit ID.

        Duplicate IDs within the batch execute once.  Fresh results are
        upserted into the store as they complete; quarantined units are
        recorded and *omitted* from the returned mapping.
        """
        unique: dict[str, WorkUnit] = {}
        for unit in units:
            unique.setdefault(unit.unit_id, unit)
        if self.store is not None:
            self.store.register(list(unique.values()))

        telemetry = current_telemetry()
        if telemetry is not None and not telemetry.enabled:
            telemetry = None

        results: dict[str, RunResult] = {}
        if self.store is not None and self.resume:
            for uid, payload in self.store.completed(list(unique)).items():
                unit = unique[uid]
                results[uid] = result_from_dict(unit.spec, unit.seed, payload)
                self.resumed_units += 1
                self._absorb(telemetry, results[uid])

        to_run = [unit for uid, unit in unique.items() if uid not in results]
        interrupted = False
        if self.max_units is not None:
            budget = self.max_units - self.executed_units
            if len(to_run) > budget:
                to_run = to_run[: max(0, budget)]
                interrupted = True

        if to_run:
            payloads = {
                unit.unit_id: {
                    "spec_json": unit.spec_json,
                    "seed": unit.seed,
                    "timeout": self.unit_timeout,
                    "telemetry": telemetry is not None,
                }
                for unit in to_run
            }
            by_id = {unit.unit_id: unit for unit in to_run}
            self._drive_backend(payloads, by_id, results, telemetry)

        if self.cancelled:
            raise CampaignInterrupted(
                f"campaign cancelled after {self.executed_units} fresh "
                f"unit(s); completed work is checkpointed — rerun with "
                f"--resume to continue"
            )
        if interrupted:
            raise CampaignInterrupted(
                f"unit budget exhausted after {self.executed_units} fresh "
                f"unit(s); completed work is checkpointed — rerun with "
                f"--resume to continue"
            )
        return results

    # ------------------------------------------------------------------ #

    def _resolve_backend(self) -> ExecutionBackend:
        """Build (or pass through) the execution backend for one batch."""
        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        name = self.backend or "local"
        if name == "queue":
            if self.store is None:
                raise OrchestrationError(
                    "backend='queue' needs a store: the shared RunStore is "
                    "the work queue — pass store=/--store"
                )
            return make_backend(
                "queue", store=self.store, workers=self.workers,
                retries=self.retries, unit_timeout=self.unit_timeout,
            )
        if name == "local":
            return make_backend(
                "local", workers=self.workers, retries=self.retries,
                backoff=self.backoff,
            )
        return make_backend(name, retries=self.retries, backoff=self.backoff)

    def cancel(self) -> None:
        """Stop the in-flight campaign (thread-safe, cooperative).

        In-flight units finish and checkpoint; unstarted units stay
        pending.  The driving :meth:`run_units` call then raises
        :class:`CampaignInterrupted`, exactly like an exhausted unit
        budget — resume continues from the checkpoint.
        """
        self.cancelled = True
        backend = getattr(self, "_active_backend", None)
        if backend is not None:
            backend.cancel()

    def _drive_backend(
        self,
        payloads: dict[str, dict],
        by_id: dict[str, WorkUnit],
        results: dict[str, RunResult],
        telemetry: Telemetry | None,
    ) -> None:
        """Submit one batch and drain outcomes until the backend is done."""
        backend = self._resolve_backend()
        record = not backend.capabilities().writes_store
        self._active_backend = backend
        try:
            if self.cancelled:
                backend.cancel()
            backend.submit_units(payloads)
            while True:
                outcomes = backend.poll()
                for outcome in outcomes:
                    unit = by_id[outcome.unit_id]
                    if outcome.ok:
                        if self.store is not None and record:
                            self.store.record_result(
                                unit, outcome.result, attempts=outcome.attempts
                            )
                        results[outcome.unit_id] = result_from_dict(
                            unit.spec, unit.seed, outcome.result
                        )
                        self.executed_units += 1
                        self._absorb(telemetry, results[outcome.unit_id])
                    else:
                        if self.store is not None and record:
                            self.store.record_quarantine(
                                unit, outcome.error, attempts=outcome.attempts
                            )
                        self.quarantined.append(
                            QuarantinedUnit(
                                unit_id=outcome.unit_id,
                                label=unit.spec.describe(),
                                seed=unit.seed,
                                attempts=outcome.attempts,
                                error=outcome.error,
                            )
                        )
                if outcomes and self.on_progress is not None:
                    self.on_progress(self)
                if backend.done():
                    break
        finally:
            self._active_backend = None
            backend.close()

    # ------------------------------------------------------------------ #

    @staticmethod
    def _absorb(telemetry: Telemetry | None, result: RunResult) -> None:
        summary = result.stats.telemetry
        if telemetry is not None and isinstance(summary, TelemetrySummary):
            # The seed orders gauge resolution: merged gauges are then a
            # pure function of the unit set, not of completion order.
            telemetry.absorb(summary, source=result.seed)

    def summary_line(self) -> str:
        """One-line progress digest for CLI epilogues."""
        parts = [
            f"{self.executed_units} executed",
            f"{self.resumed_units} resumed",
            f"{len(self.quarantined)} quarantined",
        ]
        if self.store is not None:
            tally = self.store.counts()
            parts.append(
                "store: " + ", ".join(f"{n} {s}" for s, n in tally.items())
            )
        return "; ".join(parts)
