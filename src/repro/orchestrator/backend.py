"""Pluggable execution backends for campaign orchestration.

The :class:`~repro.orchestrator.runner.OrchestrationContext` used to be
welded to the :class:`~repro.orchestrator.pool.WorkerPool`.  This module
generalises the execution step behind one small protocol —
:class:`ExecutionBackend` — with three implementations spanning the
deployment spectrum:

:class:`InProcessBackend`
    Executes one unit per :meth:`~ExecutionBackend.poll` call, inline,
    with no threads or processes.  The reference implementation: tests
    step it deterministically, and cancellation is exact (nothing is in
    flight between polls).

:class:`LocalPoolBackend`
    Wraps today's fault-contained :class:`WorkerPool` (per-unit SIGALRM
    timeout, bounded retry, quarantine, broken-pool rebuild) unchanged,
    running it on a feeder thread so the caller keeps a poll/cancel
    handle.  This is the default backend — ``workers == 1`` reproduces
    the historical inline behaviour bit for bit.

:class:`QueueBackend`
    Multi-worker work-stealing over a shared :class:`RunStore`: worker
    processes claim pending units by content-hash ID under a lease
    (schema v2), execute them, and record outcomes straight into the
    store.  Stalled or crashed workers lose their leases and other
    workers reclaim the units, so the campaign converges regardless of
    which worker dies.  Results remain bit-identical to a cold run —
    seeds, not schedulers, define every simulation.

Backends are registered by name (``available_backends`` /
``make_backend``) so the CLI ``--backend`` flag, the HTTP service, and
``repro.api.submit_campaign`` all share one taxonomy.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.orchestrator.pool import WorkerPool
from repro.orchestrator.store import RunStore
from repro.util.errors import ConfigurationError

__all__ = [
    "BackendCapabilities",
    "UnitOutcome",
    "ExecutionBackend",
    "InProcessBackend",
    "LocalPoolBackend",
    "QueueBackend",
    "available_backends",
    "make_backend",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, queried by the orchestration layer.

    ``writes_store`` is the load-bearing flag: a backend that records
    outcomes into the :class:`RunStore` itself (the queue workers do, so
    a crash between execute and report loses nothing) tells the context
    *not* to re-record them on receipt.
    """

    name: str
    parallel: bool
    supports_cancel: bool
    writes_store: bool


@dataclass(frozen=True)
class UnitOutcome:
    """One finished unit as reported by a backend.

    Either ``result`` (the JSON-ready result document) or ``error`` (the
    final failure string after retries) is set, never both.
    """

    unit_id: str
    ok: bool
    attempts: int
    result: dict | None = None
    error: str | None = None


class ExecutionBackend(ABC):
    """Protocol between the orchestration context and an execution engine.

    Lifecycle: one :meth:`submit_units` call hands the backend a batch of
    payloads (``{unit_id: payload}``, payloads as consumed by
    :func:`~repro.orchestrator.runner.execute_unit`); the caller then
    drains :meth:`poll` until :meth:`done`; :meth:`cancel` asks the
    backend to stop launching new units (in-flight ones still report).
    A backend instance serves one batch; :meth:`close` releases whatever
    it holds.
    """

    @abstractmethod
    def submit_units(self, payloads: dict[str, dict]) -> None:
        """Accept a batch of unit payloads for execution."""

    @abstractmethod
    def poll(self, timeout: float = 0.1) -> list[UnitOutcome]:
        """Return outcomes that completed since the last poll.

        May block up to *timeout* seconds waiting for the first one; an
        empty list means nothing finished in that window (call
        :meth:`done` to distinguish "still working" from "drained").
        """

    @abstractmethod
    def cancel(self) -> None:
        """Stop launching new units; in-flight units still report."""

    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of this backend."""

    @abstractmethod
    def done(self) -> bool:
        """Whether every submitted unit has reported (or been cancelled)."""

    def close(self) -> None:
        """Release threads/processes; idempotent."""


# --------------------------------------------------------------------- #


class InProcessBackend(ExecutionBackend):
    """Synchronous reference backend: one unit per :meth:`poll` call.

    No threads, no processes, no timeout enforcement — execution happens
    inside ``poll`` itself, so tests can single-step a campaign and
    cancellation between polls is exact.  Retry/quarantine semantics
    match the :class:`WorkerPool` inline path.
    """

    def __init__(self, retries: int = 1, backoff: float = 0.0) -> None:
        from repro.orchestrator.runner import execute_unit

        self._execute = execute_unit
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._pending: deque[tuple[str, dict]] = deque()
        self._cancelled = False

    def submit_units(self, payloads: dict[str, dict]) -> None:
        if not self._cancelled:
            self._pending.extend(payloads.items())

    def poll(self, timeout: float = 0.1) -> list[UnitOutcome]:
        if self._cancelled or not self._pending:
            return []
        uid, payload = self._pending.popleft()
        attempts = 0
        while True:
            attempts += 1
            try:
                result = self._execute(payload)
            except Exception as exc:
                if attempts <= self.retries:
                    if self.backoff:
                        time.sleep(self.backoff * attempts)
                    continue
                return [UnitOutcome(uid, ok=False, attempts=attempts,
                                    error=str(exc))]
            return [UnitOutcome(uid, ok=True, attempts=attempts,
                                result=result)]

    def cancel(self) -> None:
        self._cancelled = True
        self._pending.clear()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="inprocess", parallel=False,
            supports_cancel=True, writes_store=False,
        )

    def done(self) -> bool:
        return self._cancelled or not self._pending


# --------------------------------------------------------------------- #


class LocalPoolBackend(ExecutionBackend):
    """The :class:`WorkerPool` behind the backend protocol (default).

    ``pool.run`` executes on a feeder thread whose callbacks push
    :class:`UnitOutcome` objects onto a queue the caller drains via
    :meth:`poll`; :meth:`cancel` trips the pool's cooperative
    ``should_stop`` probe.  All fault-containment behaviour (per-unit
    timeout, retry with backoff, quarantine, broken-pool rebuild) is the
    pool's, unchanged.
    """

    def __init__(
        self,
        workers: int = 1,
        retries: int = 1,
        backoff: float = 0.05,
    ) -> None:
        from repro.orchestrator.runner import execute_unit

        self._execute = execute_unit
        self.workers = int(workers)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._outcomes: queue.Queue[UnitOutcome] = queue.Queue()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._submitted = 0
        self._reported = 0

    def submit_units(self, payloads: dict[str, dict]) -> None:
        if self._thread is not None:
            raise ConfigurationError(
                "LocalPoolBackend serves one batch per instance"
            )
        self._submitted = len(payloads)
        pool = WorkerPool(
            self._execute,
            workers=self.workers,
            retries=self.retries,
            backoff=self.backoff,
            should_stop=self._stop.is_set,
        )

        def on_result(uid: str, result: dict, attempts: int) -> None:
            self._outcomes.put(
                UnitOutcome(uid, ok=True, attempts=attempts, result=result)
            )

        def on_failure(uid: str, error: str, attempts: int) -> None:
            self._outcomes.put(
                UnitOutcome(uid, ok=False, attempts=attempts, error=error)
            )

        self._thread = threading.Thread(
            target=pool.run,
            args=(dict(payloads), on_result, on_failure),
            name="repro-local-pool",
            daemon=True,
        )
        self._thread.start()

    def poll(self, timeout: float = 0.1) -> list[UnitOutcome]:
        out: list[UnitOutcome] = []
        try:
            out.append(self._outcomes.get(timeout=timeout))
            while True:
                out.append(self._outcomes.get_nowait())
        except queue.Empty:
            pass
        self._reported += len(out)
        return out

    def cancel(self) -> None:
        self._stop.set()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="local", parallel=self.workers > 1,
            supports_cancel=True, writes_store=False,
        )

    def done(self) -> bool:
        if self._thread is None:
            return True
        if self._reported >= self._submitted:
            return True
        # The feeder thread exits early on cancel (or after quarantining
        # everything); once it is gone and the queue is drained, we are
        # as done as we will ever be.
        return not self._thread.is_alive() and self._outcomes.empty()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)


# --------------------------------------------------------------------- #
# QueueBackend: work-stealing workers over a shared RunStore


def _queue_worker_main(
    store_path: str,
    owner: str,
    unit_timeout: float | None,
    telemetry: bool,
    retries: int,
    lease_seconds: float,
) -> None:
    """Worker process body: claim → execute → record, until drained.

    Runs against its *own* store connection (never the parent's).  On a
    unit failure within the retry budget the lease is released so any
    worker (this one included) can reclaim it; past the budget the unit
    is quarantined.  A worker that dies mid-unit simply lets its lease
    expire — :meth:`RunStore.claim_units` hands the unit to someone else
    and quarantines it once it has burned ``retries + 1`` claims.
    """
    from repro.orchestrator.runner import execute_unit

    store = RunStore(store_path)
    max_attempts = retries + 1
    try:
        while True:
            if store.cancel_requested():
                return
            claimed = store.claim_units(
                owner, limit=1, lease_seconds=lease_seconds,
                max_attempts=max_attempts,
            )
            if not claimed:
                # Nothing claimable right now.  Exit only once the
                # pending pool is empty; otherwise some other worker
                # holds live leases — linger so this worker can steal
                # them if that worker stalls and the leases expire.
                if store.counts().get("pending", 0) == 0:
                    return
                time.sleep(min(1.0, lease_seconds / 4.0))
                continue
            row = claimed[0]
            payload = {
                "spec_json": row.spec_json,
                "seed": row.seed,
                "timeout": unit_timeout,
                "telemetry": telemetry,
            }
            beat_done = threading.Event()

            def _beat() -> None:
                while not beat_done.wait(lease_seconds / 3.0):
                    store.heartbeat(owner, [row.unit_id], lease_seconds)

            beater = threading.Thread(target=_beat, daemon=True)
            beater.start()
            try:
                document = execute_unit(payload)
            except Exception as exc:
                if row.attempts >= max_attempts:
                    store.record_quarantine(
                        _row_unit(row), str(exc), attempts=row.attempts
                    )
                else:
                    store.release_unit(row.unit_id)
            else:
                store.record_result(
                    _row_unit(row), document, attempts=row.attempts
                )
            finally:
                beat_done.set()
                beater.join(timeout=1.0)
    finally:
        store.close()


def _row_unit(row):
    """Rebuild the WorkUnit a store row was registered from."""
    from repro.analysis.experiment import ExperimentSpec
    from repro.orchestrator.units import WorkUnit

    return WorkUnit(
        spec=ExperimentSpec.from_json(row.spec_json),
        seed=row.seed,
        spec_json=row.spec_json,
    )


class QueueBackend(ExecutionBackend):
    """Work-stealing execution over a shared :class:`RunStore`.

    ``workers`` processes each run :func:`_queue_worker_main`: claim a
    pending unit under a lease, execute it, record the outcome directly
    into the store (``writes_store``), repeat until the queue drains or
    cancellation is flagged through the store's control table.  The
    parent's :meth:`poll` watches the store for newly-settled unit IDs
    and reports them as :class:`UnitOutcome` objects.

    ``workers=0`` is the *inline drain* mode: ``poll`` runs one
    claim-execute-record cycle in the calling process — the exact worker
    code path, minus process spawn — which is what the conformance tests
    step through.

    Duplicate execution (two workers racing one unit across a lease
    expiry) is harmless by construction: units are content-addressed and
    results are idempotent upserts, so the second writer converges on
    the same row.
    """

    def __init__(
        self,
        store: RunStore | str | Path | None = None,
        workers: int = 2,
        retries: int = 1,
        lease_seconds: float = 60.0,
        unit_timeout: float | None = None,
        respawn_budget: int | None = None,
    ) -> None:
        if store is None:
            raise ConfigurationError(
                "QueueBackend needs a RunStore (or its path): the shared "
                "store IS the work queue — pass --store/store="
            )
        self._store = store if isinstance(store, RunStore) else RunStore(store)
        if not isinstance(store, RunStore):
            self._owns_store = True
        else:
            self._owns_store = False
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.retries = int(retries)
        self.lease_seconds = float(lease_seconds)
        self.unit_timeout = unit_timeout
        self.respawn_budget = (
            int(respawn_budget) if respawn_budget is not None
            else max(2, 2 * max(1, self.workers))
        )
        self._procs: list = []
        self._watch: dict[str, bool] = {}
        self._telemetry = False
        self._cancelled = False

    # ---------------------------------------------------------------- #

    def submit_units(self, payloads: dict[str, dict]) -> None:
        # Units are already registered as pending rows by the context;
        # the store is the queue, so submission is just bookkeeping plus
        # worker spawn.  Per-batch execution knobs ride on the backend.
        for uid, payload in payloads.items():
            self._watch.setdefault(uid, False)
            self._telemetry = bool(payload.get("telemetry"))
            if payload.get("timeout") is not None:
                self.unit_timeout = payload["timeout"]
        if self.workers > 0 and not self._procs:
            self._spawn(self.workers)

    def _spawn(self, n: int) -> None:
        import multiprocessing as mp

        for i in range(n):
            owner = f"worker-{os.getpid()}-{len(self._procs)}"
            proc = mp.Process(
                target=_queue_worker_main,
                args=(
                    str(self._store.path), owner, self.unit_timeout,
                    self._telemetry, self.retries, self.lease_seconds,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def _inline_drain_step(self) -> None:
        """workers=0: run one claim-execute-record cycle in-process."""
        from repro.orchestrator.runner import execute_unit

        if self._store.cancel_requested():
            return
        claimed = self._store.claim_units(
            f"inline-{os.getpid()}", limit=1,
            lease_seconds=self.lease_seconds,
            max_attempts=self.retries + 1,
        )
        if not claimed:
            return
        row = claimed[0]
        payload = {
            "spec_json": row.spec_json,
            "seed": row.seed,
            "timeout": self.unit_timeout,
            "telemetry": self._telemetry,
        }
        try:
            document = execute_unit(payload)
        except Exception as exc:
            if row.attempts >= self.retries + 1:
                self._store.record_quarantine(
                    _row_unit(row), str(exc), attempts=row.attempts
                )
            else:
                self._store.release_unit(row.unit_id)
        else:
            self._store.record_result(
                _row_unit(row), document, attempts=row.attempts
            )

    def poll(self, timeout: float = 0.1) -> list[UnitOutcome]:
        if self.workers == 0:
            self._inline_drain_step()
        out = self._collect_settled()
        if self.workers > 0:
            self._reap_and_respawn()
            if not out and not self.done():
                time.sleep(min(timeout, 0.1))
                out = self._collect_settled()
        return out

    def _collect_settled(self) -> list[UnitOutcome]:
        fresh = [uid for uid, seen in self._watch.items() if not seen]
        out: list[UnitOutcome] = []
        if not fresh:
            return out
        for row in self._store.units():
            if row.unit_id not in self._watch or self._watch[row.unit_id]:
                continue
            if row.status == "done":
                import json as _json

                out.append(
                    UnitOutcome(
                        row.unit_id, ok=True, attempts=row.attempts,
                        result=_json.loads(row.result_json),
                    )
                )
                self._watch[row.unit_id] = True
            elif row.status == "quarantined":
                out.append(
                    UnitOutcome(
                        row.unit_id, ok=False, attempts=row.attempts,
                        error=row.error or "quarantined",
                    )
                )
                self._watch[row.unit_id] = True
        return out

    def _reap_and_respawn(self) -> None:
        live = [p for p in self._procs if p.is_alive()]
        died = len(self._procs) - len(live)
        self._procs = live
        if died and not self._cancelled and self.respawn_budget > 0:
            remaining = any(not seen for seen in self._watch.values())
            if remaining and not self._store.cancel_requested():
                n = min(died, self.respawn_budget)
                self.respawn_budget -= n
                self._spawn(n)

    def cancel(self) -> None:
        self._cancelled = True
        self._store.request_cancel()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="queue", parallel=self.workers != 1,
            supports_cancel=True, writes_store=True,
        )

    def done(self) -> bool:
        if all(self._watch.values()):
            return True
        if self._cancelled:
            return not any(p.is_alive() for p in self._procs)
        if self.workers == 0:
            # Inline mode is done when nothing is claimable any more
            # (cancelled, or every watched unit settled — handled above).
            return self._store.cancel_requested()
        if any(p.is_alive() for p in self._procs):
            return False
        # No live workers and unsettled units remain: done only once the
        # respawn budget is spent (poll respawns while budget lasts).
        return self.respawn_budget <= 0

    def close(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._procs = []
        if self._owns_store:
            self._store.close()


# --------------------------------------------------------------------- #
# registry

_BACKENDS = {
    "inprocess": InProcessBackend,
    "local": LocalPoolBackend,
    "queue": QueueBackend,
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, stable order (CLI choices, docs)."""
    return tuple(_BACKENDS)


def make_backend(name: str, **options) -> ExecutionBackend:
    """Build a backend by registry name.

    *options* are forwarded to the backend constructor; unknown names
    raise :class:`~repro.util.errors.ConfigurationError` listing the
    taxonomy, so CLI/service errors teach the valid choices.
    """
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return cls(**options)
