"""Durable campaign orchestration: units, store, pool, resumable sweeps.

Public surface:

- :class:`~repro.orchestrator.units.WorkUnit` / :func:`~repro.orchestrator.units.unit_id`
  — content-hashed identity of one (spec, seed) repetition;
- :class:`~repro.orchestrator.store.RunStore` — SQLite-WAL checkpoint
  database with idempotent upserts and JSONL/CSV export;
- :class:`~repro.orchestrator.pool.WorkerPool` — fault-contained execution
  (timeout, retry, quarantine);
- :class:`~repro.orchestrator.runner.OrchestrationContext` +
  :func:`~repro.orchestrator.context.use_orchestrator` — the ambient
  campaign pipeline every sweep routes through;
- :class:`~repro.orchestrator.runner.CampaignInterrupted` — the budgeted
  interruption used by resumable/CI smoke runs.

See ``docs/ORCHESTRATION.md`` for the unit model, store schema, and
resume/retry semantics.

Attribute access is lazy (PEP 562): :mod:`repro.analysis.experiment`
imports :mod:`repro.orchestrator.context` at module load, so the package
root must not eagerly import the runner (which imports the experiment
layer back).
"""

from __future__ import annotations

from repro.orchestrator.context import current_orchestrator, use_orchestrator

__all__ = [
    "SCHEMA_VERSION",
    "WorkUnit",
    "unit_id",
    "content_unit_id",
    "RunStore",
    "UnitRow",
    "STORE_SCHEMA_VERSION",
    "WorkerPool",
    "QuarantinedUnit",
    "OrchestrationContext",
    "CampaignInterrupted",
    "execute_unit",
    "result_to_dict",
    "result_from_dict",
    "current_orchestrator",
    "use_orchestrator",
]

_LAZY = {
    "SCHEMA_VERSION": "repro.orchestrator.units",
    "WorkUnit": "repro.orchestrator.units",
    "unit_id": "repro.orchestrator.units",
    "content_unit_id": "repro.orchestrator.units",
    "RunStore": "repro.orchestrator.store",
    "UnitRow": "repro.orchestrator.store",
    "STORE_SCHEMA_VERSION": "repro.orchestrator.store",
    "WorkerPool": "repro.orchestrator.pool",
    "QuarantinedUnit": "repro.orchestrator.pool",
    "OrchestrationContext": "repro.orchestrator.runner",
    "CampaignInterrupted": "repro.orchestrator.runner",
    "execute_unit": "repro.orchestrator.runner",
    "result_to_dict": "repro.orchestrator.results",
    "result_from_dict": "repro.orchestrator.results",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
