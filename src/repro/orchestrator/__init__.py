"""Durable campaign orchestration: units, store, pool, resumable sweeps.

Public surface:

- :class:`~repro.orchestrator.units.WorkUnit` / :func:`~repro.orchestrator.units.unit_id`
  — content-hashed identity of one (spec, seed) repetition;
- :class:`~repro.orchestrator.store.RunStore` — SQLite-WAL checkpoint
  database with idempotent upserts and JSONL/CSV export;
- :class:`~repro.orchestrator.backend.ExecutionBackend` and its
  implementations (``inprocess`` / ``local`` / ``queue``) — the pluggable
  execution engines behind every campaign (the fault-contained
  :class:`~repro.orchestrator.pool.WorkerPool` powers the default
  ``local`` backend);
- :class:`~repro.orchestrator.runner.OrchestrationContext` +
  :func:`~repro.orchestrator.context.use_orchestrator` — the ambient
  campaign pipeline every sweep routes through;
- :class:`~repro.orchestrator.runner.CampaignInterrupted` — the budgeted
  interruption used by resumable/CI smoke runs.

See ``docs/ORCHESTRATION.md`` for the unit model, store schema, and
resume/retry semantics.

Attribute access is lazy (PEP 562): :mod:`repro.analysis.experiment`
imports :mod:`repro.orchestrator.context` at module load, so the package
root must not eagerly import the runner (which imports the experiment
layer back).
"""

from __future__ import annotations

from repro.orchestrator.context import current_orchestrator, use_orchestrator

__all__ = [
    "SCHEMA_VERSION",
    "WorkUnit",
    "unit_id",
    "content_unit_id",
    "RunStore",
    "UnitRow",
    "STORE_SCHEMA_VERSION",
    "WorkerPool",
    "QuarantinedUnit",
    "ExecutionBackend",
    "BackendCapabilities",
    "UnitOutcome",
    "InProcessBackend",
    "LocalPoolBackend",
    "QueueBackend",
    "available_backends",
    "make_backend",
    "OrchestrationContext",
    "CampaignInterrupted",
    "execute_unit",
    "result_to_dict",
    "result_from_dict",
    "current_orchestrator",
    "use_orchestrator",
]

_LAZY = {
    "SCHEMA_VERSION": "repro.orchestrator.units",
    "WorkUnit": "repro.orchestrator.units",
    "unit_id": "repro.orchestrator.units",
    "content_unit_id": "repro.orchestrator.units",
    "RunStore": "repro.orchestrator.store",
    "UnitRow": "repro.orchestrator.store",
    "STORE_SCHEMA_VERSION": "repro.orchestrator.store",
    "QuarantinedUnit": "repro.orchestrator.pool",
    "ExecutionBackend": "repro.orchestrator.backend",
    "BackendCapabilities": "repro.orchestrator.backend",
    "UnitOutcome": "repro.orchestrator.backend",
    "InProcessBackend": "repro.orchestrator.backend",
    "LocalPoolBackend": "repro.orchestrator.backend",
    "QueueBackend": "repro.orchestrator.backend",
    "available_backends": "repro.orchestrator.backend",
    "make_backend": "repro.orchestrator.backend",
    "OrchestrationContext": "repro.orchestrator.runner",
    "CampaignInterrupted": "repro.orchestrator.runner",
    "execute_unit": "repro.orchestrator.runner",
    "result_to_dict": "repro.orchestrator.results",
    "result_from_dict": "repro.orchestrator.results",
}


def __getattr__(name: str):
    if name == "WorkerPool":
        # Still fully supported as the engine of the "local" backend —
        # but driving it directly skips checkpointing, resume, and the
        # backend taxonomy, so steer new code to the campaign surface.
        import warnings

        warnings.warn(
            "importing WorkerPool from repro.orchestrator is deprecated; "
            "use repro.api.submit_campaign(..., backend='local') or "
            "OrchestrationContext(backend=...) — for the raw pool, import "
            "repro.orchestrator.pool.WorkerPool explicitly",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.orchestrator.pool import WorkerPool

        return WorkerPool
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
