"""Lossless JSON serialization of :class:`~repro.analysis.experiment.RunResult`.

The :class:`~repro.orchestrator.store.RunStore` persists one JSON document
per completed work unit.  Round-tripping must be *exact* — resumed
campaigns are required to be bit-identical to cold runs — which holds
because every payload is float64/int/bool and Python's ``json`` emits
shortest-round-trip ``repr`` floats.  To keep that guarantee structural
rather than accidental, the orchestrator always hands results through this
round trip (fresh results included), so a resumed aggregate can never see
different bits than the cold aggregate did.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np

from repro.analysis.experiment import ExperimentSpec, RunResult, RunStats
from repro.telemetry.core import TelemetrySummary

__all__ = ["result_to_dict", "result_from_dict"]

_SERIES = (
    "delivery_ratios",
    "mean_actual_ranges",
    "mean_extended_ranges",
    "mean_logical_degrees",
    "mean_physical_degrees",
)


def result_to_dict(result: RunResult) -> dict:
    """JSON-ready form of one run's per-sample series and counters.

    The spec and seed are *not* embedded — the store keys the document by
    unit ID and keeps both alongside it.
    """
    stats = result.stats
    stats_dict = {
        f.name: getattr(stats, f.name)
        for f in fields(RunStats)
        if f.name != "telemetry"
    }
    stats_dict["telemetry"] = (
        stats.telemetry.as_dict() if stats.telemetry is not None else None
    )
    return {
        "series": {
            **{name: [float(x) for x in getattr(result, name)] for name in _SERIES},
            "strict_connected": [bool(x) for x in result.strict_connected],
        },
        "stats": stats_dict,
    }


def result_from_dict(spec: ExperimentSpec, seed: int, data: dict) -> RunResult:
    """Rebuild the exact :class:`RunResult` a worker produced."""
    series = data["series"]
    stats_dict = dict(data["stats"])
    telemetry = stats_dict.pop("telemetry", None)
    stats = RunStats(
        **stats_dict,
        telemetry=TelemetrySummary.from_dict(telemetry)
        if telemetry is not None
        else None,
    )
    return RunResult(
        spec=spec,
        seed=seed,
        **{name: np.asarray(series[name], dtype=float) for name in _SERIES},
        strict_connected=np.asarray(series["strict_connected"], dtype=bool),
        stats=stats,
    )
