"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ScheduleError",
    "ProtocolError",
    "ViewError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment / simulation parameter is out of its valid domain."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation entered an invalid state."""


class ScheduleError(SimulationError):
    """An event was scheduled into the past or after the engine stopped."""


class ProtocolError(ReproError, RuntimeError):
    """A topology control protocol was misused or produced invalid output."""


class ViewError(ReproError, RuntimeError):
    """A local view was queried for information it does not hold."""
