"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ScheduleError",
    "ProtocolError",
    "ViewError",
    "DenseMaterializationError",
    "WorkUnitError",
    "UnitTimeoutError",
    "OrchestrationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment / simulation parameter is out of its valid domain."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation entered an invalid state."""


class ScheduleError(SimulationError):
    """An event was scheduled into the past or after the engine stopped."""


class ProtocolError(ReproError, RuntimeError):
    """A topology control protocol was misused or produced invalid output."""


class ViewError(ReproError, RuntimeError):
    """A local view was queried for information it does not hold."""


class DenseMaterializationError(ReproError, RuntimeError):
    """A lazy dense ``(n, n)`` matrix was requested above the size limit.

    Raised by :class:`repro.sim.world.WorldSnapshot` when code asks for
    ``dist`` / ``logical`` on a snapshot larger than
    ``DENSE_MATERIALIZE_LIMIT`` nodes — the guard that turns an accidental
    multi-gigabyte allocation at scale into an explicit error pointing at
    the sparse API.
    """


class WorkUnitError(ReproError, RuntimeError):
    """One (spec, seed) work unit failed in a worker.

    Raised instead of a bare pickled worker traceback so the error names
    the failing unit.  Constructed with ``(label, seed, message)`` and
    kept pickle-round-trippable (multiprocessing re-raises it in the
    parent via ``__init__(*args)``).
    """

    def __init__(self, label: str, seed: int, message: str) -> None:
        super().__init__(label, seed, message)
        self.label = label
        self.seed = seed
        self.message = message

    def __str__(self) -> str:
        return f"work unit {self.label!r} (seed {self.seed}) failed: {self.message}"


class UnitTimeoutError(WorkUnitError):
    """A work unit exceeded its per-unit wall-clock budget."""


class OrchestrationError(ReproError, RuntimeError):
    """A campaign could not produce results (e.g. every unit quarantined)."""
