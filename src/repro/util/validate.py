"""Small argument-validation helpers.

These keep public entry points honest without littering the hot paths:
validation happens once at configuration time, never per event.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.util.errors import ConfigurationError

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "check_int_range",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite number strictly greater than zero."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Validate that *value* is a finite number greater than or equal to zero."""
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value >= 0):
        raise ConfigurationError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not (isinstance(value, (int, float)) and 0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_in(name: str, value: object, allowed: Sequence[object]) -> object:
    """Validate that *value* is one of *allowed*."""
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value


def check_int_range(name: str, value: int, low: int, high: int | None = None) -> int:
    """Validate that *value* is an int with ``low <= value`` (``<= high`` if given)."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < low or (high is not None and value > high):
        bound = f"[{low}, {high}]" if high is not None else f">= {low}"
        raise ConfigurationError(f"{name} must be in {bound}, got {value!r}")
    return value
