"""Shared utilities: errors, validation, deterministic randomness."""

from repro.util.errors import (
    ConfigurationError,
    DenseMaterializationError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    ViewError,
)
from repro.util.randomness import SeedSequenceFactory
from repro.util.validate import (
    check_in,
    check_int_range,
    check_non_negative,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ScheduleError",
    "ProtocolError",
    "ViewError",
    "DenseMaterializationError",
    "SeedSequenceFactory",
    "require",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "check_int_range",
]
