"""Deterministic random-stream management.

Every stochastic component in a simulation (node placement, waypoint
choices, Hello jitter, clock skew, flood sources, ...) draws from its own
named child stream spawned from a single root seed.  Two runs with the same
root seed are bit-identical regardless of the order in which components
initialise, because child streams are derived from the *name*, not from the
draw order.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["SeedSequenceFactory", "child_rng"]


class SeedSequenceFactory:
    """Derive named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    root_seed:
        Root entropy for the whole simulation run.

    Examples
    --------
    >>> f = SeedSequenceFactory(42)
    >>> a = f.rng("placement")
    >>> b = f.rng("hello-jitter", 3)
    >>> a is not b
    True
    >>> f2 = SeedSequenceFactory(42)
    >>> float(f2.rng("placement").random()) == float(
    ...     SeedSequenceFactory(42).rng("placement").random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed this factory was created with."""
        return self._root_seed

    def _spawn_key(self, *name_parts: object) -> tuple[int, ...]:
        # Hash each part into a stable 32-bit word; crc32 is deterministic
        # across processes (unlike hash()) and fast.
        return tuple(
            zlib.crc32(repr(part).encode("utf-8")) & 0xFFFFFFFF for part in name_parts
        )

    def seed_sequence(self, *name_parts: object) -> np.random.SeedSequence:
        """Return the :class:`numpy.random.SeedSequence` for a named stream."""
        return np.random.SeedSequence(
            entropy=self._root_seed, spawn_key=self._spawn_key(*name_parts)
        )

    def rng(self, *name_parts: object) -> np.random.Generator:
        """Return an independent generator identified by *name_parts*."""
        return np.random.default_rng(self.seed_sequence(*name_parts))


def child_rng(rng: np.random.Generator, *_unused: object) -> np.random.Generator:
    """Spawn an independent child generator from *rng*.

    Thin wrapper kept for call-site readability; the child inherits the
    parent's bit-generator state lineage via ``Generator.spawn``.
    """
    return rng.spawn(1)[0]
