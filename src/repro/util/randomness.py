"""Deterministic random-stream management.

Every stochastic component in a simulation (node placement, waypoint
choices, Hello jitter, clock skew, flood sources, ...) draws from its own
named child stream spawned from a single root seed.  Two runs with the same
root seed are bit-identical regardless of the order in which components
initialise, because child streams are derived from the *name*, not from the
draw order.
"""

from __future__ import annotations

import warnings
import zlib

import numpy as np

__all__ = ["SeedSequenceFactory", "child_rng"]

_SENTINEL = object()


class SeedSequenceFactory:
    """Derive named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root entropy for the whole simulation run.  The pre-1.1 keyword
        spelling ``root_seed`` is still accepted but deprecated (every
        seed-typed argument in the package is now spelled ``seed``).

    Examples
    --------
    >>> f = SeedSequenceFactory(42)
    >>> a = f.rng("placement")
    >>> b = f.rng("hello-jitter", 3)
    >>> a is not b
    True
    >>> f2 = SeedSequenceFactory(42)
    >>> float(f2.rng("placement").random()) == float(
    ...     SeedSequenceFactory(42).rng("placement").random())
    True
    """

    def __init__(
        self, seed: int | None = None, *, root_seed: object = _SENTINEL
    ) -> None:
        if root_seed is not _SENTINEL:
            if seed is not None:
                raise TypeError(
                    "pass either seed or the deprecated root_seed, not both"
                )
            warnings.warn(
                "SeedSequenceFactory(root_seed=...) is deprecated and will be "
                "removed in repro 2.0; use seed=...",
                FutureWarning,
                stacklevel=2,
            )
            seed = root_seed  # type: ignore[assignment]
        if seed is None:
            raise TypeError("SeedSequenceFactory() missing required argument: seed")
        self._root_seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._root_seed

    @property
    def root_seed(self) -> int:
        """Deprecated alias of :attr:`seed` (read-only)."""
        warnings.warn(
            "SeedSequenceFactory.root_seed is deprecated and will be removed "
            "in repro 2.0; use .seed",
            FutureWarning,
            stacklevel=2,
        )
        return self._root_seed

    def _spawn_key(self, *name_parts: object) -> tuple[int, ...]:
        # Hash each part into a stable 32-bit word; crc32 is deterministic
        # across processes (unlike hash()) and fast.
        return tuple(
            zlib.crc32(repr(part).encode("utf-8")) & 0xFFFFFFFF for part in name_parts
        )

    def seed_sequence(self, *name_parts: object) -> np.random.SeedSequence:
        """Return the :class:`numpy.random.SeedSequence` for a named stream."""
        return np.random.SeedSequence(
            entropy=self._root_seed, spawn_key=self._spawn_key(*name_parts)
        )

    def rng(self, *name_parts: object) -> np.random.Generator:
        """Return an independent generator identified by *name_parts*."""
        return np.random.default_rng(self.seed_sequence(*name_parts))


def child_rng(rng: np.random.Generator, *_unused: object) -> np.random.Generator:
    """Spawn an independent child generator from *rng*.

    Thin wrapper kept for call-site readability; the child inherits the
    parent's bit-generator state lineage via ``Generator.spawn``.
    """
    return rng.spawn(1)[0]
