"""Stable high-level API: one import for the common library workflows.

``repro.api`` is the supported front door for scripting against the
package.  It re-exports the handful of names that cover the three
standard workflows — declare and run experiments, trace runs to disk,
and observe runs with telemetry — and adds :func:`simulate`, a one-call
convenience wrapper that builds the world, runs it, and returns the
typed :class:`RunStats` alongside the per-sample series.

Everything here is importable from its home module too; this facade only
promises that *these* spellings stay stable across minor versions:

>>> from repro.api import ExperimentSpec, simulate
>>> from repro.sim import ScenarioConfig
>>> result = simulate(ExperimentSpec(
...     config=ScenarioConfig(n_nodes=20, duration=6.0, sample_rate=1.0)))
>>> isinstance(result.stats.hello_messages, int)
True
"""

from __future__ import annotations

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    RunResult,
    RunStats,
    build_manager,
    build_mobility,
    build_world,
    run_once,
    run_repetitions,
)
from repro.faults.schedule import FaultSchedule
from repro.sim.config import ScenarioConfig
from repro.sim.trace import SimulationTrace, TraceRecorder
from repro.sim.world import NetworkWorld
from repro.telemetry import (
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    TelemetrySummary,
    use_telemetry,
)

__all__ = [
    # experiments
    "ExperimentSpec",
    "ScenarioConfig",
    "RunStats",
    "RunResult",
    "AggregateResult",
    "simulate",
    "run_once",
    "run_repetitions",
    "build_manager",
    "build_mobility",
    "build_world",
    "NetworkWorld",
    # faults
    "FaultSchedule",
    # tracing
    "TraceRecorder",
    "SimulationTrace",
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "TelemetrySummary",
    "MetricsRegistry",
    "use_telemetry",
]


def simulate(
    spec: ExperimentSpec,
    seed: int = 0,
    faults: FaultSchedule | None = None,
    telemetry: Telemetry | None = None,
) -> RunResult:
    """Run one simulation of *spec* end to end and return its results.

    A readable alias of :func:`run_once` for scripting: builds the fully
    wired world (mobility, radio, topology control, optional faults and
    telemetry), advances it through every sampling instant, and returns
    the :class:`RunResult` whose ``stats`` field is the typed
    :class:`RunStats` record.

    Parameters
    ----------
    spec:
        The experiment configuration to realise.
    seed:
        Root seed; equal ``(spec, seed, faults)`` replays bit-identically.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` to arm.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` collector; its
        frozen summary lands in ``result.stats.telemetry``.
    """
    return run_once(spec, seed=seed, faults=faults, telemetry=telemetry)
