"""Stable high-level API: one import for the common library workflows.

``repro.api`` is the supported front door for scripting against the
package.  It re-exports the handful of names that cover the four
standard workflows — declare and run experiments, trace runs to disk,
observe runs with telemetry, and submit durable campaigns — and adds
two one-call conveniences: :func:`simulate` (build the world, run it,
return the typed :class:`RunStats` alongside the per-sample series)
and :func:`submit_campaign` (run a multi-spec sweep through any
execution backend and get a :class:`CampaignHandle` with
``status()`` / ``result()`` / ``cancel()``).

Everything here is importable from its home module too; this facade only
promises that *these* spellings stay stable across minor versions:

>>> from repro.api import ExperimentSpec, simulate
>>> from repro.sim import ScenarioConfig
>>> result = simulate(ExperimentSpec(
...     config=ScenarioConfig(n_nodes=20, duration=6.0, sample_rate=1.0)))
>>> isinstance(result.stats.hello_messages, int)
True
"""

from __future__ import annotations

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    RunResult,
    RunStats,
    build_manager,
    build_mobility,
    build_world,
    run_once,
    run_repetitions,
)
from repro.faults.schedule import FaultSchedule
from repro.sim.config import ScenarioConfig
from repro.sim.trace import SimulationTrace, TraceRecorder
from repro.sim.world import NetworkWorld
from repro.orchestrator.backend import (
    ExecutionBackend,
    available_backends,
    make_backend,
)
from repro.telemetry import (
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    TelemetrySummary,
    use_telemetry,
)

__all__ = [
    # experiments
    "ExperimentSpec",
    "ScenarioConfig",
    "RunStats",
    "RunResult",
    "AggregateResult",
    "simulate",
    "run_once",
    "run_repetitions",
    "build_manager",
    "build_mobility",
    "build_world",
    "NetworkWorld",
    # faults
    "FaultSchedule",
    # tracing
    "TraceRecorder",
    "SimulationTrace",
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "TelemetrySummary",
    "MetricsRegistry",
    "use_telemetry",
    # campaigns
    "submit_campaign",
    "CampaignHandle",
    "CampaignStatus",
    "ExecutionBackend",
    "available_backends",
    "make_backend",
]


def simulate(
    spec: ExperimentSpec,
    seed: int = 0,
    faults: FaultSchedule | None = None,
    telemetry: Telemetry | None = None,
) -> RunResult:
    """Run one simulation of *spec* end to end and return its results.

    A readable alias of :func:`run_once` for scripting: builds the fully
    wired world (mobility, radio, topology control, optional faults and
    telemetry), advances it through every sampling instant, and returns
    the :class:`RunResult` whose ``stats`` field is the typed
    :class:`RunStats` record.

    Parameters
    ----------
    spec:
        The experiment configuration to realise.
    seed:
        Root seed; equal ``(spec, seed, faults)`` replays bit-identically.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` to arm.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` collector; its
        frozen summary lands in ``result.stats.telemetry``.
    """
    return run_once(spec, seed=seed, faults=faults, telemetry=telemetry)


# --------------------------------------------------------------------- #
# campaigns


class CampaignStatus:
    """Point-in-time snapshot of a submitted campaign.

    ``state`` is one of ``running`` / ``done`` / ``cancelled`` /
    ``interrupted`` / ``failed``; the unit tallies mirror the underlying
    :class:`~repro.orchestrator.runner.OrchestrationContext`.
    """

    __slots__ = (
        "state", "executed_units", "resumed_units", "quarantined_units",
        "error",
    )

    def __init__(
        self,
        state: str,
        executed_units: int,
        resumed_units: int,
        quarantined_units: int,
        error: str | None = None,
    ) -> None:
        self.state = state
        self.executed_units = executed_units
        self.resumed_units = resumed_units
        self.quarantined_units = quarantined_units
        self.error = error

    def __repr__(self) -> str:
        return (
            f"CampaignStatus(state={self.state!r}, "
            f"executed={self.executed_units}, resumed={self.resumed_units}, "
            f"quarantined={self.quarantined_units})"
        )


class CampaignHandle:
    """Live handle on a campaign started by :func:`submit_campaign`.

    The campaign runs on a background thread; the handle exposes
    :meth:`status` (non-blocking snapshot), :meth:`result` (block until
    terminal, return one :class:`AggregateResult` per spec), and
    :meth:`cancel` (cooperative stop — in-flight units finish and
    checkpoint, the campaign ends ``cancelled``; resubmitting against
    the same store resumes).
    """

    def __init__(self, context, specs, thread) -> None:
        self._context = context
        self._specs = specs
        self._thread = thread
        self._state = "running"
        self._error: str | None = None
        self._aggregates: list[AggregateResult] | None = None

    # Written only by the campaign thread (see submit_campaign).

    def status(self) -> CampaignStatus:
        """Snapshot the campaign without blocking."""
        return CampaignStatus(
            state=self._state,
            executed_units=self._context.executed_units,
            resumed_units=self._context.resumed_units,
            quarantined_units=len(self._context.quarantined),
            error=self._error,
        )

    def done(self) -> bool:
        """Whether the campaign has reached a terminal state."""
        return not self._thread.is_alive()

    def cancel(self) -> None:
        """Cooperatively stop the campaign (idempotent)."""
        self._context.cancel()

    def result(self, timeout: float | None = None) -> list[AggregateResult]:
        """Block until terminal; one :class:`AggregateResult` per spec.

        Raises the campaign's terminal exception when it did not finish
        cleanly — :class:`~repro.orchestrator.runner.CampaignInterrupted`
        after :meth:`cancel` or an exhausted unit budget (completed work
        is checkpointed either way).
        """
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"campaign still {self._state!r} after {timeout:g}s"
            )
        if self._raise is not None:
            raise self._raise
        assert self._aggregates is not None
        return self._aggregates

    _raise: BaseException | None = None


def submit_campaign(
    specs: list[ExperimentSpec] | ExperimentSpec,
    repetitions: int = 5,
    base_seed: int = 1000,
    *,
    backend: "str | ExecutionBackend" = "local",
    store: str | None = None,
    workers: int = 1,
    retries: int = 1,
    unit_timeout: float | None = None,
    resume: bool = True,
    max_units: int | None = None,
    telemetry: Telemetry | None = None,
) -> CampaignHandle:
    """Run a durable sweep through an execution backend; return a handle.

    Every ``(spec, seed)`` pair becomes a content-hashed work unit
    executed by *backend* (``"inprocess"`` — synchronous reference;
    ``"local"`` — the fault-contained worker pool, the default;
    ``"queue"`` — work-stealing worker processes over the shared
    *store*; or a ready :class:`ExecutionBackend` instance).  Results
    are bit-identical across backends and worker counts — seeds, not
    schedulers, define every simulation.

    With *store* set, units checkpoint as they complete and *resume*
    skips ones already done — a cancelled or crashed campaign picks up
    where it left off.  ``backend="queue"`` requires a store (the store
    *is* the queue).

    The campaign runs on a daemon thread; use the returned
    :class:`CampaignHandle` to poll :meth:`~CampaignHandle.status`,
    block on :meth:`~CampaignHandle.result`, or
    :meth:`~CampaignHandle.cancel`.
    """
    import threading

    from repro.analysis.experiment import aggregate_runs
    from repro.orchestrator.runner import OrchestrationContext
    from repro.orchestrator.store import RunStore

    spec_list = [specs] if isinstance(specs, ExperimentSpec) else list(specs)
    if not spec_list:
        raise ValueError("submit_campaign needs at least one spec")
    context = OrchestrationContext(
        store=None,
        workers=workers,
        retries=retries,
        unit_timeout=unit_timeout,
        resume=resume,
        max_units=max_units,
        backend=backend,
    )
    handle: CampaignHandle

    def _run() -> None:
        run_store = RunStore(store) if store is not None else None
        context.store = run_store
        try:
            if telemetry is not None:
                with use_telemetry(telemetry), context:
                    grouped = context.run_spec_batch(
                        spec_list, repetitions, base_seed
                    )
            else:
                with context:
                    grouped = context.run_spec_batch(
                        spec_list, repetitions, base_seed
                    )
            handle._aggregates = [
                aggregate_runs(spec, runs, n_repetitions=repetitions)
                for spec, runs in zip(spec_list, grouped)
            ]
            handle._state = "done"
        except BaseException as exc:  # noqa: BLE001 - re-raised in result()
            from repro.orchestrator.runner import CampaignInterrupted

            handle._raise = exc
            if isinstance(exc, CampaignInterrupted):
                handle._state = (
                    "cancelled" if context.cancelled else "interrupted"
                )
            else:
                handle._state = "failed"
                handle._error = f"{type(exc).__name__}: {exc}"
        finally:
            if run_store is not None:
                run_store.close()

    thread = threading.Thread(target=_run, name="repro-campaign", daemon=True)
    handle = CampaignHandle(context, spec_list, thread)
    thread.start()
    return handle


_DEPRECATED = {
    "run_repetitions_many": (
        "repro.api.run_repetitions_many is deprecated; use "
        "repro.api.submit_campaign(specs, ...).result() — same batched "
        "fan-out, plus checkpointing, resume, and backend choice"
    ),
    "WorkerPool": (
        "repro.api.WorkerPool is deprecated; use "
        "repro.api.submit_campaign(..., backend='local') — the pool still "
        "powers the 'local' backend, but campaigns add checkpointing and "
        "cancel; for the raw pool, import repro.orchestrator.pool.WorkerPool"
    ),
}


def __getattr__(name: str):
    message = _DEPRECATED.get(name)
    if message is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import warnings

    warnings.warn(message, DeprecationWarning, stacklevel=2)
    if name == "WorkerPool":
        from repro.orchestrator.pool import WorkerPool

        return WorkerPool
    from repro.analysis.experiment import run_repetitions_many

    return run_repetitions_many
