"""Hello messages and local views (Sections 3.1-3.2 of the paper).

A node never reads another node's true position: everything it knows
arrives in timestamped, versioned :class:`Hello` messages.  A
:class:`LocalView` freezes one Hello per view member (the paper's local
view); a :class:`MultiVersionView` retains the ``k`` most recent Hellos per
member and yields cost *sets* per link, the raw material of weak view
consistency (Definition 2).

View-consistency predicates (Definitions 1 and 2) live here too so that
tests and the consistency mechanisms share one authoritative definition.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostModel, DistanceCost
from repro.util.errors import ViewError

__all__ = [
    "Hello",
    "LocalView",
    "MultiVersionView",
    "link_cost",
    "views_consistent",
    "views_weakly_consistent",
]


@dataclass(frozen=True, slots=True)
class Hello:
    """One periodic "Hello" advertisement.

    Attributes
    ----------
    sender:
        Advertising node's ID.
    version:
        Monotone per-sender message number (1 = first); under the proactive
        strong-consistency scheme versions are globally aligned.
    position:
        Advertised (x, y) position at send time.
    sent_at:
        Physical (global simulation) send time — used by the omniscient
        metrics layer, never by protocol decisions.
    timestamp:
        Sender's local-clock reading at send time — what receivers see.
    """

    sender: int
    version: int
    position: tuple[float, float]
    sent_at: float
    timestamp: float

    def distance_to(self, other: "Hello") -> float:
        """Euclidean distance between two advertised positions."""
        return math.hypot(
            self.position[0] - other.position[0],
            self.position[1] - other.position[1],
        )


def link_cost(a: Hello, b: Hello, cost_model: CostModel) -> float:
    """Cost of link (a.sender, b.sender) as seen from these two Hellos."""
    return float(cost_model.from_distance(a.distance_to(b)))


class LocalView:
    """A single-version local view: one Hello per member, plus the owner's.

    Parameters
    ----------
    owner:
        The deciding node's ID.
    own_hello:
        The owner's position record used for its decisions.  In baseline
        mode this is a fresh Hello at the current true position; under view
        synchronization it is the owner's *last advertised* Hello (the
        paper is explicit that the node "must use its previous location
        advertised in the last Hello").
    neighbor_hellos:
        Most recent retained Hello per 1-hop neighbor.
    normal_range:
        The (large) normal transmission range; pairs further apart than
        this are not links of the view.
    sampled_at:
        Physical time at which the view was frozen.
    """

    __slots__ = ("owner", "own_hello", "neighbor_hellos", "normal_range", "sampled_at")

    def __init__(
        self,
        owner: int,
        own_hello: Hello,
        neighbor_hellos: Mapping[int, Hello],
        normal_range: float,
        sampled_at: float,
    ) -> None:
        if own_hello.sender != owner:
            raise ViewError(
                f"own_hello.sender={own_hello.sender} does not match owner={owner}"
            )
        if owner in neighbor_hellos:
            raise ViewError(f"owner {owner} cannot be its own neighbor")
        self.owner = owner
        self.own_hello = own_hello
        self.neighbor_hellos = dict(neighbor_hellos)
        self.normal_range = float(normal_range)
        self.sampled_at = float(sampled_at)

    @property
    def members(self) -> list[int]:
        """All node IDs in the view: the owner first, then sorted neighbors."""
        return [self.owner, *sorted(self.neighbor_hellos)]

    def hello_of(self, node: int) -> Hello:
        """The Hello record of *node* within this view."""
        if node == self.owner:
            return self.own_hello
        try:
            return self.neighbor_hellos[node]
        except KeyError:
            raise ViewError(f"node {node} is not in the view of {self.owner}") from None

    def position_of(self, node: int) -> tuple[float, float]:
        """Advertised position of *node* within this view."""
        return self.hello_of(node).position

    def positions(self) -> tuple[list[int], np.ndarray]:
        """(member IDs, ``(m, 2)`` positions) in a fixed, reproducible order."""
        ids = self.members
        pts = np.array([self.hello_of(i).position for i in ids], dtype=np.float64)
        return ids, pts

    def has_link(self, u: int, v: int) -> bool:
        """True iff (u, v) is a link of this view (distinct members within range)."""
        if u == v:
            return False
        return self.hello_of(u).distance_to(self.hello_of(v)) <= self.normal_range

    def distance(self, u: int, v: int) -> float:
        """Advertised distance between two view members."""
        return self.hello_of(u).distance_to(self.hello_of(v))

    def __contains__(self, node: int) -> bool:
        return node == self.owner or node in self.neighbor_hellos

    def __len__(self) -> int:
        return 1 + len(self.neighbor_hellos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalView(owner={self.owner}, neighbors={sorted(self.neighbor_hellos)}, "
            f"t={self.sampled_at:.3f})"
        )


class MultiVersionView:
    """A local view retaining up to ``k`` recent Hellos per member.

    The cost of a link (u, v) is no longer a scalar but the *set* of costs
    over all retained position pairs; :meth:`cost_bounds` exposes the
    ``cMin`` / ``cMax`` bounds the enhanced link-removal conditions use
    (Section 4.2).
    """

    __slots__ = ("owner", "own_hellos", "neighbor_hellos", "normal_range", "sampled_at")

    def __init__(
        self,
        owner: int,
        own_hellos: Iterable[Hello],
        neighbor_hellos: Mapping[int, Iterable[Hello]],
        normal_range: float,
        sampled_at: float,
    ) -> None:
        self.owner = owner
        self.own_hellos = tuple(own_hellos)
        if not self.own_hellos:
            raise ViewError("MultiVersionView requires at least one own Hello")
        if any(h.sender != owner for h in self.own_hellos):
            raise ViewError("own_hellos must all be sent by the owner")
        self.neighbor_hellos = {
            nid: tuple(hs) for nid, hs in neighbor_hellos.items() if nid != owner
        }
        for nid, hs in self.neighbor_hellos.items():
            if not hs:
                raise ViewError(f"neighbor {nid} has an empty Hello history")
            if any(h.sender != nid for h in hs):
                raise ViewError(f"history of neighbor {nid} contains foreign Hellos")
        self.normal_range = float(normal_range)
        self.sampled_at = float(sampled_at)

    @property
    def members(self) -> list[int]:
        """All node IDs in the view: the owner first, then sorted neighbors."""
        return [self.owner, *sorted(self.neighbor_hellos)]

    def hellos_of(self, node: int) -> tuple[Hello, ...]:
        """All retained Hellos of *node*, oldest first."""
        if node == self.owner:
            return self.own_hellos
        try:
            return self.neighbor_hellos[node]
        except KeyError:
            raise ViewError(f"node {node} is not in the view of {self.owner}") from None

    def latest(self, node: int) -> Hello:
        """Most recent retained Hello of *node*."""
        return self.hellos_of(node)[-1]

    def cost_set(self, u: int, v: int, cost_model: CostModel) -> list[float]:
        """The cost set ``Ce`` of link (u, v): costs over all position pairs."""
        return [
            link_cost(a, b, cost_model)
            for a in self.hellos_of(u)
            for b in self.hellos_of(v)
        ]

    def distance_bounds(self) -> tuple[list[int], np.ndarray, np.ndarray]:
        """(members, dist_low, dist_high) over all retained position pairs.

        ``dist_low[i, j]`` / ``dist_high[i, j]`` are the min / max distance
        between any retained position of member ``i`` and any of member
        ``j`` (zero on the diagonal).  Fully vectorized: one stacked
        distance matrix over every retained Hello, then grouped min/max
        reductions per member pair — no per-pair Python loop.  Because
        every cost model is strictly increasing in distance, cost bounds
        follow by applying the model to these matrices.
        """
        ids = self.members
        all_pts: list[tuple[float, float]] = []
        starts: list[int] = []
        for nid in ids:
            starts.append(len(all_pts))
            all_pts.extend(h.position for h in self.hellos_of(nid))
        pts = np.asarray(all_pts, dtype=np.float64)
        diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
        dist_all = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        bounds = np.asarray(starts)
        dist_low = np.minimum.reduceat(
            np.minimum.reduceat(dist_all, bounds, axis=0), bounds, axis=1
        )
        dist_high = np.maximum.reduceat(
            np.maximum.reduceat(dist_all, bounds, axis=0), bounds, axis=1
        )
        np.fill_diagonal(dist_low, 0.0)
        np.fill_diagonal(dist_high, 0.0)
        return ids, dist_low, dist_high

    def cost_bounds(self, u: int, v: int, cost_model: CostModel) -> tuple[float, float]:
        """(cMin, cMax) of link (u, v) in this view."""
        costs = self.cost_set(u, v, cost_model)
        return (min(costs), max(costs))

    def has_link(self, u: int, v: int) -> bool:
        """True iff (u, v) could be a link: some position pair within range.

        Weak consistency is conservative: a link is part of the view as
        long as *any* retained position pair supports it, so no decision is
        made on the assumption a possibly-present link is absent.
        """
        if u == v:
            return False
        return any(
            a.distance_to(b) <= self.normal_range
            for a in self.hellos_of(u)
            for b in self.hellos_of(v)
        )

    def to_local_view(self) -> LocalView:
        """Collapse to a single-version view using each member's latest Hello."""
        return LocalView(
            owner=self.owner,
            own_hello=self.own_hellos[-1],
            neighbor_hellos={nid: hs[-1] for nid, hs in self.neighbor_hellos.items()},
            normal_range=self.normal_range,
            sampled_at=self.sampled_at,
        )

    def __contains__(self, node: int) -> bool:
        return node == self.owner or node in self.neighbor_hellos

    def __len__(self) -> int:
        return 1 + len(self.neighbor_hellos)


def _view_links(view: LocalView) -> tuple[list[int], np.ndarray, np.ndarray]:
    """(member IDs, distance matrix, index pairs of links) of one view.

    Vectorized replacement for the old per-pair ``has_link`` scan: one
    dense distance matrix, one boolean mask, one ``nonzero``.
    """
    ids, pts = view.positions()
    diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    adj = dist <= view.normal_range
    np.fill_diagonal(adj, False)
    iu, iv = np.nonzero(np.triu(adj, k=1))
    return ids, dist, np.stack((iu, iv), axis=1)


def _iter_view_links(view: LocalView) -> Iterable[tuple[int, int]]:
    ids, _, pairs = _view_links(view)
    for i, j in pairs:
        yield (ids[i], ids[j])


def views_consistent(
    views: Iterable[LocalView],
    cost_model: CostModel | None = None,
    tol: float = 1e-9,
) -> bool:
    """Definition 1: every link has the same cost in all views containing it.

    Because every cost model is strictly increasing in distance, checking
    distances is equivalent to checking any particular cost model; *cost_model*
    is accepted for call-site clarity but does not change the verdict.
    """
    model = cost_model or DistanceCost()
    seen: dict[tuple[int, int], float] = {}
    for view in views:
        ids, dist, pairs = _view_links(view)
        if not pairs.size:
            continue
        costs = np.asarray(
            model.from_distance(dist[pairs[:, 0], pairs[:, 1]]), dtype=np.float64
        )
        for (i, j), c in zip(pairs.tolist(), costs.tolist()):
            u, v = ids[i], ids[j]
            key = (u, v) if u < v else (v, u)
            if key in seen and abs(seen[key] - c) > tol:
                return False
            seen.setdefault(key, c)
    return True


def views_weakly_consistent(
    views: Iterable[MultiVersionView],
    cost_model: CostModel | None = None,
) -> bool:
    """Definition 2: for every link, ``cMinMax >= cMaxMin`` across views.

    ``cMinMax`` is the smallest per-view cMax, ``cMaxMin`` the largest
    per-view cMin, over all views containing the link.  Per-view bounds
    come from :meth:`MultiVersionView.distance_bounds` (vectorized) and
    the cost model's monotonicity, exactly as the enhanced removal
    conditions consume them.
    """
    model = cost_model or DistanceCost()
    min_of_max: dict[tuple[int, int], float] = {}
    max_of_min: dict[tuple[int, int], float] = {}
    for view in views:
        ids, dist_low, dist_high = view.distance_bounds()
        adj = dist_low <= view.normal_range
        np.fill_diagonal(adj, False)
        iu, iv = np.nonzero(np.triu(adj, k=1))
        if not iu.size:
            continue
        lo = np.asarray(model.from_distance(dist_low[iu, iv]), dtype=np.float64)
        hi = np.asarray(model.from_distance(dist_high[iu, iv]), dtype=np.float64)
        for i, j, lo_c, hi_c in zip(iu.tolist(), iv.tolist(), lo.tolist(), hi.tolist()):
            u, v = ids[i], ids[j]
            key = (u, v) if u < v else (v, u)
            min_of_max[key] = min(min_of_max.get(key, math.inf), hi_c)
            max_of_min[key] = max(max_of_min.get(key, -math.inf), lo_c)
    return all(min_of_max[key] >= max_of_min[key] - 1e-12 for key in min_of_max)
