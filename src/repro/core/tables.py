"""Per-node neighbor tables: the Hello history behind every local view.

A :class:`NeighborTable` stores the ``k`` most recent Hellos per 1-hop
neighbor (plus the owner's own advertisement history) and materialises the
three kinds of views the paper's mechanisms need:

- the *latest* single-version view (baseline and view-synchronization),
- a *versioned* view using one global Hello version everywhere (proactive
  and reactive strong consistency, Theorem 2's ``|M(t, v)| = 1``),
- the *multi-version* view (weak consistency, Definition 2).
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.core.views import Hello, LocalView, MultiVersionView
from repro.util.errors import ViewError
from repro.util.validate import check_int_range, check_positive

__all__ = ["NeighborTable", "ColumnarNeighborTable"]

#: process-wide table identities for the decision-cache fingerprints
_TABLE_UIDS = itertools.count()


class NeighborTable:
    """Hello history of one node.

    Parameters
    ----------
    owner:
        Owning node's ID.
    normal_range:
        Normal transmission range (view link threshold).
    history_depth:
        How many recent Hellos to retain per neighbor (``k`` of Theorem 3).
    expiry:
        A neighbor whose most recent Hello is older than this many seconds
        is dropped from views (the paper's ``[t - Delta, t]`` link rule,
        with slack for jitter).
    """

    def __init__(
        self,
        owner: int,
        normal_range: float,
        history_depth: int = 3,
        expiry: float = 2.5,
    ) -> None:
        self.owner = owner
        self.normal_range = check_positive("normal_range", normal_range)
        self.history_depth = check_int_range("history_depth", history_depth, 1)
        self.expiry = check_positive("expiry", expiry)
        self._records: dict[int, deque[Hello]] = {}
        self._own: deque[Hello] = deque(maxlen=self.history_depth)
        self.hellos_received = 0
        #: unique per-instance identity + monotone content revision; together
        #: they identify the retained Hello state exactly (every mutation of
        #: the records or own history bumps ``mutations``), which is what the
        #: decision cache fingerprints instead of hashing all stored Hellos.
        self.uid = next(_TABLE_UIDS)
        self.mutations = 0

    # ------------------------------------------------------------------ #
    # recording

    def record_own(self, hello: Hello) -> None:
        """Remember a Hello the owner just advertised."""
        if hello.sender != self.owner:
            raise ViewError(f"record_own got a Hello from {hello.sender}, not {self.owner}")
        self._own.append(hello)
        self.mutations += 1

    def record_hello(self, hello: Hello) -> None:
        """Store a received neighbor Hello (keeps the newest ``k``)."""
        if hello.sender == self.owner:
            raise ViewError("a node does not receive its own Hello")
        queue = self._records.get(hello.sender)
        if queue is None:
            queue = deque(maxlen=self.history_depth)
            self._records[hello.sender] = queue
        queue.append(hello)
        self.hellos_received += 1
        self.mutations += 1

    def prune(self, now: float) -> None:
        """Drop neighbors not heard from within the expiry window."""
        stale = [
            nid for nid, q in self._records.items() if now - q[-1].sent_at > self.expiry
        ]
        for nid in stale:
            del self._records[nid]
        if stale:
            self.mutations += 1

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def last_advertised(self) -> Hello | None:
        """The owner's most recent own advertisement, if any."""
        return self._own[-1] if self._own else None

    @property
    def own_history(self) -> tuple[Hello, ...]:
        """The owner's retained advertisements, oldest first."""
        return tuple(self._own)

    def known_neighbors(self, now: float | None = None) -> list[int]:
        """IDs of neighbors with a live (non-expired) Hello."""
        if now is None:
            return sorted(self._records)
        return sorted(
            nid
            for nid, q in self._records.items()
            if now - q[-1].sent_at <= self.expiry
        )

    def history_of(self, neighbor: int) -> tuple[Hello, ...]:
        """Retained Hellos of one neighbor, oldest first."""
        queue = self._records.get(neighbor)
        return tuple(queue) if queue else ()

    def message_versions_in_use(self, neighbor: int) -> set[int]:
        """Versions of *neighbor*'s Hellos currently retained (``M(t, v)``)."""
        return {h.version for h in self.history_of(neighbor)}

    # ------------------------------------------------------------------ #
    # decision-cache tokens

    def live_view_token(self, now: float) -> tuple:
        """Hashable token identifying every expiry-filtered view at *now*.

        ``(uid, mutations)`` pins the exact retained Hello state (member
        ids, versions, advertised positions); the live-neighbor id tuple
        additionally pins which of those neighbors the ``[t - expiry, t]``
        rule admits, which can change with *now* alone.  Two equal tokens
        therefore guarantee :meth:`latest_view` and :meth:`multi_view`
        (up to the separately supplied own Hello) produce equal views.
        """
        return (
            self.uid,
            self.mutations,
            tuple(
                nid
                for nid, q in self._records.items()
                if now - q[-1].sent_at <= self.expiry
            ),
        )

    def full_token(self) -> tuple:
        """Hashable token identifying the complete retained Hello state.

        Versioned views ignore the expiry window, so ``(uid, mutations)``
        alone pins every :meth:`versioned_view` and the
        :meth:`available_versions` fallback resolution.
        """
        return (self.uid, self.mutations)

    # ------------------------------------------------------------------ #
    # view materialisation

    def latest_view(self, now: float, own_hello: Hello) -> LocalView:
        """Single-version view from each neighbor's most recent live Hello."""
        neighbors = {
            nid: q[-1]
            for nid, q in self._records.items()
            if now - q[-1].sent_at <= self.expiry
        }
        return LocalView(
            owner=self.owner,
            own_hello=own_hello,
            neighbor_hellos=neighbors,
            normal_range=self.normal_range,
            sampled_at=now,
        )

    def versioned_view(self, now: float, version: int) -> LocalView:
        """View built *only* from Hellos carrying the given global version.

        Neighbors with no retained Hello of that version are absent — the
        proactive scheme's rule that enforces ``|M(t, v)| = 1``.  The
        owner's own record must exist for that version.
        """
        own = next((h for h in self._own if h.version == version), None)
        if own is None:
            raise ViewError(
                f"node {self.owner} has not advertised version {version} yet"
            )
        neighbors: dict[int, Hello] = {}
        for nid, q in self._records.items():
            match = next((h for h in q if h.version == version), None)
            if match is not None:
                neighbors[nid] = match
        return LocalView(
            owner=self.owner,
            own_hello=own,
            neighbor_hellos=neighbors,
            normal_range=self.normal_range,
            sampled_at=now,
        )

    def available_versions(self) -> set[int]:
        """Versions for which the owner has advertised (candidates for views)."""
        return {h.version for h in self._own}

    def multi_view(self, now: float, own_hello: Hello | None = None) -> MultiVersionView:
        """Multi-version view over all retained live Hellos (weak consistency).

        The owner contributes its advertisement history; *own_hello*, when
        given, is appended as the freshest own record (a node always knows
        where it is *now* — but under weak consistency its neighbors may be
        using any of its retained advertisements, hence the history).
        """
        own = list(self._own)
        if own_hello is not None:
            own.append(own_hello)
        if not own:
            raise ViewError(f"node {self.owner} has no own position record")
        neighbors = {
            nid: tuple(q)
            for nid, q in self._records.items()
            if now - q[-1].sent_at <= self.expiry
        }
        return MultiVersionView(
            owner=self.owner,
            own_hellos=own,
            neighbor_hellos=neighbors,
            normal_range=self.normal_range,
            sampled_at=now,
        )


class ColumnarNeighborTable(NeighborTable):
    """Per-node facade over a world-level columnar :class:`NeighborState`.

    Behaviourally identical to :class:`NeighborTable` — same tokens, same
    views, same counter rules, same insertion orderings — but received
    Hellos live in the shared struct-of-arrays storage
    (:class:`~repro.core.neighbor_state.NeighborState`), which the batched
    delivery pipeline updates with one vectorized splice per transmission
    instead of one Python call per receiver.  The owner's *own*
    advertisement history stays in this object (it is written once per
    Hello, never per receiver).

    Parameters are those of :class:`NeighborTable` plus *state*, the
    shared columnar store; ``history_depth`` must match the store's.
    """

    def __init__(
        self,
        owner: int,
        normal_range: float,
        state,
        history_depth: int = 3,
        expiry: float = 2.5,
    ) -> None:
        if history_depth != state.k:
            raise ViewError(
                f"table history_depth={history_depth} does not match the "
                f"columnar store's k={state.k}"
            )
        self._state = state
        super().__init__(owner, normal_range, history_depth, expiry)

    # -- counters live in the shared per-node arrays ------------------- #

    @property
    def hellos_received(self) -> int:  # type: ignore[override]
        return int(self._state.hellos_received[self.owner])

    @hellos_received.setter
    def hellos_received(self, value: int) -> None:
        self._state.hellos_received[self.owner] = value

    @property
    def mutations(self) -> int:  # type: ignore[override]
        return int(self._state.mutations[self.owner])

    @mutations.setter
    def mutations(self, value: int) -> None:
        self._state.mutations[self.owner] = value

    # -- recording ------------------------------------------------------ #

    def record_hello(self, hello: Hello) -> None:
        """Scalar reception path (kept for API/test parity; the simulator
        delivers through :meth:`NeighborState.record_batch` instead)."""
        if hello.sender == self.owner:
            raise ViewError("a node does not receive its own Hello")
        self._state.record_one(self.owner, hello)

    def prune(self, now: float) -> None:
        self._state.prune(self.owner, now, self.expiry)

    # -- introspection --------------------------------------------------- #

    def known_neighbors(self, now: float | None = None) -> list[int]:
        if now is None:
            return sorted(self._state.senders(self.owner))
        return sorted(self._state.live_ids(self.owner, now, self.expiry))

    def history_of(self, neighbor: int) -> tuple[Hello, ...]:
        return self._state.history(self.owner, neighbor)

    # -- decision-cache tokens ------------------------------------------- #

    def live_view_token(self, now: float) -> tuple:
        return (
            self.uid,
            self.mutations,
            self._state.live_ids(self.owner, now, self.expiry),
        )

    # -- view materialisation -------------------------------------------- #

    def latest_view(self, now: float, own_hello: Hello) -> LocalView:
        return LocalView(
            owner=self.owner,
            own_hello=own_hello,
            neighbor_hellos=self._state.latest_live(self.owner, now, self.expiry),
            normal_range=self.normal_range,
            sampled_at=now,
        )

    def versioned_view(self, now: float, version: int) -> LocalView:
        own = next((h for h in self._own if h.version == version), None)
        if own is None:
            raise ViewError(
                f"node {self.owner} has not advertised version {version} yet"
            )
        state = self._state
        neighbors: dict[int, Hello] = {}
        for nid in state.senders(self.owner):
            match = next(
                (h for h in state.history(self.owner, nid) if h.version == version),
                None,
            )
            if match is not None:
                neighbors[nid] = match
        return LocalView(
            owner=self.owner,
            own_hello=own,
            neighbor_hellos=neighbors,
            normal_range=self.normal_range,
            sampled_at=now,
        )

    def multi_view(self, now: float, own_hello: Hello | None = None) -> MultiVersionView:
        own = list(self._own)
        if own_hello is not None:
            own.append(own_hello)
        if not own:
            raise ViewError(f"node {self.owner} has no own position record")
        return MultiVersionView(
            owner=self.owner,
            own_hellos=own,
            neighbor_hellos=self._state.live_histories(self.owner, now, self.expiry),
            normal_range=self.normal_range,
            sampled_at=now,
        )
