"""The paper's contribution: views, consistency, removal framework, buffers."""

from repro.core.audit import Violation, audit_world
from repro.core.buffer_zone import (
    BufferZonePolicy,
    buffer_width,
    max_delay_bound,
    required_history_depth,
)
from repro.core.consistency import (
    BaselineConsistency,
    ConsistencyMechanism,
    ProactiveConsistency,
    ReactiveConsistency,
    ViewSynchronization,
    WeakConsistency,
    make_mechanism,
)
from repro.core.costs import CostModel, DistanceCost, EnergyCost, cost_key
from repro.core.framework import (
    LocalCostGraph,
    SelectionResult,
    apply_removal_condition,
    mst_removable,
    mst_removable_batch,
    rng_removable,
    rng_removable_batch,
    spt_removable,
    spt_removable_batch,
)
from repro.core.manager import MobilitySensitiveTopologyControl, NodeDecision
from repro.core.tables import NeighborTable
from repro.core.views import (
    Hello,
    LocalView,
    MultiVersionView,
    link_cost,
    views_consistent,
    views_weakly_consistent,
)

__all__ = [
    "Violation",
    "audit_world",
    "Hello",
    "LocalView",
    "MultiVersionView",
    "link_cost",
    "views_consistent",
    "views_weakly_consistent",
    "CostModel",
    "DistanceCost",
    "EnergyCost",
    "cost_key",
    "LocalCostGraph",
    "SelectionResult",
    "apply_removal_condition",
    "rng_removable",
    "rng_removable_batch",
    "spt_removable",
    "spt_removable_batch",
    "mst_removable",
    "mst_removable_batch",
    "NeighborTable",
    "ConsistencyMechanism",
    "BaselineConsistency",
    "ViewSynchronization",
    "ProactiveConsistency",
    "ReactiveConsistency",
    "WeakConsistency",
    "make_mechanism",
    "BufferZonePolicy",
    "buffer_width",
    "max_delay_bound",
    "required_history_depth",
    "MobilitySensitiveTopologyControl",
    "NodeDecision",
]
