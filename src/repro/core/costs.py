"""Link-cost models (Section 3.1 of the paper).

Each link (u, v) in a local view gets a cost ``c_{u,v}`` computed from the
physical distance ``d_{u,v}``:

- RNG- and MST-based protocols use ``c = d``;
- the SPT-based (minimum-energy) protocol uses ``c = d**alpha + const``,
  the transmission-power law (alpha = 2 free space, alpha = 4 two-ray
  ground reflection).

The paper assumes link costs form a total order, with end-node IDs breaking
ties; :func:`cost_key` realises that order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.validate import check_non_negative, check_positive

__all__ = ["CostModel", "DistanceCost", "EnergyCost", "cost_key", "CostKey"]

#: Total-order key for a link: (cost, smaller end ID, larger end ID).
CostKey = tuple[float, int, int]


def cost_key(cost: float, u: int, v: int) -> CostKey:
    """Total-order key for link (u, v): cost first, ID pair breaks ties."""
    return (float(cost), min(u, v), max(u, v))


class CostModel(ABC):
    """Maps physical link distance to link cost.

    Implementations must be strictly increasing in distance so that cost
    comparisons and distance comparisons induce the same order on links —
    the property all three removal conditions rely on.
    """

    #: short name used in reports ("distance", "energy-2", ...)
    name: str

    @abstractmethod
    def from_distance(self, d: float | np.ndarray) -> float | np.ndarray:
        """Cost of a link of length *d* (vectorized over arrays)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class DistanceCost(CostModel):
    """``c = d`` — the cost model of RNG- and MST-based protocols."""

    name = "distance"

    def from_distance(self, d: float | np.ndarray) -> float | np.ndarray:
        return np.asarray(d, dtype=np.float64) if isinstance(d, np.ndarray) else float(d)


class EnergyCost(CostModel):
    """``c = d**alpha + const`` — minimum-energy (SPT) cost model.

    Parameters
    ----------
    alpha:
        Path-loss exponent (paper uses 2 and 4).
    const:
        Constant per-hop overhead (receiver/electronics energy); the paper's
        simulation uses 0.
    """

    def __init__(self, alpha: float = 2.0, const: float = 0.0) -> None:
        self.alpha = check_positive("alpha", alpha)
        self.const = check_non_negative("const", const)
        self.name = f"energy-{alpha:g}" if const == 0 else f"energy-{alpha:g}+{const:g}"

    def from_distance(self, d: float | np.ndarray) -> float | np.ndarray:
        if isinstance(d, np.ndarray):
            return np.power(d, self.alpha) + self.const
        return float(d) ** self.alpha + self.const
