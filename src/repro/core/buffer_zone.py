"""Buffer zones: delay and mobility management (Section 4.3, Theorem 5).

Each node transmits with an *extended* range ``r + l`` where ``r`` is the
actual range chosen by the topology control protocol and the buffer width

    l = 2 * Delta'' * v_max

covers the worst case: both end nodes moving apart at full speed for the
age ``Delta''`` of the oldest Hello a current local view may rely on.
``Delta''`` depends on the consistency mechanism in use:

- proactive strong consistency: ``2 * Delta'``, where ``Delta'`` is the
  Hello interval plus clock skew;
- reactive strong consistency: ``Delta`` plus the initiation-flood delay;
- weak consistency with ``k`` retained Hellos: ``(k + 1) * Delta``.

The paper also observes (via [35]) that much thinner buffers preserve
links with high probability, so the width is an explicit policy knob in
experiments rather than always the worst-case law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validate import check_in, check_int_range, check_non_negative

__all__ = [
    "max_delay_bound",
    "buffer_width",
    "required_history_depth",
    "BufferZonePolicy",
]


def max_delay_bound(
    mechanism: str,
    hello_interval: float,
    clock_skew: float = 0.0,
    flood_delay: float = 0.0,
    history_depth: int = 3,
) -> float:
    """Worst-case age ``Delta''`` of location information used in a view.

    Parameters
    ----------
    mechanism:
        One of ``"baseline"``, ``"view-sync"``, ``"proactive"``,
        ``"reactive"``, ``"weak"``.
    hello_interval:
        The (maximum) Hello interval ``Delta``, seconds.
    clock_skew:
        Bound on physical clock skew between nodes, seconds.
    flood_delay:
        Propagation bound of the reactive initiation flood, seconds.
    history_depth:
        ``k``, the retained Hellos per neighbor (weak consistency only).
    """
    check_in(
        "mechanism", mechanism, ["baseline", "view-sync", "proactive", "reactive", "weak"]
    )
    delta = check_non_negative("hello_interval", hello_interval)
    skew = check_non_negative("clock_skew", clock_skew)
    if mechanism == "proactive":
        # Delta' = Delta + skew; a view may use a Hello sent Delta' ago and
        # stay in force another Delta'.
        return 2.0 * (delta + skew)
    if mechanism == "reactive":
        return delta + check_non_negative("flood_delay", flood_delay)
    if mechanism == "weak":
        k = check_int_range("history_depth", history_depth, 1)
        return (k + 1) * delta
    # Baseline / view-sync: the latest Hello can be up to one interval old
    # and is used until the next decision, up to another interval later.
    return 2.0 * delta + skew


def buffer_width(max_speed: float, max_delay: float) -> float:
    """Theorem 5's buffer width ``l = 2 * Delta'' * v``.

    Both end nodes may have moved up to ``Delta'' * v`` since the positions
    in the deciding view were sampled, in opposite directions.
    """
    return 2.0 * check_non_negative("max_delay", max_delay) * check_non_negative(
        "max_speed", max_speed
    )


def required_history_depth(view_time_spread: float, hello_interval: float) -> int:
    """Theorem 3's ``k = ceil(delta / Delta) + 1`` retained Hellos.

    *view_time_spread* is ``delta``, the bound on the difference between
    sampling times of any two local views (``d`` for instantaneous
    updating, ``Delta + d`` for periodical updating — Corollary 1).
    """
    delta = check_non_negative("view_time_spread", view_time_spread)
    interval = check_non_negative("hello_interval", hello_interval)
    if interval <= 0:
        raise ValueError("hello_interval must be positive")
    return int(math.ceil(delta / interval - 1e-12)) + 1


@dataclass(frozen=True)
class BufferZonePolicy:
    """How a node extends its actual transmission range.

    Attributes
    ----------
    width:
        Buffer width ``l`` in metres (0 disables the mechanism).
    cap:
        Optional ceiling on the extended range (a radio cannot exceed its
        normal/maximum power); ``None`` = uncapped.
    """

    width: float = 0.0
    cap: float | None = None

    def __post_init__(self) -> None:
        check_non_negative("width", self.width)
        if self.cap is not None:
            check_non_negative("cap", self.cap)

    @classmethod
    def from_theorem5(
        cls,
        max_speed: float,
        mechanism: str,
        hello_interval: float,
        cap: float | None = None,
        **delay_kwargs,
    ) -> "BufferZonePolicy":
        """Worst-case-safe policy for a mechanism and mobility level."""
        delay = max_delay_bound(mechanism, hello_interval, **delay_kwargs)
        return cls(width=buffer_width(max_speed, delay), cap=cap)

    def extended_range(self, actual_range: float) -> float:
        """Extended transmission range for a node with *actual_range*.

        A node with no logical neighbors (actual range 0) keeps range 0:
        it has no logical links to protect.
        """
        if actual_range <= 0.0:
            return 0.0
        extended = actual_range + self.width
        if self.cap is not None:
            extended = min(extended, self.cap)
        return extended
