"""The paper's formal framework (Section 3) as executable machinery.

A topology control decision at a node is: build a *local cost graph* from
the node's view, then remove the node's adjacent links according to one of
three conditions (Section 3.1):

1. **RNG-style** — remove (u, v) if a 2-hop path (u, w, v) exists whose two
   links are both cheaper than (u, v);
2. **SPT-style** — remove (u, v) if any path exists whose *summed* cost is
   below c(u, v);
3. **MST-style** — remove (u, v) if any path exists whose *bottleneck*
   (maximum link) cost is below c(u, v).

Costs form a total order (ID pairs break exact ties, per the paper), which
is what makes Theorem 1 go through.  The *enhanced* conditions of Section
4.2 are the same predicates evaluated conservatively on cost intervals:
``cMin`` for the link under the knife, ``cMax`` for every witness link.
On a single-version view the two bounds coincide and the enhanced
conditions reduce to the plain ones — so one implementation serves both.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostModel, cost_key
from repro.core.views import LocalView, MultiVersionView
from repro.util.errors import ProtocolError

__all__ = [
    "LocalCostGraph",
    "SelectionResult",
    "rng_removable",
    "rng_removable_batch",
    "spt_removable",
    "spt_removable_batch",
    "mst_removable",
    "mst_removable_batch",
    "apply_removal_condition",
]


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Outcome of one node's logical-neighbor selection.

    Attributes
    ----------
    owner:
        The deciding node.
    logical_neighbors:
        IDs of the selected logical neighbors.
    actual_range:
        Transmission range covering the farthest logical neighbor, as
        believed by the owner (advertised distances, conservative bound
        under weak consistency).  Zero if no logical neighbors.
    """

    owner: int
    logical_neighbors: frozenset[int]
    actual_range: float

    def __post_init__(self) -> None:
        if self.owner in self.logical_neighbors:
            raise ProtocolError(f"node {self.owner} selected itself as logical neighbor")
        if self.actual_range < 0 or not math.isfinite(self.actual_range):
            raise ProtocolError(f"invalid actual range {self.actual_range!r}")


class LocalCostGraph:
    """Dense cost graph over the members of a local view.

    Attributes
    ----------
    ids:
        Member node IDs; index 0 is always the view owner.
    adj:
        ``(m, m)`` boolean adjacency (within normal range).
    cost_low / cost_high:
        ``(m, m)`` conservative cost bounds; equal on single-version views.
    dist_low / dist_high:
        Matching distance bounds (used for range assignment).
    """

    __slots__ = (
        "ids",
        "index",
        "adj",
        "cost_low",
        "cost_high",
        "dist_low",
        "dist_high",
        "_rank_low",
        "_rank_high",
    )

    def __init__(
        self,
        ids: Sequence[int],
        adj: np.ndarray,
        cost_low: np.ndarray,
        cost_high: np.ndarray,
        dist_low: np.ndarray,
        dist_high: np.ndarray,
    ) -> None:
        self.ids = list(ids)
        self.index = {nid: i for i, nid in enumerate(self.ids)}
        self.adj = adj
        self.cost_low = cost_low
        self.cost_high = cost_high
        self.dist_low = dist_low
        self.dist_high = dist_high
        self._rank_low: np.ndarray | None = None
        self._rank_high: np.ndarray | None = None

    @property
    def size(self) -> int:
        """Number of members (owner + neighbors)."""
        return len(self.ids)

    def key_low(self, i: int, j: int) -> tuple[float, int, int]:
        """Total-order key of the *lower* cost bound of link (i, j)."""
        return cost_key(self.cost_low[i, j], self.ids[i], self.ids[j])

    def key_high(self, i: int, j: int) -> tuple[float, int, int]:
        """Total-order key of the *upper* cost bound of link (i, j)."""
        return cost_key(self.cost_high[i, j], self.ids[i], self.ids[j])

    def _compute_ranks(self) -> None:
        """Dense integer ranks realising the total order of cost keys.

        Both bound matrices are ranked *jointly*, so
        ``rank_high[a,b] < rank_low[c,d]`` iff
        ``key_high(a,b) < key_low(c,d)`` — tuple semantics at NumPy
        comparison cost (the removal predicates run millions of key
        comparisons per simulation; see the optimization guide: vectorize
        the measured hot spot, nothing else).
        """
        m = len(self.ids)
        iu, iv = np.triu_indices(m, k=1)
        ids_arr = np.asarray(self.ids)
        lo_ids = np.minimum(ids_arr[iu], ids_arr[iv])
        hi_ids = np.maximum(ids_arr[iu], ids_arr[iv])
        costs = np.concatenate([self.cost_low[iu, iv], self.cost_high[iu, iv]])
        lo2 = np.concatenate([lo_ids, lo_ids])
        hi2 = np.concatenate([hi_ids, hi_ids])
        # Dense ranks via lexsort (primary key last): ~10x faster than
        # np.unique on a structured dtype for these sizes.
        order = np.lexsort((hi2, lo2, costs))
        s_cost, s_lo, s_hi = costs[order], lo2[order], hi2[order]
        new_group = np.empty(order.shape[0], dtype=np.int64)
        new_group[0] = 0
        new_group[1:] = (
            (s_cost[1:] != s_cost[:-1])
            | (s_lo[1:] != s_lo[:-1])
            | (s_hi[1:] != s_hi[:-1])
        )
        inverse = np.empty_like(order)
        inverse[order] = np.cumsum(new_group)
        k = iu.shape[0]
        rank_low = np.zeros((m, m), dtype=np.int64)
        rank_high = np.zeros((m, m), dtype=np.int64)
        rank_low[iu, iv] = rank_low[iv, iu] = inverse[:k]
        rank_high[iu, iv] = rank_high[iv, iu] = inverse[k:]
        self._rank_low, self._rank_high = rank_low, rank_high

    @property
    def rank_low(self) -> np.ndarray:
        """Integer total-order ranks of the lower cost bounds."""
        if self._rank_low is None:
            self._compute_ranks()
        return self._rank_low

    @property
    def rank_high(self) -> np.ndarray:
        """Integer total-order ranks of the upper cost bounds."""
        if self._rank_high is None:
            self._compute_ranks()
        return self._rank_high

    @classmethod
    def from_local_view(cls, view: LocalView, cost_model: CostModel) -> "LocalCostGraph":
        """Build the (exact-cost) graph of a single-version view."""
        ids, pts = view.positions()
        diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        adj = dist <= view.normal_range
        np.fill_diagonal(adj, False)
        cost = np.asarray(cost_model.from_distance(dist), dtype=np.float64)
        return cls(ids, adj, cost, cost, dist, dist)

    @classmethod
    def from_multi_version_view(
        cls, view: MultiVersionView, cost_model: CostModel
    ) -> "LocalCostGraph":
        """Build the interval-cost graph of a k-version view.

        For every member pair, distances over all retained position pairs
        give [dMin, dMax] (via the vectorized
        :meth:`~repro.core.views.MultiVersionView.distance_bounds`); costs
        follow by monotonicity of the cost model.  A pair is adjacent if
        *any* position pair is within normal range (conservative link
        presence).
        """
        ids, dist_low, dist_high = view.distance_bounds()
        adj = dist_low <= view.normal_range
        np.fill_diagonal(adj, False)
        cost_low = np.asarray(cost_model.from_distance(dist_low), dtype=np.float64)
        cost_high = np.asarray(cost_model.from_distance(dist_high), dtype=np.float64)
        np.fill_diagonal(cost_low, 0.0)
        np.fill_diagonal(cost_high, 0.0)
        return cls(ids, adj, cost_low, cost_high, dist_low, dist_high)


def rng_removable(graph: LocalCostGraph, owner: int, v: int) -> bool:
    """Condition 1 (RNG): a 2-hop witness path strictly cheaper on both links.

    Enhanced form: witness links are judged by their *upper* cost bound,
    the removed link by its *lower* bound, so removal is only allowed when
    it would be correct under every consistent completion of the view.
    """
    target = graph.rank_low[owner, v]
    rank_high = graph.rank_high
    adj = graph.adj
    witnesses = (
        adj[owner]
        & adj[v]
        & (rank_high[owner] < target)
        & (rank_high[:, v] < target)
    )
    witnesses[owner] = witnesses[v] = False
    return bool(witnesses.any())


def rng_removable_batch(graph: LocalCostGraph) -> dict[int, bool]:
    """Condition 1 for *all* of the owner's links in one broadcast pass.

    One ``(k, m)`` witness mask replaces k per-edge scans: for every
    neighbor v of the owner, witness w qualifies iff it is adjacent to
    both ends and both witness links rank (by upper bound) strictly below
    the direct link's lower bound — exactly :func:`rng_removable`, so the
    conservative low/high asymmetry carries over and interval graphs need
    no fallback.
    """
    adj = graph.adj
    neighbors = np.flatnonzero(adj[0])
    if neighbors.size == 0:
        return {}
    rank_high = graph.rank_high
    targets = graph.rank_low[0, neighbors][:, np.newaxis]
    witnesses = (
        adj[0][np.newaxis, :]
        & adj[neighbors, :]
        & (rank_high[0][np.newaxis, :] < targets)
        & (rank_high[:, neighbors].T < targets)
    )
    witnesses[:, 0] = False
    witnesses[np.arange(neighbors.size), neighbors] = False
    removable = witnesses.any(axis=1)
    return {int(v): bool(r) for v, r in zip(neighbors, removable)}


#: marker consumed by apply_removal_condition
rng_removable_batch.is_batch = True  # type: ignore[attr-defined]


def spt_removable(graph: LocalCostGraph, owner: int, v: int) -> bool:
    """Condition 2 (SPT): some path with summed cost below c(owner, v).

    Dijkstra over upper-bound costs; removal requires the alternative to be
    *strictly* cheaper than the lower bound of the direct link (ties keep
    the link — connectivity-safe).
    """
    m = graph.size
    threshold = graph.cost_low[owner, v]
    dist = np.full(m, math.inf)
    dist[owner] = 0.0
    heap: list[tuple[float, int]] = [(0.0, owner)]
    visited = np.zeros(m, dtype=bool)
    while heap:
        d, i = heapq.heappop(heap)
        if visited[i]:
            continue
        visited[i] = True
        if i == v:
            break
        if d >= threshold:
            # Every remaining path is at least this long; cannot beat c(o, v).
            return False
        for j in np.flatnonzero(graph.adj[i]):
            if i == owner and j == v:
                continue  # the direct link is not its own witness
            nd = d + graph.cost_high[i, j]
            if nd < dist[j]:
                dist[j] = nd
                heapq.heappush(heap, (nd, int(j)))
    return bool(dist[v] < threshold)


def mst_removable(graph: LocalCostGraph, owner: int, v: int) -> bool:
    """Condition 3 (MST): some path whose every link is cheaper than (owner, v).

    Equivalent to reachability of *v* from *owner* in the subgraph of links
    with key strictly below the direct link's key (direct link excluded);
    computed as a vectorized frontier BFS over that boolean subgraph.
    """
    target = graph.rank_low[owner, v]
    sub = graph.adj & (graph.rank_high < target)
    sub[owner, v] = sub[v, owner] = False
    m = graph.size
    reached = np.zeros(m, dtype=bool)
    reached[owner] = True
    frontier = reached.copy()
    while frontier.any():
        nxt = sub[frontier].any(axis=0) & ~reached
        if nxt[v]:
            return True
        reached |= nxt
        frontier = nxt
    return False


def mst_removable_batch(graph: LocalCostGraph) -> dict[int, bool]:
    """Condition 3 for *all* of the owner's links in one MST construction.

    With a total order on links, (owner, v) survives condition 3 iff it is
    an edge of the local graph's minimum spanning tree (the cycle
    property), so one Prim pass over the rank matrix replaces one BFS per
    neighbor.  Only valid when the cost bounds coincide (single-version
    views); interval graphs fall back to the per-edge predicate, whose
    conservative low/high asymmetry has no single-MST equivalent.
    """
    if graph.cost_low is not graph.cost_high and not np.array_equal(
        graph.cost_low, graph.cost_high
    ):
        return {
            int(j): mst_removable(graph, 0, int(j))
            for j in np.flatnonzero(graph.adj[0])
        }
    m = graph.size
    neighbors = np.flatnonzero(graph.adj[0])
    if m <= 2 or neighbors.size == 0:
        return {int(j): False for j in neighbors}
    inf = np.iinfo(np.int64).max
    weights = np.where(graph.adj, graph.rank_low, inf)
    np.fill_diagonal(weights, inf)
    in_tree = np.zeros(m, dtype=bool)
    in_tree[0] = True
    best = weights[0].copy()
    parent = np.zeros(m, dtype=np.intp)
    owner_children: set[int] = set()
    for _ in range(m - 1):
        masked = np.where(in_tree, inf, best)
        j = int(np.argmin(masked))
        if masked[j] >= inf:
            break  # remaining nodes unreachable (they are not neighbors of 0)
        in_tree[j] = True
        if parent[j] == 0:
            owner_children.add(j)
        improves = (weights[j] < best) & ~in_tree
        parent[improves] = j
        best = np.where(improves, weights[j], best)
    return {int(j): (int(j) not in owner_children) for j in neighbors}


#: marker consumed by apply_removal_condition
mst_removable_batch.is_batch = True  # type: ignore[attr-defined]


def spt_removable_batch(graph: LocalCostGraph) -> dict[int, bool]:
    """Condition 2 for *all* of the owner's links via one Dijkstra.

    ``dist[v] < cost_low(owner, v)`` iff an alternative path is strictly
    cheaper: the direct link contributes exactly ``cost_high >= cost_low``
    to the shortest-path tree, and no simple path through the direct link
    can beat it, so including it changes nothing — one O(m^2) Dijkstra
    replaces one per neighbor.  Semantics identical to
    :func:`spt_removable` (verified by tests on random graphs).
    """
    m = graph.size
    weights = np.where(graph.adj, graph.cost_high, math.inf)
    np.fill_diagonal(weights, math.inf)
    dist = np.full(m, math.inf)
    dist[0] = 0.0
    visited = np.zeros(m, dtype=bool)
    for _ in range(m):
        candidates = np.where(visited, math.inf, dist)
        i = int(np.argmin(candidates))
        if not math.isfinite(candidates[i]):
            break
        visited[i] = True
        dist = np.minimum(dist, dist[i] + weights[i])
    return {
        int(j): bool(dist[j] < graph.cost_low[0, j])
        for j in np.flatnonzero(graph.adj[0])
    }


#: marker consumed by apply_removal_condition
spt_removable_batch.is_batch = True  # type: ignore[attr-defined]


def apply_removal_condition(
    graph: LocalCostGraph,
    removable,
) -> SelectionResult:
    """Run a removal predicate over the owner's adjacent links.

    Parameters
    ----------
    graph:
        Local cost graph; index 0 is the owner.
    removable:
        ``f(graph, owner_index, neighbor_index) -> bool``, or a batch
        predicate (``is_batch`` attribute set) mapping the whole graph to
        ``{neighbor_index: removable}`` in one pass.

    Returns
    -------
    SelectionResult
        Logical neighbors = adjacent nodes whose direct link survives;
        actual range = largest (upper-bound) distance to a survivor.
    """
    owner_idx = 0
    survivors: list[int] = []
    max_dist = 0.0
    if getattr(removable, "is_batch", False):
        verdicts = removable(graph)
        for j, is_removable in verdicts.items():
            if not is_removable:
                survivors.append(graph.ids[j])
                max_dist = max(max_dist, float(graph.dist_high[owner_idx, j]))
    else:
        for j in np.flatnonzero(graph.adj[owner_idx]):
            if not removable(graph, owner_idx, int(j)):
                survivors.append(graph.ids[j])
                max_dist = max(max_dist, float(graph.dist_high[owner_idx, j]))
    return SelectionResult(
        owner=graph.ids[owner_idx],
        logical_neighbors=frozenset(survivors),
        actual_range=max_dist,
    )
