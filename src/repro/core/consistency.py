"""View-consistency mechanisms (Sections 4.1-4.2).

Each mechanism is a strategy answering one question: *which view does a
node base its logical-neighbor decision on, and when does it re-decide?*

- :class:`BaselineConsistency` — the mobility-insensitive status quo:
  latest Hello per neighbor, own true position, decide at Hello time.
- :class:`ViewSynchronization` — the paper's simulated lightweight scheme:
  re-decide *on every packet send* from the latest Hellos, using the own
  position advertised in the node's last Hello (so nodes a fast packet
  visits share nearly consistent views).
- :class:`ProactiveConsistency` — strong consistency via timestamped
  Hellos: packets carry the source's version ``s``; every node on the path
  decides from its version-``s`` view, which enforces ``|M(t, v)| = 1``
  (Theorem 2).
- :class:`ReactiveConsistency` — strong consistency via synchronized
  rounds: an initiation flood stamps one version on every Hello of the
  round, and decisions use exactly that round's view.
- :class:`WeakConsistency` — no synchronization: keep ``k`` recent Hellos,
  evaluate the protocol's *conservative* (enhanced-condition) mode
  (Theorem 4).
- :class:`GossipConsistency` — anti-entropy epidemic dissemination: views
  converge by periodic digest exchange and monotone last-writer-wins
  merge (:mod:`repro.gossip`) rather than by every node hearing every
  neighbor directly; decisions read the merged view exactly like
  view synchronization, lagging by at most ``rounds_to_converge ×
  interval`` (see ``docs/GOSSIP.md``).
"""

from __future__ import annotations

import inspect
import math
from abc import ABC, abstractmethod

from repro.core.framework import SelectionResult
from repro.core.tables import NeighborTable
from repro.core.views import Hello
from repro.protocols.base import TopologyControlProtocol
from repro.util.errors import ConfigurationError, ViewError
from repro.util.validate import check_int_range, check_positive

__all__ = [
    "ConsistencyMechanism",
    "BaselineConsistency",
    "ViewSynchronization",
    "ProactiveConsistency",
    "ReactiveConsistency",
    "WeakConsistency",
    "GossipConsistency",
    "available_mechanisms",
    "make_mechanism",
]


class ConsistencyMechanism(ABC):
    """Strategy: how a node builds the view behind each decision."""

    #: registry key and report label
    name: str = ""
    #: True if logical sets must be recomputed when forwarding a packet
    recompute_on_packet: bool = False
    #: True if Hello versions must be globally aligned (epoch-based)
    synchronized_versions: bool = False

    @abstractmethod
    def decide(
        self,
        protocol: TopologyControlProtocol,
        table: NeighborTable,
        now: float,
        current_hello: Hello,
        version: int | None = None,
    ) -> SelectionResult:
        """Run *protocol* on the view this mechanism prescribes.

        Parameters
        ----------
        protocol:
            The (unchanged) base topology control protocol.
        table:
            The deciding node's neighbor table.
        now:
            Physical time of the decision.
        current_hello:
            A Hello describing the node's *current true* position (only
            mechanisms that are allowed to use it do).
        version:
            Global Hello version a packet mandates (proactive/reactive).
        """

    def decision_fingerprint(
        self,
        table: NeighborTable,
        now: float,
        current_hello: Hello,
        version: int | None = None,
    ) -> tuple | None:
        """Hashable value pinning every input :meth:`decide` reads, or None.

        Equal fingerprints MUST imply equal :meth:`decide` outputs — the
        decision cache in
        :class:`~repro.core.manager.MobilitySensitiveTopologyControl` is an
        equality-of-inputs memo, not an approximation.  A mechanism whose
        inputs cannot be pinned cheaply returns None (never cached).
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BaselineConsistency(ConsistencyMechanism):
    """Mobility-insensitive default: latest Hellos, own true position."""

    name = "baseline"

    def decide(self, protocol, table, now, current_hello, version=None):
        view = table.latest_view(now, own_hello=current_hello)
        return protocol.select(view)

    def decision_fingerprint(self, table, now, current_hello, version=None):
        # The selection reads the live latest Hellos plus the node's current
        # true position; under mobility the latter changes per call, so hits
        # occur only while the node is stationary between table changes.
        return (self.name, table.live_view_token(now), current_hello.position)


class ViewSynchronization(ConsistencyMechanism):
    """On-the-fly almost-consistent views (Section 5.1, "view synchronization").

    Decisions use the latest received Hellos but the node's **previously
    advertised** own position — the paper is explicit that using the true
    current position instead would re-introduce inconsistency.  The
    simulator additionally re-decides whenever a packet is sent
    (:attr:`recompute_on_packet`), so all nodes a fast-travelling packet
    visits decide from nearly the same Hello generation.
    """

    name = "view-sync"
    recompute_on_packet = True

    def decide(self, protocol, table, now, current_hello, version=None):
        own = table.last_advertised
        if own is None:
            # Nothing advertised yet: the node is invisible to neighbors
            # anyway, so deciding from the current position is harmless.
            own = current_hello
        view = table.latest_view(now, own_hello=own)
        return protocol.select(view)

    def decision_fingerprint(self, table, now, current_hello, version=None):
        # The own position is the *last advertised* one, which only changes
        # with a table mutation — this is what makes packet-time
        # recomputation (redecide_all) near-free between Hello generations.
        own = table.last_advertised or current_hello
        return (self.name, table.live_view_token(now), own.position)


class ProactiveConsistency(ConsistencyMechanism):
    """Strong consistency from timestamped Hellos (the proactive approach).

    Requires globally aligned versions (nodes stamp Hello *i* during epoch
    *i*; clock skew only shifts the stamping instant).  A decision for
    version ``s`` uses exactly the version-``s`` Hello of every neighbor
    that produced one — so all nodes relaying a packet stamped ``s`` use
    the same version of everyone's location, satisfying Theorem 2.
    """

    name = "proactive"
    recompute_on_packet = True
    synchronized_versions = True

    def decide(self, protocol, table, now, current_hello, version=None):
        if version is None:
            version = max(table.available_versions(), default=None)
            if version is None:
                raise ViewError(
                    f"node {table.owner} cannot decide proactively before advertising"
                )
        try:
            view = table.versioned_view(now, version)
        except ViewError:
            # The node has not reached epoch `version` yet (clock skew or a
            # packet racing ahead of Hello emission): fall back to the most
            # recent version it *has* advertised — the paper's "wait before
            # migrating to the next local view" rule seen from the packet's
            # perspective.
            candidates = [v for v in table.available_versions() if v < version]
            if not candidates:
                raise
            view = table.versioned_view(now, max(candidates))
        return protocol.select(view)

    def decision_fingerprint(self, table, now, current_hello, version=None):
        # Versioned views ignore the expiry window and never read the
        # current true position; the full retained state plus the requested
        # version pin the decision (including the fallback resolution).
        return (self.name, table.full_token(), version)


class ReactiveConsistency(ProactiveConsistency):
    """Strong consistency from synchronized Hello rounds (reactive approach).

    Functionally a versioned decision like the proactive scheme; the
    difference is *how* versions get aligned (an initiation flood rather
    than clocks) and its traffic cost, which the simulator accounts
    separately.  Decisions do not depend on packets, so logical sets are
    refreshed once per round, not per packet.
    """

    name = "reactive"
    recompute_on_packet = False
    synchronized_versions = True


class WeakConsistency(ConsistencyMechanism):
    """Conservative decisions from k recent Hellos — no synchronization.

    Runs the protocol's enhanced link-removal conditions
    (:meth:`~repro.protocols.base.TopologyControlProtocol
    .select_conservative`) on a :class:`~repro.core.views.MultiVersionView`.
    Theorem 4 guarantees a connected logical topology when views are weakly
    consistent, which Theorem 3 guarantees for sufficient *k*.
    """

    name = "weak"

    def __init__(self, history_depth: int = 3) -> None:
        self.history_depth = check_int_range("history_depth", history_depth, 1)

    def decide(self, protocol, table, now, current_hello, version=None):
        view = table.multi_view(now, own_hello=current_hello)
        return protocol.select_conservative(view)

    def decision_fingerprint(self, table, now, current_hello, version=None):
        # The conservative view spans the retained histories plus the
        # node's current true position (appended as the freshest own
        # record), so mobility keeps this missing like the baseline.
        return (self.name, table.live_view_token(now), current_hello.position)

    def __repr__(self) -> str:
        return f"WeakConsistency(history_depth={self.history_depth})"


class GossipConsistency(ConsistencyMechanism):
    """Anti-entropy epidemic views (ROADMAP item 4; see docs/GOSSIP.md).

    Hello state spreads by periodic push–pull digest exchange with
    ``fanout`` sampled in-range peers, merged monotonically
    (last-writer-wins per sender), with age-based peer removal and a
    mayday re-request when the local view goes silent.  The decision
    itself is view-synchronization-shaped: the latest expiry-filtered
    entries plus the node's previously advertised own position — only the
    *transport* of those entries is epidemic.  The dissemination driver
    (:class:`~repro.gossip.GossipEngine`) is wired by the world whenever
    this mechanism is selected.

    Parameters
    ----------
    fanout:
        Peers sampled per round (without replacement) from the nodes in
        normal Hello range.
    interval:
        Gossip round period in seconds (per node, jitter-started from
        the dedicated ``"gossip"`` seed stream).
    removal_age:
        Entries older than this are neither advertised in digests nor
        relayed, so silent peers age out of circulation; defaults to the
        scenario's Hello expiry.
    mayday_after:
        Silence (no live neighbors while in-range peers exist) tolerated
        before a full-view re-request; defaults to ``2 × interval``.
    """

    name = "gossip"

    def __init__(
        self,
        fanout: int = 2,
        interval: float = 1.0,
        removal_age: float | None = None,
        mayday_after: float | None = None,
    ) -> None:
        self.fanout = check_int_range("fanout", fanout, 1)
        self.interval = check_positive("interval", interval)
        self.removal_age = (
            None if removal_age is None else check_positive("removal_age", removal_age)
        )
        self.mayday_after = (
            None
            if mayday_after is None
            else check_positive("mayday_after", mayday_after)
        )

    def decide(self, protocol, table, now, current_hello, version=None):
        own = table.last_advertised
        if own is None:
            own = current_hello
        view = table.latest_view(now, own_hello=own)
        return protocol.select(view)

    def decision_fingerprint(self, table, now, current_hello, version=None):
        # Every gossip merge records through the table and therefore bumps
        # its mutation counter, so the live-view token invalidates cached
        # decisions exactly when epidemic state arrives.
        own = table.last_advertised or current_hello
        return (self.name, table.live_view_token(now), own.position)

    def staleness_bound(self, n_nodes: int) -> float:
        """Worst-case extra view lag in seconds at population *n_nodes*.

        Push–pull epidemics infect all *n* nodes in
        ``ceil(log_{fanout+1}(n))`` rounds with high probability; one
        extra round absorbs the exchange's in-flight hops.  Oracles widen
        their Theorem 5 slack by this much for gossip runs.
        """
        rounds = (
            math.ceil(math.log(max(int(n_nodes), 2)) / math.log(self.fanout + 1.0))
            + 1
        )
        return rounds * self.interval

    def __repr__(self) -> str:
        return (
            f"GossipConsistency(fanout={self.fanout}, interval={self.interval}, "
            f"removal_age={self.removal_age}, mayday_after={self.mayday_after})"
        )


_MECHANISMS = {
    cls.name: cls
    for cls in (
        BaselineConsistency,
        ViewSynchronization,
        ProactiveConsistency,
        ReactiveConsistency,
        WeakConsistency,
        GossipConsistency,
    )
}


def available_mechanisms() -> tuple[str, ...]:
    """Registered mechanism names, sorted — the single source of truth
    for CLI choices and the fuzzer's mechanism axis."""
    return tuple(sorted(_MECHANISMS))


def make_mechanism(name: str, **kwargs) -> ConsistencyMechanism:
    """Instantiate a consistency mechanism by name (CLI / config entry)."""
    try:
        cls = _MECHANISMS[name]
    except KeyError:
        raise ViewError(
            f"unknown consistency mechanism {name!r}; available: {sorted(_MECHANISMS)}"
        ) from None
    try:
        return cls(**kwargs)
    except TypeError as exc:
        accepted = [
            p for p in inspect.signature(cls.__init__).parameters if p != "self"
        ]
        raise ConfigurationError(
            f"invalid parameters {sorted(kwargs)} for consistency mechanism "
            f"{name!r}; accepted parameters: {accepted or 'none'}"
        ) from exc
