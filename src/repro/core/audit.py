"""Runtime invariant auditing for simulated worlds.

A topology control bug usually shows up as a *silent* broken invariant
(a logical neighbor outside the view, a range that does not cover the
selection) long before it shows up in a metric.  :func:`audit_world`
checks every structural invariant the paper's machinery promises, on the
live state of a world, and returns human-readable violations — used by the
test suite, and offered to users as a debugging tool
(``audit_world(world)`` after any suspicious run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.world import NetworkWorld

__all__ = ["Violation", "audit_world"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    node: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"node {self.node}: {self.invariant} — {self.detail}"


def audit_world(world: NetworkWorld) -> list[Violation]:
    """Check all per-node decision invariants *now*; return violations.

    Invariants checked:

    1. every logical neighbor is a live member of the node's view;
    2. the actual range covers the believed distance to every logical
       neighbor (advertised positions, conservative under weak mode);
    3. the extended range is the buffer policy applied to the actual one;
    4. a node with logical neighbors has a positive range, one without has
       range zero;
    5. Hello histories are bounded by the configured depth and versions
       increase strictly per sender.
    """
    violations: list[Violation] = []
    now = world.engine.now
    cfg = world.config
    policy = world.manager.buffer_policy
    mechanism = world.manager.mechanism
    weak_mode = mechanism.name == "weak"
    # Anti-entropy relays can land a Hello that was *sent* before the
    # decision but arrived (merged) only after it — the believed distance
    # below would then be computed from an entry the decision never saw.
    # Bound that retroactive drift by the mechanism's staleness window.
    gossip_staleness = (
        mechanism.staleness_bound(cfg.n_nodes) if mechanism.name == "gossip" else 0.0
    )
    # Advertised positions may carry injected GPS noise (bounded by the
    # fault schedule's PositionNoise amplitudes); widen the drift slack by
    # the worst case at each end so noise alone never trips invariant 2.
    injector = world.fault_injector
    noise_bound = 0.0 if injector is None else injector.position_noise_bound()
    for node in world.nodes:
        table = node.table
        # -- invariant 5: history discipline
        for nbr in table.known_neighbors():
            history = table.history_of(nbr)
            if len(history) > cfg.history_depth:
                violations.append(
                    Violation(node.node_id, "history-depth",
                              f"{len(history)} Hellos kept for {nbr}")
                )
            versions = [h.version for h in history]
            if any(b <= a for a, b in zip(versions, versions[1:])):
                violations.append(
                    Violation(node.node_id, "version-order",
                              f"versions {versions} for {nbr}")
                )
        decision = node.decision
        if decision is None:
            continue
        live = set(table.known_neighbors(now))
        # -- invariant 1: selections are view members (neighbors may have
        # expired since the decision; only flag ones never heard from)
        ghosts = [
            v for v in decision.logical_neighbors
            if not table.history_of(v)
        ]
        if ghosts:
            violations.append(
                Violation(node.node_id, "ghost-neighbor",
                          f"selected {ghosts} without any Hello on record")
            )
        # -- invariant 2: believed coverage at decision time
        for v in decision.logical_neighbors:
            history = table.history_of(v)
            if not history:
                continue
            believed = [
                h for h in history
                if h.sent_at + cfg.propagation_delay <= decision.decided_at + 1e-12
            ]
            if not believed:
                continue
            own = table.last_advertised
            if own is None:
                continue
            if weak_mode:
                dist = max(own.distance_to(h) for h in believed)
            else:
                dist = own.distance_to(believed[-1])
            if dist > decision.actual_range + cfg.normal_range * 1e-6 + 1e-6:
                # baseline decisions use the CURRENT position rather than
                # the advertised one, which can shift the believed
                # distance; allow the drift bound of one Hello interval.
                slack = (
                    2.0 * cfg.max_hello_interval * world.mobility.max_speed()
                    + 2.0 * noise_bound
                    + 2.0 * gossip_staleness * world.mobility.max_speed()
                )
                if dist > decision.actual_range + slack + 1e-6:
                    violations.append(
                        Violation(
                            node.node_id, "range-coverage",
                            f"believed d(., {v}) = {dist:.2f} m exceeds actual "
                            f"range {decision.actual_range:.2f} m (+slack)",
                        )
                    )
        # -- invariant 3: buffer arithmetic
        expected = policy.extended_range(decision.actual_range)
        if not np.isclose(decision.extended_range, expected):
            violations.append(
                Violation(node.node_id, "buffer-arithmetic",
                          f"extended {decision.extended_range:.2f} != "
                          f"policy({decision.actual_range:.2f}) = {expected:.2f}")
            )
        # -- invariant 4: range/selection coherence
        if decision.logical_neighbors and decision.actual_range <= 0:
            violations.append(
                Violation(node.node_id, "zero-range-with-neighbors",
                          f"{len(decision.logical_neighbors)} neighbors, range 0")
            )
        if not decision.logical_neighbors and decision.actual_range != 0:
            violations.append(
                Violation(node.node_id, "range-without-neighbors",
                          f"range {decision.actual_range:.2f} with no neighbors")
            )
    return violations
