"""The paper's headline object: mobility-sensitive topology control.

:class:`MobilitySensitiveTopologyControl` wraps an *unmodified* base
protocol with the three mobility mechanisms the paper proposes/evaluates:

1. a **consistency mechanism** choosing the view behind each decision
   (baseline / view synchronization / proactive / reactive / weak),
2. a **buffer zone** extending the actual transmission range
   (Theorem 5 width or an experimental width),
3. optional **physical-neighbor forwarding** (accept packets from any
   in-range sender, not only logical neighbors).

The object is simulator-agnostic: it turns a neighbor table + current
position into a :class:`NodeDecision`.  The simulator calls it at Hello
time and (for packet-recomputing mechanisms) at forward time; library
users can call it directly on hand-built tables.

Because the paper's decisions are made from *stale, asynchronously
collected* views, most consecutive decisions at a node see identical
inputs — every packet-time recomputation between two Hello generations,
for instance.  :meth:`MobilitySensitiveTopologyControl.decide` therefore
keeps a **view-fingerprint decision cache**: an equality-of-inputs memo
(never an approximation) that returns the standing selection when the
mechanism's declared inputs are unchanged, skipping cost-graph
construction and the removal predicate entirely.  See
``docs/PERFORMANCE.md`` for the fingerprint contents and invalidation
rules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import BaselineConsistency, ConsistencyMechanism
from repro.core.tables import NeighborTable
from repro.core.views import Hello
from repro.protocols.base import TopologyControlProtocol
from repro.util.errors import ProtocolError

__all__ = ["NodeDecision", "MobilitySensitiveTopologyControl"]


@dataclass(frozen=True, slots=True)
class NodeDecision:
    """One node's complete topology control state after a decision.

    Attributes
    ----------
    owner:
        Deciding node.
    logical_neighbors:
        Selected logical neighbor IDs.
    actual_range:
        Range covering the farthest logical neighbor (protocol output).
    extended_range:
        Actual range plus the buffer-zone width (what the radio uses).
    decided_at:
        Physical decision time.
    """

    owner: int
    logical_neighbors: frozenset[int]
    actual_range: float
    extended_range: float
    decided_at: float


class MobilitySensitiveTopologyControl:
    """Bundle a base protocol with the paper's mobility mechanisms.

    Parameters
    ----------
    protocol:
        Any registered :class:`TopologyControlProtocol`, unmodified.
    mechanism:
        View-consistency strategy (default: mobility-insensitive baseline).
    buffer_policy:
        Buffer-zone policy (default: no buffer — width 0).
    physical_neighbor_mode:
        When True, receivers accept data packets from *any* in-range
        sender ("enabling physical neighbors", Section 5.1); the logical
        set still determines each node's transmission range.
    decision_cache:
        Enable the view-fingerprint decision cache (default: the class
        attribute :attr:`decision_cache_default`, normally True).  The
        cache never changes outputs — it only skips recomputation when a
        decision's inputs are provably unchanged; disable it to benchmark
        the uncached path or to rule it out while debugging.

    Examples
    --------
    >>> from repro.protocols import RngProtocol
    >>> from repro.core.buffer_zone import BufferZonePolicy
    >>> mstc = MobilitySensitiveTopologyControl(
    ...     RngProtocol(), buffer_policy=BufferZonePolicy(width=10.0))
    >>> mstc.describe()
    'rng+baseline+buf10'
    """

    #: default for the ``decision_cache`` constructor argument; tests and
    #: benchmarks flip this to compare cached vs uncached pipelines.
    decision_cache_default: bool = True

    def __init__(
        self,
        protocol: TopologyControlProtocol,
        mechanism: ConsistencyMechanism | None = None,
        buffer_policy: BufferZonePolicy | None = None,
        physical_neighbor_mode: bool = False,
        decision_cache: bool | None = None,
    ) -> None:
        self.protocol = protocol
        self.mechanism = mechanism or BaselineConsistency()
        self.buffer_policy = buffer_policy or BufferZonePolicy(width=0.0)
        self.physical_neighbor_mode = bool(physical_neighbor_mode)
        self.decision_cache_enabled = bool(
            self.decision_cache_default if decision_cache is None else decision_cache
        )
        #: per-owner standing decision keyed by its input fingerprint
        self._decision_cache: dict[int, tuple[tuple, NodeDecision]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_uncacheable = 0
        # Armed telemetry or None (attach_telemetry); one None check on
        # the decide() path when disarmed — the fault-seam pattern.
        self._telemetry = None
        if (
            self.mechanism.name == "weak"
            and not protocol.supports_conservative
        ):
            raise ProtocolError(
                f"protocol {protocol.name!r} has no conservative mode; "
                "weak consistency cannot drive it"
            )

    @property
    def recompute_on_packet(self) -> bool:
        """Whether forwarding a packet triggers a fresh decision."""
        return self.mechanism.recompute_on_packet

    @property
    def synchronized_versions(self) -> bool:
        """Whether Hello versions must be globally epoch-aligned."""
        return self.mechanism.synchronized_versions

    def decide(
        self,
        table: NeighborTable,
        now: float,
        current_hello: Hello,
        version: int | None = None,
    ) -> NodeDecision:
        """Make a full topology control decision for one node.

        When the decision cache is enabled and the mechanism's declared
        inputs (view fingerprint + requested version + buffer policy) are
        unchanged since the owner's last decision, the standing decision
        is returned with a refreshed ``decided_at`` — bit-identical to a
        recomputation, without building the cost graph.
        """
        tel = self._telemetry
        fingerprint: tuple | None = None
        if self.decision_cache_enabled:
            inputs = self.mechanism.decision_fingerprint(
                table, now, current_hello, version=version
            )
            if inputs is None:
                self.cache_uncacheable += 1
            else:
                fingerprint = (inputs, self.buffer_policy, self.physical_neighbor_mode)
                cached = self._decision_cache.get(table.owner)
                if cached is not None and cached[0] == fingerprint:
                    self.cache_hits += 1
                    if tel is not None:
                        tel.count("decision_cache", outcome="hit")
                        tel.event("decision_cache_hit", t=now, node=table.owner)
                    decision = cached[1]
                    if decision.decided_at == now:
                        return decision
                    return replace(decision, decided_at=now)
        result = self.mechanism.decide(
            self.protocol, table, now, current_hello, version=version
        )
        decision = NodeDecision(
            owner=result.owner,
            logical_neighbors=result.logical_neighbors,
            actual_range=result.actual_range,
            extended_range=self.buffer_policy.extended_range(result.actual_range),
            decided_at=now,
        )
        if fingerprint is not None:
            self.cache_misses += 1
            self._decision_cache[table.owner] = (fingerprint, decision)
        if tel is not None:
            if fingerprint is not None:
                outcome = "miss"
            elif self.decision_cache_enabled:
                outcome = "uncacheable"
            else:
                outcome = "disabled"
            tel.count("decision_cache", outcome=outcome)
            tel.event("decision_cache_miss", t=now, node=table.owner, outcome=outcome)
        return decision

    # ------------------------------------------------------------------ #
    # telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Install (or clear, with None) a telemetry collector.

        Armed, :meth:`decide` mirrors the cache counters into the
        ``decision_cache{outcome=...}`` series and appends
        ``decision_cache_hit`` / ``decision_cache_miss`` events; disarmed
        (None or a :class:`~repro.telemetry.NullTelemetry`), the decide
        path pays one ``None`` check.
        """
        if telemetry is not None and not getattr(telemetry, "enabled", True):
            telemetry = None
        self._telemetry = telemetry

    # ------------------------------------------------------------------ #
    # decision-cache maintenance

    def cache_info(self) -> dict[str, int]:
        """Decision-cache counters, ``RunStats``-field-named (for reports)."""
        return {
            "decision_cache_hits": self.cache_hits,
            "decision_cache_misses": self.cache_misses,
            "decision_cache_uncacheable": self.cache_uncacheable,
        }

    def clear_decision_cache(self) -> None:
        """Drop all standing decisions (counters are kept)."""
        self._decision_cache.clear()

    def describe(self) -> str:
        """Compact configuration label used in reports and figures."""
        parts = [self.protocol.name, self.mechanism.name]
        if self.buffer_policy.width > 0:
            parts.append(f"buf{self.buffer_policy.width:g}")
        if self.physical_neighbor_mode:
            parts.append("pn")
        return "+".join(parts)

    def __repr__(self) -> str:
        return (
            f"MobilitySensitiveTopologyControl(protocol={self.protocol!r}, "
            f"mechanism={self.mechanism!r}, buffer={self.buffer_policy!r}, "
            f"physical_neighbor_mode={self.physical_neighbor_mode})"
        )
