"""The paper's headline object: mobility-sensitive topology control.

:class:`MobilitySensitiveTopologyControl` wraps an *unmodified* base
protocol with the three mobility mechanisms the paper proposes/evaluates:

1. a **consistency mechanism** choosing the view behind each decision
   (baseline / view synchronization / proactive / reactive / weak),
2. a **buffer zone** extending the actual transmission range
   (Theorem 5 width or an experimental width),
3. optional **physical-neighbor forwarding** (accept packets from any
   in-range sender, not only logical neighbors).

The object is simulator-agnostic: it turns a neighbor table + current
position into a :class:`NodeDecision`.  The simulator calls it at Hello
time and (for packet-recomputing mechanisms) at forward time; library
users can call it directly on hand-built tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import BaselineConsistency, ConsistencyMechanism
from repro.core.tables import NeighborTable
from repro.core.views import Hello
from repro.protocols.base import TopologyControlProtocol
from repro.util.errors import ProtocolError

__all__ = ["NodeDecision", "MobilitySensitiveTopologyControl"]


@dataclass(frozen=True, slots=True)
class NodeDecision:
    """One node's complete topology control state after a decision.

    Attributes
    ----------
    owner:
        Deciding node.
    logical_neighbors:
        Selected logical neighbor IDs.
    actual_range:
        Range covering the farthest logical neighbor (protocol output).
    extended_range:
        Actual range plus the buffer-zone width (what the radio uses).
    decided_at:
        Physical decision time.
    """

    owner: int
    logical_neighbors: frozenset[int]
    actual_range: float
    extended_range: float
    decided_at: float


class MobilitySensitiveTopologyControl:
    """Bundle a base protocol with the paper's mobility mechanisms.

    Parameters
    ----------
    protocol:
        Any registered :class:`TopologyControlProtocol`, unmodified.
    mechanism:
        View-consistency strategy (default: mobility-insensitive baseline).
    buffer_policy:
        Buffer-zone policy (default: no buffer — width 0).
    physical_neighbor_mode:
        When True, receivers accept data packets from *any* in-range
        sender ("enabling physical neighbors", Section 5.1); the logical
        set still determines each node's transmission range.

    Examples
    --------
    >>> from repro.protocols import RngProtocol
    >>> from repro.core.buffer_zone import BufferZonePolicy
    >>> mstc = MobilitySensitiveTopologyControl(
    ...     RngProtocol(), buffer_policy=BufferZonePolicy(width=10.0))
    >>> mstc.describe()
    'rng+baseline+buf10'
    """

    def __init__(
        self,
        protocol: TopologyControlProtocol,
        mechanism: ConsistencyMechanism | None = None,
        buffer_policy: BufferZonePolicy | None = None,
        physical_neighbor_mode: bool = False,
    ) -> None:
        self.protocol = protocol
        self.mechanism = mechanism or BaselineConsistency()
        self.buffer_policy = buffer_policy or BufferZonePolicy(width=0.0)
        self.physical_neighbor_mode = bool(physical_neighbor_mode)
        if (
            self.mechanism.name == "weak"
            and not protocol.supports_conservative
        ):
            raise ProtocolError(
                f"protocol {protocol.name!r} has no conservative mode; "
                "weak consistency cannot drive it"
            )

    @property
    def recompute_on_packet(self) -> bool:
        """Whether forwarding a packet triggers a fresh decision."""
        return self.mechanism.recompute_on_packet

    @property
    def synchronized_versions(self) -> bool:
        """Whether Hello versions must be globally epoch-aligned."""
        return self.mechanism.synchronized_versions

    def decide(
        self,
        table: NeighborTable,
        now: float,
        current_hello: Hello,
        version: int | None = None,
    ) -> NodeDecision:
        """Make a full topology control decision for one node."""
        result = self.mechanism.decide(
            self.protocol, table, now, current_hello, version=version
        )
        return NodeDecision(
            owner=result.owner,
            logical_neighbors=result.logical_neighbors,
            actual_range=result.actual_range,
            extended_range=self.buffer_policy.extended_range(result.actual_range),
            decided_at=now,
        )

    def describe(self) -> str:
        """Compact configuration label used in reports and figures."""
        parts = [self.protocol.name, self.mechanism.name]
        if self.buffer_policy.width > 0:
            parts.append(f"buf{self.buffer_policy.width:g}")
        if self.physical_neighbor_mode:
            parts.append("pn")
        return "+".join(parts)

    def __repr__(self) -> str:
        return (
            f"MobilitySensitiveTopologyControl(protocol={self.protocol!r}, "
            f"mechanism={self.mechanism!r}, buffer={self.buffer_policy!r}, "
            f"physical_neighbor_mode={self.physical_neighbor_mode})"
        )
