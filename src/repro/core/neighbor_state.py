"""World-level columnar neighbor state (struct-of-arrays Hello storage).

The scalar pipeline keeps one :class:`~repro.core.tables.NeighborTable`
per node, each holding per-sender ``deque[Hello]`` histories — perfectly
fine at paper scale, but at 10k nodes a single Hello generation performs
hundreds of thousands of Python-level deque appends and Hello allocations.
:class:`NeighborState` stores the same information *columnar*: one flat
NumPy ring buffer of shape ``(slots, k)`` per field (version / x / y /
sent_at / local timestamp), where a *slot* is one (receiver, sender) pair
and ``k`` is the retained history depth.  A batched Hello delivery then
updates every receiver of one transmission with a single vectorized splice
(`record_batch`), instead of per-receiver Python calls.

Semantics are bit-identical to the scalar tables:

- per-receiver sender *insertion order* is preserved (an insertion-ordered
  ``dict[sender -> slot]`` directory per receiver), which is what keeps
  ``live_view_token`` orderings and view dict iteration identical;
- per-pair histories are bounded rings of depth ``k`` (oldest evicted),
  the exact ``deque(maxlen=k)`` behaviour;
- ``mutations`` / ``hellos_received`` counters live in flat per-node
  arrays and follow the same increment rules as the scalar tables.

Hello objects are *materialised on read* (and memoised per slot until the
slot is written again); :class:`~repro.core.views.Hello` is a frozen value
type, so a materialised copy compares equal to the original in every view
and fingerprint.

The per-node facade over this storage is
:class:`~repro.core.tables.ColumnarNeighborTable`; the batched delivery
path that feeds it lives in :mod:`repro.sim.world`.
"""

from __future__ import annotations

import numpy as np

from repro.core.views import Hello
from repro.util.validate import check_int_range

__all__ = ["NeighborState"]

_EMPTY_F = np.empty(0, dtype=np.float64)


class NeighborState:
    """Columnar Hello storage for all (receiver, sender) pairs of a world.

    Parameters
    ----------
    n_nodes:
        Number of nodes (receivers) served.
    history_depth:
        Retained Hellos per (receiver, sender) pair (``k`` of Theorem 3).
    """

    __slots__ = (
        "n_nodes",
        "k",
        "mutations",
        "hellos_received",
        "_directory",
        "_version",
        "_x",
        "_y",
        "_sent",
        "_ts",
        "_writes",
        "_latest_sent",
        "_slot_sender",
        "_n_slots",
        "_slot_cache",
        "_memo",
    )

    def __init__(self, n_nodes: int, history_depth: int) -> None:
        self.n_nodes = check_int_range("n_nodes", n_nodes, 1)
        self.k = check_int_range("history_depth", history_depth, 1)
        self.mutations = np.zeros(n_nodes, dtype=np.int64)
        self.hellos_received = np.zeros(n_nodes, dtype=np.int64)
        #: per-receiver ``{sender: slot}``; dict insertion order *is* the
        #: scalar tables' record order, which the view tokens depend on.
        self._directory: list[dict[int, int]] = [{} for _ in range(n_nodes)]
        cap = 1024
        k = self.k
        self._version = np.zeros((cap, k), dtype=np.int64)
        self._x = np.zeros((cap, k), dtype=np.float64)
        self._y = np.zeros((cap, k), dtype=np.float64)
        self._sent = np.zeros((cap, k), dtype=np.float64)
        self._ts = np.zeros((cap, k), dtype=np.float64)
        #: total writes per slot; ring head = writes % k, fill = min(writes, k)
        self._writes = np.zeros(cap, dtype=np.int64)
        #: sent_at of the newest entry per slot (freshness / expiry checks)
        self._latest_sent = np.full(cap, -np.inf, dtype=np.float64)
        self._slot_sender = np.zeros(cap, dtype=np.int64)
        self._n_slots = 0
        #: per-sender ``(receivers, slots)`` fast path: consecutive Hello
        #: generations usually reach the same receiver set, so the slot
        #: gather is one ``array_equal`` instead of a per-receiver dict walk.
        self._slot_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: per-slot materialisation memo: ``slot -> (writes, tuple[Hello])``
        self._memo: dict[int, tuple[int, tuple[Hello, ...]]] = {}

    # ------------------------------------------------------------------ #
    # storage management

    def _grow(self, need: int) -> None:
        cap = self._version.shape[0]
        new_cap = cap
        while new_cap < need:
            new_cap *= 2
        if new_cap == cap:
            return
        for name in ("_version", "_x", "_y", "_sent", "_ts"):
            old = getattr(self, name)
            fresh = np.zeros((new_cap, self.k), dtype=old.dtype)
            fresh[:cap] = old
            setattr(self, name, fresh)
        for name, fill in (
            ("_writes", 0),
            ("_slot_sender", 0),
            ("_latest_sent", -np.inf),
        ):
            old = getattr(self, name)
            fresh = np.full(new_cap, fill, dtype=old.dtype)
            fresh[:cap] = old
            setattr(self, name, fresh)

    def _alloc_slot(self, sender: int) -> int:
        slot = self._n_slots
        if slot >= self._version.shape[0]:
            self._grow(slot + 1)
        self._n_slots = slot + 1
        self._slot_sender[slot] = sender
        return slot

    def _slots_for(self, sender: int, receivers: np.ndarray) -> np.ndarray:
        slots = np.empty(receivers.size, dtype=np.intp)
        directory = self._directory
        for i, rid in enumerate(receivers.tolist()):
            d = directory[rid]
            slot = d.get(sender)
            if slot is None:
                slot = self._alloc_slot(sender)
                d[sender] = slot
            slots[i] = slot
        return slots

    # ------------------------------------------------------------------ #
    # writes

    def record_batch(self, hello: Hello, receivers: np.ndarray) -> None:
        """Record one Hello at every receiver in one vectorized splice.

        *receivers* must be unique node indices (the radio's surviving
        receiver array).  Equivalent to ``table.record_hello(hello)`` at
        each receiver, in array order.
        """
        if receivers.size == 0:
            return
        sender = hello.sender
        cached = self._slot_cache.get(sender)
        if (
            cached is not None
            and cached[0].size == receivers.size
            and np.array_equal(cached[0], receivers)
        ):
            slots = cached[1]
        else:
            slots = self._slots_for(sender, receivers)
            self._slot_cache[sender] = (receivers.copy(), slots)
        pos = self._writes[slots] % self.k
        self._version[slots, pos] = hello.version
        self._x[slots, pos] = hello.position[0]
        self._y[slots, pos] = hello.position[1]
        self._sent[slots, pos] = hello.sent_at
        self._ts[slots, pos] = hello.timestamp
        self._writes[slots] += 1
        self._latest_sent[slots] = hello.sent_at
        self.hellos_received[receivers] += 1
        self.mutations[receivers] += 1

    def record_one(self, receiver: int, hello: Hello) -> None:
        """Scalar form of :meth:`record_batch` (single receiver)."""
        d = self._directory[receiver]
        sender = hello.sender
        slot = d.get(sender)
        if slot is None:
            slot = self._alloc_slot(sender)
            d[sender] = slot
            self._slot_cache.pop(sender, None)
        pos = int(self._writes[slot]) % self.k
        self._version[slot, pos] = hello.version
        self._x[slot, pos] = hello.position[0]
        self._y[slot, pos] = hello.position[1]
        self._sent[slot, pos] = hello.sent_at
        self._ts[slot, pos] = hello.timestamp
        self._writes[slot] += 1
        self._latest_sent[slot] = hello.sent_at
        self.hellos_received[receiver] += 1
        self.mutations[receiver] += 1

    def prune(self, receiver: int, now: float, expiry: float) -> bool:
        """Drop *receiver*'s pairs not heard from within *expiry* seconds.

        Returns True (and bumps the receiver's mutation counter once, the
        scalar-table rule) when anything was dropped.  Dropped slots are
        never reused; the per-sender slot caches touching them are
        invalidated so a later Hello from the same sender starts a fresh
        history, exactly like a fresh scalar deque.
        """
        d = self._directory[receiver]
        if not d:
            return False
        latest = self._latest_sent
        stale = [s for s, slot in d.items() if now - latest[slot] > expiry]
        if not stale:
            return False
        for s in stale:
            slot = d.pop(s)
            self._memo.pop(slot, None)
            self._slot_cache.pop(s, None)
        self.mutations[receiver] += 1
        return True

    # ------------------------------------------------------------------ #
    # reads (materialisation)

    def _materialize(self, slot: int) -> tuple[Hello, ...]:
        writes = int(self._writes[slot])
        memo = self._memo.get(slot)
        if memo is not None and memo[0] == writes:
            return memo[1]
        k = self.k
        count = writes if writes < k else k
        sender = int(self._slot_sender[slot])
        version = self._version[slot]
        x = self._x[slot]
        y = self._y[slot]
        sent = self._sent[slot]
        ts = self._ts[slot]
        hellos = tuple(
            Hello(
                sender=sender,
                version=int(version[j]),
                position=(float(x[j]), float(y[j])),
                sent_at=float(sent[j]),
                timestamp=float(ts[j]),
            )
            for j in ((writes - count + i) % k for i in range(count))
        )
        self._memo[slot] = (writes, hellos)
        return hellos

    def senders(self, receiver: int) -> list[int]:
        """Sender ids recorded at *receiver*, in insertion order."""
        return list(self._directory[receiver])

    def history(self, receiver: int, sender: int) -> tuple[Hello, ...]:
        """Retained Hellos of one (receiver, sender) pair, oldest first."""
        slot = self._directory[receiver].get(sender)
        return () if slot is None else self._materialize(slot)

    def live_ids(self, receiver: int, now: float, expiry: float) -> tuple[int, ...]:
        """Sender ids with a live (non-expired) Hello, insertion order."""
        latest = self._latest_sent
        return tuple(
            s
            for s, slot in self._directory[receiver].items()
            if now - latest[slot] <= expiry
        )

    def latest_live(
        self, receiver: int, now: float, expiry: float
    ) -> dict[int, Hello]:
        """Most recent live Hello per sender (insertion-ordered dict)."""
        latest = self._latest_sent
        out: dict[int, Hello] = {}
        for s, slot in self._directory[receiver].items():
            if now - latest[slot] <= expiry:
                out[s] = self._materialize(slot)[-1]
        return out

    def live_histories(
        self, receiver: int, now: float, expiry: float
    ) -> dict[int, tuple[Hello, ...]]:
        """Full retained history per live sender (insertion-ordered dict)."""
        latest = self._latest_sent
        out: dict[int, tuple[Hello, ...]] = {}
        for s, slot in self._directory[receiver].items():
            if now - latest[slot] <= expiry:
                out[s] = self._materialize(slot)
        return out

    @property
    def n_slots(self) -> int:
        """Total (receiver, sender) pairs ever allocated (diagnostics)."""
        return self._n_slots
