"""repro — Mobility-Sensitive Topology Control in Mobile Ad Hoc Networks.

A full reproduction of Wu & Dai (IPDPS 2004 / IEEE TPDS 2006): localized
topology control protocols (RNG, Gabriel, LMST, SPT, Yao, CBTC, K-Neigh),
the paper's consistency mechanisms (strong proactive/reactive, weak,
view synchronization) and buffer zones, a from-scratch discrete-event MANET
simulator with analytic mobility models, and the experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import ExperimentSpec, run_once
>>> from repro.sim import ScenarioConfig
>>> spec = ExperimentSpec(
...     protocol="rng", mechanism="view-sync", buffer_width=10.0,
...     mean_speed=20.0,
...     config=ScenarioConfig(n_nodes=40, duration=12.0, sample_rate=2.0))
>>> result = run_once(spec, seed=7)
>>> 0.0 <= result.connectivity_ratio <= 1.0
True
"""

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    RunResult,
    RunStats,
    build_manager,
    build_mobility,
    build_world,
    run_once,
    run_repetitions,
)
from repro.core import (
    BufferZonePolicy,
    Hello,
    LocalView,
    MobilitySensitiveTopologyControl,
    MultiVersionView,
    NeighborTable,
    NodeDecision,
    SelectionResult,
    buffer_width,
    make_mechanism,
    max_delay_bound,
    required_history_depth,
    views_consistent,
    views_weakly_consistent,
)
from repro.protocols import available_protocols, make_protocol
from repro.sim import NetworkWorld, ScenarioConfig, flood

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # experiment harness
    "ExperimentSpec",
    "RunResult",
    "RunStats",
    "AggregateResult",
    "run_once",
    "run_repetitions",
    "build_manager",
    "build_mobility",
    "build_world",
    # core
    "Hello",
    "LocalView",
    "MultiVersionView",
    "NeighborTable",
    "SelectionResult",
    "NodeDecision",
    "MobilitySensitiveTopologyControl",
    "BufferZonePolicy",
    "buffer_width",
    "max_delay_bound",
    "required_history_depth",
    "views_consistent",
    "views_weakly_consistent",
    "make_mechanism",
    # protocols & sim
    "make_protocol",
    "available_protocols",
    "NetworkWorld",
    "ScenarioConfig",
    "flood",
]
