"""Trace recording: persist per-sample snapshots for offline analysis.

A :class:`TraceRecorder` captures the time series a simulation produces —
positions, ranges, logical adjacency, per-sample delivery — into plain
NumPy arrays that save/load as a single ``.npz`` file.  This is what lets
long full-scale runs be analysed (or re-plotted) without re-simulating,
and gives downstream users a stable interchange format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.world import NetworkWorld, WorldSnapshot
from repro.util.errors import SimulationError

__all__ = ["TraceRecorder", "SimulationTrace"]


@dataclass(frozen=True)
class SimulationTrace:
    """An immutable recorded run.

    Attributes
    ----------
    times:
        ``(k,)`` sample instants.
    positions:
        ``(k, n, 2)`` true positions per sample.
    logical:
        ``(k, n, n)`` boolean logical adjacency per sample.
    actual_ranges / extended_ranges:
        ``(k, n)`` per-node ranges per sample.
    delivery_ratios:
        ``(k,)`` flood delivery per sample (NaN when not probed).
    meta:
        Free-form scalars (n_nodes, normal_range, label, ...).
    """

    times: np.ndarray
    positions: np.ndarray
    logical: np.ndarray
    actual_ranges: np.ndarray
    extended_ranges: np.ndarray
    delivery_ratios: np.ndarray
    meta: dict

    @property
    def n_samples(self) -> int:
        """Number of recorded samples."""
        return int(self.times.shape[0])

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the recorded world."""
        return int(self.positions.shape[1]) if self.n_samples else 0

    def snapshot(self, index: int) -> WorldSnapshot:
        """Reconstruct the :class:`WorldSnapshot` of sample *index*.

        Distances are left to the snapshot's lazy ``dist`` property (the
        same bit-identical pairwise kernel), so reconstructing a sample
        only pays for the matrices a consumer actually touches.
        """
        return WorldSnapshot(
            time=float(self.times[index]),
            positions=self.positions[index],
            logical=self.logical[index],
            actual_ranges=self.actual_ranges[index],
            extended_ranges=self.extended_ranges[index],
            normal_range=float(self.meta.get("normal_range", np.inf)),
        )

    def save(self, path) -> None:
        """Write the trace to an ``.npz`` file."""
        meta_keys = np.array(sorted(self.meta), dtype=object)
        meta_vals = np.array([repr(self.meta[k]) for k in meta_keys], dtype=object)
        np.savez_compressed(
            path,
            times=self.times,
            positions=self.positions,
            logical=self.logical,
            actual_ranges=self.actual_ranges,
            extended_ranges=self.extended_ranges,
            delivery_ratios=self.delivery_ratios,
            meta_keys=meta_keys,
            meta_vals=meta_vals,
        )

    @classmethod
    def load(cls, path) -> "SimulationTrace":
        """Read a trace written by :meth:`save`."""
        import ast

        with np.load(path, allow_pickle=True) as data:
            meta = {
                str(k): ast.literal_eval(str(v))
                for k, v in zip(data["meta_keys"], data["meta_vals"])
            }
            return cls(
                times=data["times"],
                positions=data["positions"],
                logical=data["logical"],
                actual_ranges=data["actual_ranges"],
                extended_ranges=data["extended_ranges"],
                delivery_ratios=data["delivery_ratios"],
                meta=meta,
            )


class TraceRecorder:
    """Accumulates world snapshots into a :class:`SimulationTrace`.

    Examples
    --------
    >>> # recorder = TraceRecorder(world)
    >>> # for t in sample_times: world.run_until(t); recorder.record()
    >>> # trace = recorder.finish(); trace.save("run.npz")
    """

    def __init__(self, world: NetworkWorld, label: str = "") -> None:
        self.world = world
        self.label = label
        self._times: list[float] = []
        self._positions: list[np.ndarray] = []
        self._logical: list[np.ndarray] = []
        self._actual: list[np.ndarray] = []
        self._extended: list[np.ndarray] = []
        self._delivery: list[float] = []
        self._finished = False

    def record(self, delivery_ratio: float = float("nan")) -> None:
        """Capture the world's state *now* (optionally with a probe result)."""
        if self._finished:
            raise SimulationError("recorder already finished")
        snap = self.world.snapshot()
        self._times.append(snap.time)
        self._positions.append(snap.positions)
        self._logical.append(snap.logical)
        self._actual.append(snap.actual_ranges)
        self._extended.append(snap.extended_ranges)
        self._delivery.append(float(delivery_ratio))

    @property
    def n_recorded(self) -> int:
        """Samples captured so far."""
        return len(self._times)

    def finish(self) -> SimulationTrace:
        """Freeze the recording into an immutable trace.

        When the world was built with an armed telemetry collector, its
        frozen summary rides along as ``meta["telemetry"]``; an armed
        fault schedule is embedded as ``meta["fault_schedule"]`` (the
        :meth:`~repro.faults.FaultSchedule.as_dict` form), so a saved
        trace records both the disturbance that was injected and what
        the instrumented run measured.  Both values survive the ``.npz``
        ``repr``/``literal_eval`` metadata round-trip.
        """
        self._finished = True
        world = self.world
        n = world.config.n_nodes
        k = len(self._times)
        meta = {
            "label": self.label or world.manager.describe(),
            "n_nodes": n,
            "normal_range": world.config.normal_range,
            "duration": world.config.duration,
        }
        if world.telemetry.enabled:
            meta["telemetry"] = world.telemetry.summary().as_dict()
        if world.fault_injector is not None:
            meta["fault_schedule"] = world.fault_injector.schedule.as_dict()
        return SimulationTrace(
            times=np.asarray(self._times),
            positions=(
                np.stack(self._positions) if k else np.zeros((0, n, 2))
            ),
            logical=(np.stack(self._logical) if k else np.zeros((0, n, n), dtype=bool)),
            actual_ranges=(np.stack(self._actual) if k else np.zeros((0, n))),
            extended_ranges=(np.stack(self._extended) if k else np.zeros((0, n))),
            delivery_ratios=np.asarray(self._delivery),
            meta=meta,
        )
