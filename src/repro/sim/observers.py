"""Pluggable instrumentation: observe a running world at a fixed cadence.

The experiment runner collects a fixed set of metrics; research use often
needs one more quantity ("how many nodes have an empty logical set right
now?", "track node 7's range over time").  An :class:`ObserverSet`
schedules user callbacks through the event engine so custom probes run at
exactly the sampling instants, without forking the runner.

Example
-------
>>> # obs = ObserverSet(world)
>>> # obs.add("isolated", lambda w: int((w.snapshot().logical_degrees() == 0).sum()))
>>> # obs.start(first_at=2.0, interval=0.5)
>>> # world.run_until(10.0); series = obs.series("isolated")
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.sim.engine import PeriodicTimer
from repro.sim.world import NetworkWorld
from repro.util.errors import SimulationError
from repro.util.validate import check_positive

__all__ = ["Observation", "ObserverSet"]


@dataclass(frozen=True)
class Observation:
    """One probe result: when it ran and what it returned."""

    time: float
    value: object


@dataclass
class _Probe:
    name: str
    fn: Callable[[NetworkWorld], object]
    observations: list[Observation] = field(default_factory=list)


class ObserverSet:
    """Named probes sampled on a shared periodic schedule.

    Parameters
    ----------
    world:
        The simulation to observe.
    """

    def __init__(self, world: NetworkWorld) -> None:
        self.world = world
        self._probes: dict[str, _Probe] = {}
        self._timer: PeriodicTimer | None = None

    def add(self, name: str, fn: Callable[[NetworkWorld], object]) -> None:
        """Register probe *fn* under *name* (before or after start)."""
        if name in self._probes:
            raise SimulationError(f"probe {name!r} already registered")
        self._probes[name] = _Probe(name=name, fn=fn)

    def start(self, first_at: float, interval: float) -> None:
        """Begin sampling every *interval* seconds from *first_at*."""
        if self._timer is not None:
            raise SimulationError("observer schedule already started")
        check_positive("interval", interval)
        engine = self.world.engine
        start = max(first_at, engine.now)
        self._timer = PeriodicTimer(
            engine, interval, lambda _tick: self._sample(), first_at=start
        )

    def stop(self) -> None:
        """Stop sampling (recorded observations are kept)."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _sample(self) -> None:
        t = self.world.engine.now
        for probe in self._probes.values():
            try:
                value = probe.fn(self.world)
            except Exception as exc:
                # Raised from deep inside Engine.run, where a bare
                # exception would read as a simulator bug: name the probe
                # so the trace points at the user callback instead.
                raise SimulationError(
                    f"probe {probe.name!r} raised at t={t:.6f}: {exc}"
                ) from exc
            probe.observations.append(Observation(time=t, value=value))

    # ------------------------------------------------------------------ #

    def series(self, name: str) -> list[Observation]:
        """All observations of probe *name*, in time order."""
        try:
            return list(self._probes[name].observations)
        except KeyError:
            raise SimulationError(f"unknown probe {name!r}") from None

    def values(self, name: str) -> list[object]:
        """Just the values of probe *name*."""
        return [obs.value for obs in self.series(name)]

    def names(self) -> list[str]:
        """Registered probe names."""
        return sorted(self._probes)
