"""Local clocks with bounded skew.

The paper's asynchrony comes from two sources: jittered Hello intervals and
"inaccuracy of local clocks in individual nodes".  :class:`ClockSet` gives
every node a fixed offset drawn uniformly from ``[-max_skew, +max_skew]``;
drift within a 100 s run is negligible at the skews studied, so offsets are
constant.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validate import check_non_negative

__all__ = ["ClockSet"]


class ClockSet:
    """Per-node local clocks: ``local = physical + offset``.

    Parameters
    ----------
    n_nodes:
        Number of clocks.
    max_skew:
        Offset bound in seconds (0 = perfectly synchronized).
    rng:
        Randomness source for the offsets.
    """

    def __init__(self, n_nodes: int, max_skew: float, rng: np.random.Generator) -> None:
        check_non_negative("max_skew", max_skew)
        self.max_skew = float(max_skew)
        if max_skew == 0.0:
            self.offsets = np.zeros(n_nodes)
        else:
            self.offsets = rng.uniform(-max_skew, max_skew, size=n_nodes)

    def local_time(self, node: int, physical: float) -> float:
        """What *node*'s clock reads at physical time *physical*."""
        return float(physical + self.offsets[node])

    def physical_time(self, node: int, local: float) -> float:
        """Physical time at which *node*'s clock reads *local*."""
        return float(local - self.offsets[node])

    def epoch(self, node: int, physical: float, interval: float) -> int:
        """Index of the Hello epoch *node* believes it is in.

        Epoch ``i`` spans local time ``[i * interval, (i+1) * interval)``;
        the proactive scheme stamps all epoch-``i`` Hellos with version
        ``i``, so bounded skew bounds the physical spread of equal-version
        Hellos by ``max_skew`` — the paper's synchronous delay argument.
        """
        return int(math.floor(self.local_time(node, physical) / interval))

    def epoch_start(self, node: int, epoch: int, interval: float) -> float:
        """Physical time at which *node*'s clock enters *epoch*."""
        return self.physical_time(node, epoch * interval)
