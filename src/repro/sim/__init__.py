"""Discrete-event MANET simulator (the ns-2 substitute)."""

from repro.sim.broadcast import (
    BroadcastOutcome,
    cds_broadcast,
    cds_forward_set,
    prune_rules_1_2,
    wu_li_marking,
)
from repro.sim.clock import ClockSet
from repro.sim.config import ScenarioConfig
from repro.sim.engine import Engine, EventHandle, PeriodicTimer
from repro.sim.flood import FloodResult, directed_bfs, flood
from repro.sim.node import SimNode
from repro.sim.observers import Observation, ObserverSet
from repro.sim.packets import PacketRecord, TrafficStats, UnicastTraffic
from repro.sim.propagation import (
    LogDistance,
    ProbabilisticSINR,
    PropagationModel,
    UnitDisk,
    available_propagation_models,
    make_propagation,
)
from repro.sim.radio import ChannelStats, IdealChannel
from repro.sim.trace import SimulationTrace, TraceRecorder
from repro.sim.world import NetworkWorld, WorldSnapshot

__all__ = [
    "Engine",
    "EventHandle",
    "PeriodicTimer",
    "ScenarioConfig",
    "ClockSet",
    "IdealChannel",
    "ChannelStats",
    "PropagationModel",
    "UnitDisk",
    "LogDistance",
    "ProbabilisticSINR",
    "make_propagation",
    "available_propagation_models",
    "SimNode",
    "NetworkWorld",
    "WorldSnapshot",
    "FloodResult",
    "directed_bfs",
    "flood",
    "BroadcastOutcome",
    "cds_broadcast",
    "cds_forward_set",
    "wu_li_marking",
    "prune_rules_1_2",
    "SimulationTrace",
    "TraceRecorder",
    "UnicastTraffic",
    "PacketRecord",
    "TrafficStats",
    "ObserverSet",
    "Observation",
]
