"""Radio substrate: broadcast channel with an ideal MAC.

The paper isolates mobility effects by assuming no collision and no
contention, so the default channel model is deliberately simple and exact:
a broadcast by node *u* at physical time *t* with range *r* reaches every
node within Euclidean distance *r* of *u*'s true position at *t*, after a
small constant propagation/processing delay.  Message counters make
control-overhead comparisons (e.g. reactive flooding vs broadcast)
possible even though bandwidth is not modelled.

Reachability itself is pluggable: an optional
:class:`~repro.sim.propagation.PropagationModel` replaces the unit-disk
predicate with log-distance shadowing or probabilistic SINR reception
(candidates come from the model's superset query radius, then the exact
per-model filter runs — see ``docs/PROPAGATION.md``).  With no model (or
the :class:`~repro.sim.propagation.UnitDisk` default) the channel runs
the historical unit-disk code byte for byte.

For the paper's "Hello messages may be lost due to collision and mobility"
remark (Section 4.2) and its realistic-MAC future work, the channel also
supports independent per-receiver *control-message loss*: each Hello
delivery is dropped with probability ``hello_loss_rate``.  Data probes stay
lossless — they are the measurement instrument, not the system under test.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import GraphBackend
from repro.geometry.points import distances_from
from repro.util.validate import check_non_negative, check_probability

__all__ = ["ChannelStats", "IdealChannel"]


@dataclass
class ChannelStats:
    """Counters of channel activity (control-overhead accounting).

    ``propagation_losses`` counts candidate receivers inside the nominal
    transmit range that the armed propagation model rejected (shadowing
    or a failed reception draw); it stays zero — and the channel's hot
    path untouched — under the unit-disk default.
    """

    hello_messages: int = 0
    data_transmissions: int = 0
    sync_messages: int = 0
    deliveries: int = 0
    hello_losses: int = 0
    collisions: int = 0
    propagation_losses: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for reports."""
        return {
            "hello_messages": self.hello_messages,
            "data_transmissions": self.data_transmissions,
            "sync_messages": self.sync_messages,
            "deliveries": self.deliveries,
            "hello_losses": self.hello_losses,
            "collisions": self.collisions,
            "propagation_losses": self.propagation_losses,
        }


class IdealChannel:
    """Collision-free broadcast channel (unit disk by default).

    Parameters
    ----------
    propagation_delay:
        One-hop latency in seconds (reception happens this long after the
        transmission instant; positions are evaluated at *send* time, as
        the flight time is physically negligible).
    hello_loss_rate:
        Probability an individual Hello delivery is lost (independent per
        receiver); requires *rng* when positive.
    rng:
        Randomness source for loss draws.  The pre-1.1 keyword spelling
        ``loss_rng`` is still accepted but deprecated (every
        generator-typed argument in the package is now spelled ``rng``).
    fault_filter:
        Optional injection seam: called as ``fault_filter(now, sender,
        receivers)`` after the i.i.d. loss model and expected to return
        the surviving receiver indices.  Installed by
        :class:`~repro.sim.world.NetworkWorld` when a fault schedule is
        armed (see :mod:`repro.faults`); ``None`` costs nothing.
    propagation:
        Optional :class:`~repro.sim.propagation.PropagationModel`
        replacing the unit-disk reachability predicate in
        :meth:`receivers`.  ``None`` (or a bound
        :class:`~repro.sim.propagation.UnitDisk`) keeps the historical
        bit-identical fast path; non-unit-disk models route through the
        superset query radius plus exact per-candidate filtering, and
        rejected within-nominal-range candidates are counted as
        :attr:`ChannelStats.propagation_losses`.
    telemetry:
        Armed telemetry collector or None (the
        :class:`~repro.sim.world.NetworkWorld` installs this the same way
        it installs *fault_filter*); drops are counted under the
        ``hello_dropped`` series when armed, at zero cost otherwise.
    """

    _SENTINEL = object()

    def __init__(
        self,
        propagation_delay: float = 5e-4,
        hello_loss_rate: float = 0.0,
        rng: np.random.Generator | None = None,
        stats: ChannelStats | None = None,
        fault_filter: Callable[[float, int, np.ndarray], np.ndarray] | None = None,
        propagation=None,
        loss_rng: object = _SENTINEL,
    ) -> None:
        if loss_rng is not IdealChannel._SENTINEL:
            if rng is not None:
                raise TypeError("pass either rng or the deprecated loss_rng, not both")
            warnings.warn(
                "IdealChannel(loss_rng=...) is deprecated and will be removed "
                "in repro 2.0; use rng=...",
                FutureWarning,
                stacklevel=2,
            )
            rng = loss_rng  # type: ignore[assignment]
        self.propagation_delay = propagation_delay
        self.hello_loss_rate = hello_loss_rate
        self.rng = rng
        self.stats = stats if stats is not None else ChannelStats()
        self.fault_filter = fault_filter
        # None means unit disk; a bound UnitDisk collapses to the same
        # fast path so the hot loop guards on a single reference.
        self.propagation = (
            None if propagation is None or propagation.is_unit_disk else propagation
        )
        self.telemetry = None
        check_non_negative("propagation_delay", self.propagation_delay)
        check_probability("hello_loss_rate", self.hello_loss_rate)
        if self.hello_loss_rate > 0.0 and self.rng is None:
            raise ValueError(
                "hello_loss_rate > 0 requires an rng; for deterministic, "
                "replayable loss use a repro.faults.FaultSchedule with "
                "HelloLossBurst events instead (NetworkWorld(faults=...)), "
                "or model channel-induced loss with a seeded propagation "
                "model (ScenarioConfig(propagation=...); see "
                "repro.sim.propagation and docs/PROPAGATION.md)"
            )

    @property
    def loss_rng(self) -> np.random.Generator | None:
        """Deprecated alias of :attr:`rng` (read-only)."""
        warnings.warn(
            "IdealChannel.loss_rng is deprecated and will be removed in "
            "repro 2.0; use .rng",
            FutureWarning,
            stacklevel=2,
        )
        return self.rng

    def __repr__(self) -> str:
        return (
            f"IdealChannel(propagation_delay={self.propagation_delay!r}, "
            f"hello_loss_rate={self.hello_loss_rate!r}, stats={self.stats!r})"
        )

    def receivers(
        self,
        sender: int,
        positions: np.ndarray,
        tx_range: float,
        backend: GraphBackend | None = None,
        now: float = 0.0,
    ) -> np.ndarray:
        """Indices of nodes that hear a broadcast (sender excluded).

        Parameters
        ----------
        sender:
            Transmitting node index.
        positions:
            True ``(n, 2)`` node positions at the transmission instant.
        tx_range:
            Transmission range used for this message.
        backend:
            Optional :class:`~repro.geometry.grid.GraphBackend` built over
            *positions*; when given, the range query dispatches through it
            (grid index at scale, the same dense ``distances_from`` scan
            below the dense threshold — results are bit-identical).
        now:
            Transmission instant; only stochastic propagation models read
            it (their per-message draws are keyed on it), so unit-disk
            callers may omit it.
        """
        if tx_range <= 0.0:
            return np.empty(0, dtype=np.intp)
        model = self.propagation
        if model is None:
            if backend is not None:
                hit = backend.neighbors_within(positions[sender], tx_range)
            else:
                d = distances_from(positions[sender], positions)
                hit = np.flatnonzero(d <= tx_range)
            return hit[hit != sender]
        # Superset/subset discipline: fetch candidates within the model's
        # guaranteed superset radius, then apply the exact per-model
        # predicate.  The keyed accept() is subset-stable, so any
        # candidate superset yields the same surviving set.
        query_r = model.query_radius(tx_range)
        if backend is not None:
            cand = backend.neighbors_within(positions[sender], query_r)
        else:
            d_all = distances_from(positions[sender], positions)
            cand = np.flatnonzero(d_all <= query_r)
        cand = cand[cand != sender]
        if cand.size == 0:
            return cand.astype(np.intp)
        d = distances_from(positions[sender], positions[cand])
        ok = model.accept(sender, cand, d, tx_range, now)
        # Drop accounting: candidates the unit disk would have reached
        # but the model rejected.  ``d <= query_r`` keeps the counted
        # set identical between candidate-generation strategies (any
        # superset contains every such node).
        lost = int(np.count_nonzero(~ok & (d <= min(tx_range, query_r))))
        if lost:
            self.stats.propagation_losses += lost
            tel = self.telemetry
            if tel is not None:
                tel.count("hello_dropped", lost, reason="propagation")
                tel.event(
                    "hello_dropped", t=now, node=sender,
                    count=lost, reason="propagation",
                )
        return cand[ok]

    def surviving_hello_receivers(
        self,
        receivers: np.ndarray,
        sender: int | None = None,
        now: float | None = None,
    ) -> np.ndarray:
        """Apply per-receiver Hello loss (i.i.d. model, then fault bursts).

        Every dropped delivery — random or injected — is counted in
        :attr:`ChannelStats.hello_losses`; the :attr:`fault_filter` seam
        only runs when *sender* and *now* identify the transmission.
        """
        tel = self.telemetry
        if receivers.size and self.hello_loss_rate > 0.0:
            keep = self.rng.random(receivers.size) >= self.hello_loss_rate
            lost = int(receivers.size - keep.sum())
            self.stats.hello_losses += lost
            if tel is not None and lost:
                tel.count("hello_dropped", lost, reason="loss")
                tel.event(
                    "hello_dropped", t=now or 0.0, node=sender, count=lost, reason="loss"
                )
            receivers = receivers[keep]
        if self.fault_filter is not None and receivers.size and sender is not None:
            before = int(receivers.size)
            receivers = self.fault_filter(now, sender, receivers)
            lost = before - int(receivers.size)
            self.stats.hello_losses += lost
            if tel is not None and lost:
                tel.count("hello_dropped", lost, reason="fault")
                tel.event(
                    "hello_dropped", t=now or 0.0, node=sender, count=lost, reason="fault"
                )
        return receivers

    def arrival_time(self, sent_at: float) -> float:
        """Physical reception time for a message sent at *sent_at*."""
        return sent_at + self.propagation_delay
