"""Scenario configuration for MANET simulations.

Defaults follow Section 5.1 of the paper: 100 nodes in a 900 x 900 m^2
area, normal transmission range 250 m (mean degree ~ 18), Hello interval
drawn per node from 1 +- 0.25 s, ideal MAC, 100 s runs sampled 10 times per
second, flood sources at 10 packets per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mobility.base import Area
from repro.sim.propagation import make_propagation
from repro.util.validate import (
    check_int_range,
    check_non_negative,
    check_positive,
)

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """All scenario-level parameters of one simulation run.

    Attributes
    ----------
    n_nodes:
        Number of nodes.
    area:
        Deployment rectangle.
    normal_range:
        Normal (maximum) transmission range, metres.
    duration:
        Simulated time, seconds.
    hello_interval:
        Nominal Hello interval ``Delta``, seconds.
    hello_jitter:
        Half-width of the per-node interval draw (paper: 0.25 s around 1 s).
    hello_expiry:
        Age after which a neighbor's Hello no longer defines a link.
    history_depth:
        Retained Hellos per neighbor (``k``; weak consistency needs >= 2).
    sample_rate:
        Metric snapshots per second.
    warmup:
        Seconds before the first snapshot (lets Hello tables fill).
    propagation_delay:
        One-hop message latency, seconds (ideal MAC, so tiny and constant).
    max_clock_skew:
        Bound on each node's local-clock offset, seconds.
    reactive_flood_delay:
        Propagation bound of the reactive scheme's initiation flood, s.
    hello_loss_rate:
        Independent per-receiver Hello loss probability (0 = ideal MAC).
    hello_tx_duration:
        Hello airtime for the collision model, seconds; two Hellos
        overlapping within this window collide at common receivers
        (0 = ideal MAC, the paper's default).
    propagation:
        Propagation-model name (``unit-disk`` — the paper's channel and
        the default — ``log-distance``, or ``sinr``); see
        :mod:`repro.sim.propagation` and ``docs/PROPAGATION.md``.
    propagation_params:
        Keyword arguments for the propagation-model constructor (e.g.
        ``{"path_loss_exponent": 4.0, "sigma_db": 6.0}``).
    """

    n_nodes: int = 100
    area: Area = field(default_factory=lambda: Area(900.0, 900.0))
    normal_range: float = 250.0
    duration: float = 100.0
    hello_interval: float = 1.0
    hello_jitter: float = 0.25
    hello_expiry: float = 2.5
    history_depth: int = 3
    sample_rate: float = 10.0
    warmup: float = 2.0
    propagation_delay: float = 5e-4
    max_clock_skew: float = 0.01
    reactive_flood_delay: float = 0.02
    hello_loss_rate: float = 0.0
    hello_tx_duration: float = 0.0
    propagation: str = "unit-disk"
    propagation_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_int_range("n_nodes", self.n_nodes, 2)
        check_positive("normal_range", self.normal_range)
        check_positive("duration", self.duration)
        check_positive("hello_interval", self.hello_interval)
        check_non_negative("hello_jitter", self.hello_jitter)
        if self.hello_jitter >= self.hello_interval:
            raise ValueError("hello_jitter must be smaller than hello_interval")
        check_positive("hello_expiry", self.hello_expiry)
        check_int_range("history_depth", self.history_depth, 1)
        check_positive("sample_rate", self.sample_rate)
        check_non_negative("warmup", self.warmup)
        check_non_negative("propagation_delay", self.propagation_delay)
        check_non_negative("max_clock_skew", self.max_clock_skew)
        check_non_negative("reactive_flood_delay", self.reactive_flood_delay)
        if not (0.0 <= self.hello_loss_rate < 1.0):
            raise ValueError(
                f"hello_loss_rate must be in [0, 1), got {self.hello_loss_rate}"
            )
        check_non_negative("hello_tx_duration", self.hello_tx_duration)
        if self.hello_tx_duration >= self.hello_interval:
            raise ValueError("hello_tx_duration must be far below hello_interval")
        # Fail at configuration time, not mid-run: constructing the model
        # validates the name and every parameter (the instance is
        # discarded; the world builds and seeds its own).
        make_propagation(self.propagation, **self.propagation_params)

    @property
    def max_hello_interval(self) -> float:
        """Largest per-node Hello interval the jitter can produce."""
        return self.hello_interval + self.hello_jitter

    @property
    def n_samples(self) -> int:
        """Number of metric snapshots in ``[warmup, duration]``."""
        return max(0, int((self.duration - self.warmup) * self.sample_rate))
