"""Efficient broadcast via a connected dominating set (CDS).

Section 4.1 of the paper contrasts the reactive scheme's *flooding* (every
node forwards once) with an efficient *broadcast* "implemented by selecting
a small forward node set [34]" — Wu & Dai's own generic broadcast scheme.
This module builds that substrate:

- the **Wu-Li marking rule**: a node joins the CDS if it has two neighbors
  that are not directly connected;
- **pruning Rules 1 & 2** (Dai & Wu): a marked node is unmarked when one
  higher-priority marked neighbor (Rule 1) or two connected higher-priority
  marked neighbors (Rule 2) jointly cover its neighborhood;
- a broadcast primitive where only source + CDS members forward, with
  transmission counts comparable to flooding's ``n``.

On a connected graph the pruned set remains a CDS, so CDS broadcast
reaches every node that flooding reaches — with far fewer transmissions
(the quantity the paper's overhead argument turns on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.flood import directed_bfs

__all__ = ["wu_li_marking", "prune_rules_1_2", "cds_forward_set", "BroadcastOutcome", "cds_broadcast"]


def wu_li_marking(adjacency: np.ndarray) -> np.ndarray:
    """Wu-Li marking rule over an undirected boolean adjacency.

    Node v is marked iff it has two neighbors u, w with no edge (u, w).
    The marked set of a connected graph is a connected dominating set.
    """
    n = adjacency.shape[0]
    marked = np.zeros(n, dtype=bool)
    for v in range(n):
        nbrs = np.flatnonzero(adjacency[v])
        if nbrs.size < 2:
            continue
        # v is marked unless its neighborhood is a clique.
        sub = adjacency[np.ix_(nbrs, nbrs)]
        pairs = nbrs.size * (nbrs.size - 1)
        if sub.sum() < pairs:
            marked[v] = True
    return marked


def prune_rules_1_2(adjacency: np.ndarray, marked: np.ndarray) -> np.ndarray:
    """Dai-Wu restricted pruning (Rules 1 and 2) with ID priority.

    Rule 1: unmark v if a marked neighbor u with higher ID covers N(v).
    Rule 2: unmark v if two *connected* marked neighbors u, w with higher
    IDs jointly cover N(v).  Priority by ID keeps the rules consistent
    (no mutual unmarking), preserving the CDS property.
    """
    n = adjacency.shape[0]
    result = marked.copy()
    for v in range(n):
        if not result[v]:
            continue
        nv = adjacency[v]
        cover_targets = nv.copy()
        candidates = [
            u
            for u in np.flatnonzero(nv)
            if marked[u] and u > v
        ]
        pruned = False
        # Rule 1.
        for u in candidates:
            if not (cover_targets & ~adjacency[u] & ~_unit(n, u)).any():
                pruned = True
                break
        # Rule 2.
        if not pruned:
            for i, u in enumerate(candidates):
                for w in candidates[i + 1 :]:
                    if not adjacency[u, w]:
                        continue
                    joint = adjacency[u] | adjacency[w] | _unit(n, u) | _unit(n, w)
                    if not (cover_targets & ~joint).any():
                        pruned = True
                        break
                if pruned:
                    break
        if pruned:
            result[v] = False
    return result


def _unit(n: int, i: int) -> np.ndarray:
    out = np.zeros(n, dtype=bool)
    out[i] = True
    return out


def cds_forward_set(adjacency: np.ndarray) -> np.ndarray:
    """Marked-and-pruned forward set (mask) for broadcast on *adjacency*."""
    return prune_rules_1_2(adjacency, wu_li_marking(adjacency))


@dataclass(frozen=True)
class BroadcastOutcome:
    """Result of one broadcast: coverage and transmission cost."""

    source: int
    reached: np.ndarray
    transmissions: int

    @property
    def coverage(self) -> float:
        """Fraction of all nodes reached (source included)."""
        n = self.reached.shape[0]
        return float(self.reached.sum() / n) if n else 1.0


def cds_broadcast(adjacency: np.ndarray, source: int) -> BroadcastOutcome:
    """Broadcast where only the source and CDS members forward.

    The effective forwarding graph keeps out-edges only from forwarding
    nodes; reception is unrestricted.  Transmissions = forwarding nodes
    actually reached (each forwards once).
    """
    forward = cds_forward_set(adjacency)
    forward = forward.copy()
    forward[source] = True
    restricted = adjacency & forward[:, np.newaxis]
    reached = directed_bfs(restricted, source)
    transmissions = int((reached & forward).sum())
    return BroadcastOutcome(source=source, reached=reached, transmissions=transmissions)
