"""Pluggable propagation models: reachability beyond the unit disk.

The paper's channel is a pure unit disk — a broadcast at range *r*
reaches exactly the nodes within Euclidean distance *r*.  This module
extracts that predicate into a seam so the same simulator can run under
non-ideal radios (log-distance path loss with shadowing, probabilistic
SINR-style reception) without touching the Hello pipeline, the decision
logic, or the metrics layer.

Three models ship:

- :class:`UnitDisk` — the paper's channel and the default.  Every call
  site guards on :attr:`PropagationModel.is_unit_disk` and falls through
  to the historical code path, so default runs are *bit-identical* to the
  pre-seam simulator (proven by ``tests/test_property_propagation.py``
  and the ``benchmarks/digest_e2e.py`` trace digest).
- :class:`LogDistance` — log-distance path loss (exponent ``n``, per the
  mininet-wifi ``logDistance exp=4`` convention) with deterministic
  per-link log-normal shadowing: each unordered node pair draws one
  truncated normal ``X ~ N(0, sigma_db^2)`` that rescales the pair's
  effective range by ``10^(X / (10 n))``.  Links are symmetric and
  *time-invariant*: the same pair always gets the same verdict.
- :class:`ProbabilisticSINR` — distance-dependent reception probability
  (a sigmoid falling through ``midpoint * r``, hard zero past
  ``cutoff * r``); every *directed message* draws independently, so the
  link verdict is stochastic in time.

**Determinism contract.**  All randomness is *stateless keyed hashing*
(a vectorized splitmix64 finalizer over the pair/message key and the
model's bound seed), never sequential RNG draws.  Keyed draws are
order-independent and subset-stable: evaluating a superset of candidate
links and filtering yields bit-identical verdicts to evaluating each
link alone.  That is what lets the scalar and batched Hello pipelines —
which examine candidate sets of different sizes in different orders —
stay bit-identical under every model, and what makes runs reproducible
at any worker count.

**Superset-radius discipline.**  Candidate generation reuses the
existing grid machinery: :meth:`PropagationModel.query_radius` returns a
radius that is guaranteed to contain every potentially accepted receiver
(the shadowing truncation bound for :class:`LogDistance`, the hard
cutoff for :class:`ProbabilisticSINR`), the grid query fetches that
superset, and :meth:`PropagationModel.accept` applies the exact
per-model predicate — the same superset/subset pattern
``hello_batch.py`` uses for stale-grid receiver lookup.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.validate import check_non_negative, check_positive, require

__all__ = [
    "PropagationModel",
    "UnitDisk",
    "LogDistance",
    "ProbabilisticSINR",
    "UNIT_DISK",
    "make_propagation",
    "available_propagation_models",
]

_U64 = np.uint64
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — the keyed-hash primitive.

    A bijective avalanche over uint64 (wrapping arithmetic is the
    point); platform-stable and order-independent, unlike sequential
    generator draws.
    """
    z = x.astype(np.uint64) + _U64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
    return z ^ (z >> _U64(31))


def _unit(h: np.ndarray) -> np.ndarray:
    """Map hashes to uniforms in [0, 1) (53-bit mantissa fill)."""
    return (h >> _U64(11)).astype(np.float64) * (2.0**-53)


def _normal(h: np.ndarray) -> np.ndarray:
    """Standard normal per hash via Box-Muller (one variate per key)."""
    u1 = _unit(h)
    u2 = _unit(_mix64(h ^ _U64(0xD1B54A32D192ED03)))
    # 1 - u1 lies in (0, 1], so the log is finite everywhere.
    return np.sqrt(-2.0 * np.log1p(-u1)) * np.cos(2.0 * np.pi * u2)


def _seed_key(seed: int) -> np.uint64:
    return _mix64(np.asarray([seed & _MASK64], dtype=np.uint64))[0]


def _pair_key(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Unordered-pair key: symmetric in (a, b), unique below 2^32 ids."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return (lo << _U64(32)) | hi


def _directed_key(sender: np.ndarray, receiver: np.ndarray) -> np.ndarray:
    a = np.asarray(sender, dtype=np.uint64)
    b = np.asarray(receiver, dtype=np.uint64)
    return (a << _U64(32)) | b


class PropagationModel:
    """Reachability predicate of one radio model.

    Subclasses define *who hears a broadcast*: candidate generation asks
    :meth:`query_radius` for a superset radius, the grid (or dense scan)
    fetches candidates, and :meth:`accept` gives the exact verdict per
    candidate.  The dense :meth:`in_range_matrix` is the same predicate
    over a full distance matrix, for the snapshot layer.

    Attributes
    ----------
    name:
        Registry name (``unit-disk`` / ``log-distance`` / ``sinr``).
    is_unit_disk:
        True only for :class:`UnitDisk`; call sites use it to fall
        through to the historical (bit-identical) code paths.
    stochastic:
        True when link verdicts vary per message (time-dependent keyed
        draws).  Deterministic-link models (``False``) give every
        (pair, range) the same verdict forever, which keeps topology
        oracles that compare against a reference topology sound.
    """

    name = "abstract"
    is_unit_disk = False
    stochastic = False

    def __init__(self) -> None:
        self._key = _seed_key(0)

    def bind(self, seed: int) -> "PropagationModel":
        """Key the model's hash streams to *seed* (returns self).

        The world binds every non-unit-disk model from its own named
        seed stream, so two worlds with the same root seed draw the
        same shadowing / reception realisations.
        """
        self._key = _seed_key(int(seed))
        return self

    def query_radius(self, tx_range: float) -> float:
        """Superset radius: every accepted receiver lies within it."""
        raise NotImplementedError

    def accept(
        self,
        sender: int | np.ndarray,
        receivers: np.ndarray,
        distances: np.ndarray,
        tx_range: float | np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Boolean mask: which candidate receivers hear the broadcast.

        Elementwise and subset-stable — the verdict for a given
        (sender, receiver, distance, range, time) tuple never depends on
        which other candidates are evaluated alongside it.  *sender* and
        *tx_range* broadcast against *receivers*/*distances*.
        """
        raise NotImplementedError

    def in_range_matrix(
        self, dist: np.ndarray, ranges: np.ndarray, now: float
    ) -> np.ndarray:
        """Dense directed reachability: ``out[u, v]`` iff v hears u.

        The same predicate as :meth:`accept` over a full ``(n, n)``
        distance matrix with per-row transmit ranges; the diagonal is
        left to the caller.
        """
        raise NotImplementedError

    def staleness_allowance(self, config) -> float:
        """Extra information-age (seconds) topology oracles must allow.

        Stochastic reception has no fault window an oracle could skip —
        every Hello generation may thin independently — so stochastic
        models charge a standing allowance (see
        :func:`repro.faults.oracles.theorem5_slack`); deterministic-link
        models charge nothing.
        """
        return 0.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UnitDisk(PropagationModel):
    """The paper's channel: heard iff ``d <= tx_range``, exactly.

    The default model.  Call sites special-case
    :attr:`~PropagationModel.is_unit_disk` and run the historical code
    unchanged, so the seam costs nothing and default runs stay
    byte-identical to the pre-seam simulator; the methods below are the
    reference semantics those fast paths implement.
    """

    name = "unit-disk"
    is_unit_disk = True

    def query_radius(self, tx_range: float) -> float:
        return float(tx_range)

    def accept(self, sender, receivers, distances, tx_range, now):
        return distances <= tx_range

    def in_range_matrix(self, dist, ranges, now):
        return dist <= np.asarray(ranges)[:, np.newaxis]


#: Shared default instance (stateless, so one is enough).
UNIT_DISK = UnitDisk()


class LogDistance(PropagationModel):
    """Log-distance path loss with deterministic per-pair shadowing.

    Received power falls as ``10 n log10(d)`` (path-loss exponent *n*,
    the mininet-wifi ``logDistance exp=4`` convention) plus a log-normal
    shadowing term ``X ~ N(0, sigma_db^2)`` drawn *once per unordered
    node pair* from the keyed hash — the quasi-static shadowing regime,
    where obstacles between two nodes persist.  Solving the link budget
    for distance, a pair's effective range is::

        r_eff(u, v) = tx_range * 10^(X_uv / (10 n))

    so favorable shadowing stretches reach and adverse shadowing
    shrinks it, symmetrically (``X_uv = X_vu``).  *X* is truncated at
    ``±truncate_sigma`` standard deviations, which bounds the stretch
    factor and gives :meth:`query_radius` its finite superset radius.

    Links are symmetric and time-invariant (:attr:`stochastic` is
    False): verdicts depend only on the pair, the distance, and the
    bound seed.

    Parameters
    ----------
    path_loss_exponent:
        Path-loss exponent *n* (free space 2, the exemplar's urban 4).
        Must be finite and strictly positive.
    sigma_db:
        Shadowing standard deviation in dB (0 disables shadowing,
        leaving a pure — still unit-disk-equivalent — power law).
    truncate_sigma:
        Truncation of the shadowing draw, in standard deviations.
    """

    name = "log-distance"

    def __init__(
        self,
        path_loss_exponent: float = 4.0,
        sigma_db: float = 4.0,
        truncate_sigma: float = 3.0,
    ) -> None:
        super().__init__()
        # NaN and negative exponents both die here (check_non_negative
        # rejects non-finite values); zero is rejected separately since
        # the range factor divides by the exponent.
        check_non_negative("path_loss_exponent", path_loss_exponent)
        require(
            path_loss_exponent > 0.0,
            f"path_loss_exponent must be strictly positive, got {path_loss_exponent!r}",
        )
        check_non_negative("sigma_db", sigma_db)
        check_positive("truncate_sigma", truncate_sigma)
        self.path_loss_exponent = float(path_loss_exponent)
        self.sigma_db = float(sigma_db)
        self.truncate_sigma = float(truncate_sigma)

    def __repr__(self) -> str:
        return (
            f"LogDistance(path_loss_exponent={self.path_loss_exponent!r}, "
            f"sigma_db={self.sigma_db!r}, truncate_sigma={self.truncate_sigma!r})"
        )

    def _factor(self, key: np.ndarray) -> np.ndarray:
        """Per-pair range stretch ``10^(X / (10 n))``, X truncated."""
        bound = self.truncate_sigma * self.sigma_db
        shadow = np.clip(self.sigma_db * _normal(_mix64(key ^ self._key)), -bound, bound)
        return 10.0 ** (shadow / (10.0 * self.path_loss_exponent))

    @property
    def max_stretch(self) -> float:
        """Largest possible range factor (the truncation bound)."""
        return 10.0 ** (
            self.truncate_sigma * self.sigma_db / (10.0 * self.path_loss_exponent)
        )

    def query_radius(self, tx_range: float) -> float:
        return float(tx_range) * self.max_stretch

    def accept(self, sender, receivers, distances, tx_range, now):
        return distances <= tx_range * self._factor(_pair_key(sender, receivers))

    def in_range_matrix(self, dist, ranges, now):
        n = dist.shape[0]
        idx = np.arange(n, dtype=np.uint64)
        key = _pair_key(idx[:, np.newaxis], idx[np.newaxis, :])
        return dist <= np.asarray(ranges)[:, np.newaxis] * self._factor(key)


class ProbabilisticSINR(PropagationModel):
    """Per-message probabilistic reception with a sigmoid distance law.

    A coarse stand-in for SINR-threshold reception under fast fading:
    the success probability falls smoothly through ``midpoint *
    tx_range`` (where it is 1/2) with slope set by *steepness*, and is
    hard zero beyond ``cutoff * tx_range``::

        p(d) = 1 / (1 + (d / (midpoint r))^steepness)   for d <= cutoff r

    Each *directed message* — (sender, receiver, send time) — draws an
    independent keyed uniform, so the same link may succeed now and fail
    an interval later (:attr:`stochastic` is True).  The draws are still
    pure functions of the bound seed, so runs replay bit-identically.

    Parameters
    ----------
    midpoint:
        Fraction of the transmit range at which reception is 50/50.
    steepness:
        Sigmoid exponent (larger = sharper edge; the unit disk is the
        ``steepness -> inf``, ``midpoint = cutoff = 1`` limit).
    cutoff:
        Hard reachability bound as a multiple of the transmit range;
        also the superset-radius factor.  Must be >= 1 so that the
        model's candidate superset covers the nominal range (keeping
        within-range drop accounting identical across pipelines).
    """

    name = "sinr"
    stochastic = True

    def __init__(
        self,
        midpoint: float = 0.85,
        steepness: float = 8.0,
        cutoff: float = 1.2,
    ) -> None:
        super().__init__()
        check_positive("midpoint", midpoint)
        check_positive("steepness", steepness)
        check_positive("cutoff", cutoff)
        require(cutoff >= 1.0, f"cutoff must be >= 1, got {cutoff!r}")
        require(
            midpoint <= cutoff,
            f"midpoint ({midpoint!r}) must not exceed cutoff ({cutoff!r})",
        )
        self.midpoint = float(midpoint)
        self.steepness = float(steepness)
        self.cutoff = float(cutoff)

    def __repr__(self) -> str:
        return (
            f"ProbabilisticSINR(midpoint={self.midpoint!r}, "
            f"steepness={self.steepness!r}, cutoff={self.cutoff!r})"
        )

    def query_radius(self, tx_range: float) -> float:
        return float(tx_range) * self.cutoff

    def success_probability(
        self, distances: np.ndarray, tx_range: float | np.ndarray
    ) -> np.ndarray:
        """Reception probability at each distance for *tx_range*."""
        d = np.asarray(distances, dtype=np.float64)
        scale = np.asarray(tx_range, dtype=np.float64) * self.midpoint
        with np.errstate(divide="ignore", over="ignore"):
            p = 1.0 / (1.0 + (d / scale) ** self.steepness)
        return np.where(d <= np.asarray(tx_range) * self.cutoff, p, 0.0)

    def _draw(self, key: np.ndarray, now: float) -> np.ndarray:
        t_bits = np.float64(now).view(np.uint64)
        return _unit(_mix64(_mix64(key ^ self._key) ^ t_bits))

    def accept(self, sender, receivers, distances, tx_range, now):
        p = self.success_probability(distances, tx_range)
        return self._draw(_directed_key(sender, receivers), now) < p

    def in_range_matrix(self, dist, ranges, now):
        n = dist.shape[0]
        idx = np.arange(n, dtype=np.uint64)
        key = _directed_key(idx[:, np.newaxis], idx[np.newaxis, :])
        p = self.success_probability(dist, np.asarray(ranges)[:, np.newaxis])
        return self._draw(key, now) < p

    def staleness_allowance(self, config) -> float:
        """One full Hello generation of extra information age.

        Per-message loss can silently thin any Hello generation — there
        is no fault window an oracle could skip — so the Theorem-5
        oracle charges one worst-case Hello interval of additional
        staleness on top of the unit-disk arithmetic.
        """
        return float(config.max_hello_interval)


_MODELS: dict[str, type[PropagationModel]] = {
    UnitDisk.name: UnitDisk,
    LogDistance.name: LogDistance,
    ProbabilisticSINR.name: ProbabilisticSINR,
}


def available_propagation_models() -> list[str]:
    """Registered model names, sorted."""
    return sorted(_MODELS)


def make_propagation(name: str, **kwargs) -> PropagationModel:
    """Instantiate a registered propagation model by name.

    ``make_propagation("unit-disk")`` returns the shared
    :data:`UNIT_DISK` instance (the model is stateless); other names
    construct fresh instances with *kwargs* forwarded to the
    constructor.
    """
    cls = _MODELS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown propagation model {name!r} "
            f"(available: {', '.join(available_propagation_models())})"
        )
    if cls is UnitDisk and not kwargs:
        return UNIT_DISK
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for propagation model {name!r}: {exc}"
        ) from exc
