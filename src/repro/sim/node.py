"""Per-node simulation state.

A :class:`SimNode` owns exactly the state a real node would: its neighbor
table (Hello history), its latest topology control decision, and its Hello
version counter.  Positions live in the mobility model; the node never
reads them directly — the Hello process samples them on its behalf at send
time, which is precisely the information boundary the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manager import NodeDecision
from repro.core.tables import NeighborTable

__all__ = ["SimNode"]


@dataclass
class SimNode:
    """State of one simulated node.

    Attributes
    ----------
    node_id:
        Index in the world (0-based).
    table:
        Hello history and view factory.
    decision:
        Latest topology control decision (None until the first Hello).
    next_version:
        Next Hello version this node will stamp (baseline mode counts from
        1; synchronized modes overwrite with the epoch number).
    hellos_sent:
        Diagnostics counter.
    """

    node_id: int
    table: NeighborTable
    decision: NodeDecision | None = None
    next_version: int = 1
    hellos_sent: int = 0

    #: decisions recomputed on packet forwarding (view-sync / proactive)
    packet_decisions: int = field(default=0, repr=False)

    @property
    def logical_neighbors(self) -> frozenset[int]:
        """Current logical neighbor set (empty before the first decision)."""
        return self.decision.logical_neighbors if self.decision else frozenset()

    @property
    def extended_range(self) -> float:
        """Current extended transmission range (0 before the first decision)."""
        return self.decision.extended_range if self.decision else 0.0

    @property
    def actual_range(self) -> float:
        """Current actual (pre-buffer) transmission range."""
        return self.decision.actual_range if self.decision else 0.0
