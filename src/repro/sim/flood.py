"""Flooding over the effective topology — the weak-connectivity probe.

The paper measures connectivity as the delivery ratio of broadcast packets
from random sources (Section 5.1).  A flood completing in well under 10 ms
is "a rather accurate approximation of the strict connectivity", so the
probe here is an instantaneous BFS over the *directed* effective topology
at the flood instant: node u's transmission reaches v iff v lies within
u's extended range, and v accepts iff it appears in u's attached logical
neighbor set (or always, in physical-neighbor mode).

For mechanisms that recompute on packet events (view synchronization,
proactive consistency) every node re-decides at flood time first — under
the proactive scheme on the packet's Hello version.  Those redecisions go
through the manager's view-fingerprint decision cache: when no Hello has
arrived since the previous packet, all n recomputations are cache hits
and the probe's cost collapses to the BFS itself (see
``docs/PERFORMANCE.md`` and ``benchmarks/bench_decide.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.csr import csr_bfs
from repro.sim.world import NetworkWorld

__all__ = ["FloodResult", "directed_bfs", "flood"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flood probe.

    Attributes
    ----------
    source:
        Originating node.
    reached:
        Boolean mask over nodes (source included).
    transmissions:
        Number of nodes that forwarded (every reached node forwards once).
    """

    source: int
    reached: np.ndarray
    transmissions: int

    @property
    def delivery_ratio(self) -> float:
        """Fraction of *other* nodes the flood reached — the paper's
        connectivity-ratio sample (1.0 means everyone got the packet)."""
        n = self.reached.shape[0]
        if n <= 1:
            return 1.0
        return float((self.reached.sum() - 1) / (n - 1))


def directed_bfs(adjacency: np.ndarray, source: int) -> np.ndarray:
    """Reachable-set mask by BFS over a dense directed boolean adjacency.

    Vectorized frontier expansion: each round ORs the out-neighborhoods of
    the current frontier, so the cost is O(diameter * n^2 / word-size).
    """
    n = adjacency.shape[0]
    reached = np.zeros(n, dtype=bool)
    reached[source] = True
    frontier = reached.copy()
    while frontier.any():
        nxt = adjacency[frontier].any(axis=0) & ~reached
        reached |= nxt
        frontier = nxt
    return reached


def flood(
    world: NetworkWorld,
    source: int,
    physical_neighbor_mode: bool | None = None,
) -> FloodResult:
    """Run one instantaneous flood probe from *source* at the current time.

    Honors the manager's packet-recomputation semantics; the per-node
    standing decisions are updated exactly as real packet handling would
    update them.
    """
    manager = world.manager
    pn_mode = (
        manager.physical_neighbor_mode
        if physical_neighbor_mode is None
        else physical_neighbor_mode
    )
    if manager.recompute_on_packet:
        version = None
        if manager.synchronized_versions:
            # The packet carries the source's latest *complete* version:
            # the one before the Hello it most recently sent (everyone's
            # Hellos of that version have arrived by now).
            src = world.nodes[source]
            available = src.table.available_versions()
            complete = [v for v in available if v < src.next_version - 1]
            version = max(complete, default=max(available, default=None))
        world.redecide_all(version=version)
    snap = world.snapshot()
    if snap.prefers_dense:
        reached = directed_bfs(snap.effective_directed(pn_mode), source)
    else:
        # Sparse-first at scale: CSR frontier expansion over the effective
        # delivery graph — O(edges) per probe, no (n, n) allocation.
        reached = csr_bfs(snap.effective_directed_csr(pn_mode), source)
    transmissions = int(reached.sum())
    world.channel.stats.data_transmissions += transmissions
    return FloodResult(source=source, reached=reached, transmissions=transmissions)
