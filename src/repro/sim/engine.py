"""Discrete-event simulation engine.

A small, deterministic replacement for the scheduling core of ns-2:

- a binary-heap event queue keyed on ``(time, sequence)`` so simultaneous
  events fire in scheduling order (deterministic across runs),
- O(1) amortised cancellation via tombstones,
- periodic timers built on top of one-shot events.

Heap entries are plain ``(time, seq, handle, fn, args)`` tuples: ``seq`` is
unique, so tuple comparison never reaches the payload and stays entirely in
C — measurably faster than a dataclass ``__lt__`` on schedule-heavy runs.
:meth:`Engine.schedule_batch` additionally skips the :class:`EventHandle`
allocation for events that will never be cancelled or inspected (``handle``
is None in the tuple), which is what the batched Hello delivery pipeline
rides on.

The engine knows nothing about networks; :mod:`repro.sim.world` composes it
with nodes, radio and protocol agents.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from typing import Any

from repro.util.errors import ScheduleError

__all__ = ["Engine", "EventHandle", "PeriodicTimer"]


class EventHandle:
    """Handle to a scheduled event; allows cancellation and inspection."""

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "_engine")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        engine: "Engine | None" = None,
    ) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class Engine:
    """Deterministic discrete-event scheduler.

    Examples
    --------
    >>> eng = Engine()
    >>> seen = []
    >>> _ = eng.schedule_at(1.0, seen.append, "a")
    >>> _ = eng.schedule_at(0.5, seen.append, "b")
    >>> eng.run(until=2.0)
    >>> seen
    ['b', 'a']
    >>> eng.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap of (time, seq, handle-or-None, fn, args) tuples; seq is unique
        # so comparisons stop at the second element.
        self._queue: list[tuple[float, int, EventHandle | None, Callable[..., Any], tuple]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        # Cancelled entries still sitting in the heap.  Cancellation stays
        # O(1) (tombstoning), but the heap is compacted whenever tombstones
        # outnumber live events, so long-running simulations with heavy
        # timer churn never accumulate dead entries.
        self._tombstones = 0
        self._event_hook: Callable[[float], Any] | None = None
        # Armed telemetry or None; the seam costs one None check per
        # run()/step() call, never per event (see set_telemetry).
        self._telemetry: Any | None = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics / tests)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the queue (O(1))."""
        return len(self._queue) - self._tombstones

    def set_event_hook(self, hook: Callable[[float], Any] | None) -> None:
        """Install (or clear, with None) a post-event observer seam.

        ``hook(now)`` fires after every executed event.  This exists for
        continuous invariant auditing (``repro fuzz --deep`` audits the
        world between events, not just at sampling instants); the hook
        must not schedule into the past.  When unset the only cost is one
        ``None`` check per event.
        """
        self._event_hook = hook

    def set_telemetry(self, telemetry: Any | None) -> None:
        """Install (or clear, with None) a telemetry collector.

        When armed, each :meth:`run` segment is timed under the
        ``engine_run`` span and the processed/pending event counts are
        folded into the ``engine_events`` counter and the
        ``engine_pending_events`` gauge.  Disarmed (None, or a
        :class:`~repro.telemetry.NullTelemetry`), the only cost is one
        ``None`` check per ``run`` call — nothing per event.
        """
        if telemetry is not None and not getattr(telemetry, "enabled", True):
            telemetry = None
        self._telemetry = telemetry

    def _note_cancelled(self) -> None:
        """Account for one newly tombstoned entry; compact if they dominate."""
        self._tombstones += 1
        if self._tombstones * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap and restore heap order."""
        self._queue = [e for e in self._queue if e[2] is None or not e[2].cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation *time*."""
        if not math.isfinite(time):
            raise ScheduleError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule into the past: t={time:.6f} < now={self._now:.6f}"
            )
        # Positional on purpose: keyword passing costs ~140 ns per event,
        # which is measurable on the schedule-heavy hot path.
        t = float(time)
        handle = EventHandle(t, fn, args, self)
        heapq.heappush(self._queue, (t, next(self._seq), handle, fn, args))
        return handle

    def schedule_batch(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at *time* without allocating an EventHandle.

        Fire-and-forget variant of :meth:`schedule_at` for events that are
        never cancelled or inspected (e.g. coalesced Hello batch deliveries).
        Ordering relative to :meth:`schedule_at` events is identical — both
        draw from the same ``(time, seq)`` sequence.
        """
        if not math.isfinite(time):
            raise ScheduleError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule into the past: t={time:.6f} < now={self._now:.6f}"
            )
        heapq.heappush(self._queue, (float(time), next(self._seq), None, fn, args))

    def schedule_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` *delay* seconds from now (delay >= 0)."""
        if delay < 0:
            raise ScheduleError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def run(self, until: float) -> None:
        """Execute events in order up to and including time *until*.

        On return ``now == until`` even if the queue drained earlier, so
        repeated ``run`` calls advance a simulation in segments.
        """
        if until < self._now:
            raise ScheduleError(f"cannot run backwards: until={until} < now={self._now}")
        if self._running:
            raise ScheduleError("engine is already running (re-entrant run() call)")
        tel = self._telemetry
        if tel is None:
            self._run_segment(until)
            return
        with tel.span("engine_run"):
            before = self._events_processed
            try:
                self._run_segment(until)
            finally:
                tel.count("engine_events", self._events_processed - before)
                tel.gauge("engine_pending_events", self.pending_events)

    def _run_segment(self, until: float) -> None:
        """The event loop proper (validated arguments; internal)."""
        self._running = True
        try:
            while self._queue and self._queue[0][0] <= until:
                time_, _seq, handle, fn, args = heapq.heappop(self._queue)
                if handle is not None:
                    if handle.cancelled:
                        self._tombstones -= 1
                        continue
                    handle.fired = True
                self._now = time_
                self._events_processed += 1
                fn(*args)
                if self._event_hook is not None:
                    self._event_hook(time_)
            self._now = float(until)
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one event; return False if the queue is empty."""
        while self._queue:
            time_, _seq, handle, fn, args = heapq.heappop(self._queue)
            if handle is not None:
                if handle.cancelled:
                    self._tombstones -= 1
                    continue
                handle.fired = True
            self._now = time_
            self._events_processed += 1
            fn(*args)
            if self._event_hook is not None:
                self._event_hook(time_)
            return True
        return False

    def clear(self) -> None:
        """Cancel every pending event."""
        for entry in self._queue:
            if entry[2] is not None:
                entry[2].cancelled = True
        self._queue.clear()
        self._tombstones = 0


class PeriodicTimer:
    """Repeating timer with optional per-tick jitter.

    Fires ``fn(tick_index)`` every ``interval()`` seconds, where *interval*
    may be a constant or a zero-argument callable (e.g. drawing the paper's
    Hello interval uniformly from 1 +- 0.25 s each period).
    """

    def __init__(
        self,
        engine: Engine,
        interval: float | Callable[[], float],
        fn: Callable[[int], Any],
        first_at: float | None = None,
    ) -> None:
        self._engine = engine
        self._interval = interval
        self._fn = fn
        self._tick = 0
        self._handle: EventHandle | None = None
        self._stopped = False
        start = engine.now if first_at is None else first_at
        self._handle = engine.schedule_at(start, self._fire)

    def _next_interval(self) -> float:
        value = self._interval() if callable(self._interval) else self._interval
        if value <= 0:
            raise ScheduleError(f"timer interval must be positive, got {value!r}")
        return float(value)

    def _fire(self) -> None:
        if self._stopped:
            return
        tick = self._tick
        self._tick += 1
        self._handle = self._engine.schedule_after(self._next_interval(), self._fire)
        self._fn(tick)

    @property
    def ticks(self) -> int:
        """Number of times the timer has fired."""
        return self._tick

    def stop(self) -> None:
        """Stop the timer; the pending next tick is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
