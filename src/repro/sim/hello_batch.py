"""Receiver lookup for the batched Hello pipeline.

The scalar emission path evaluates *all* node positions and builds a fresh
:class:`~repro.geometry.grid.GraphBackend` at every distinct emission time
— correct, but each sender jitters / clock-skews its own send instant, so
the per-tick geometry memo never hits during warmup and receiver discovery
degenerates to O(n) grid builds per Hello generation (the 10k warmup wall;
see ``docs/PERFORMANCE.md``).

:class:`HelloReceiverOracle` answers the same query — *who is within the
normal range of sender i at time t?* — with a **stale grid plus an exact
subset filter**:

- a :class:`~repro.geometry.grid.GridIndex` is built over all positions at
  some grid time ``t_g`` and reused while ``v_max * (t - t_g)`` stays
  under a slack budget (``v_max`` is the provable trajectory speed bound);
- a query at ``t`` asks the stale grid for candidates within
  ``r + v_max * (t - t_g)`` — a guaranteed superset of the true receivers,
  since no node can have moved further than ``v_max * (t - t_g)``;
- the candidates' *true* positions at ``t`` are then evaluated with the
  subset kernel :meth:`~repro.mobility.base.TrajectorySet.positions_at`
  and filtered with the exact boundary-inclusive ``d <= r`` predicate.

The distance kernel (:func:`~repro.geometry.points.distances_from`) and
the position interpolation are elementwise, hence subset-stable: filtering
a superset of candidates yields the *bit-identical* ascending receiver
array the scalar ``IdealChannel.receivers`` path produces.  The i.i.d.
loss model downstream consumes its RNG positionally, so identical arrays
keep the whole run byte-identical.

Non-unit-disk :class:`~repro.sim.propagation.PropagationModel` instances
compose with the same discipline: the stale-grid query radius grows to
the model's superset radius (``model.query_radius(r) + v_max (t - t_g)``)
and the exact filter becomes the model's keyed ``accept`` predicate,
which is itself subset-stable — so the batched route stays bit-identical
to the scalar one under every model, not just the unit disk
(``tests/test_property_propagation.py`` pins this contract).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import GridIndex
from repro.geometry.points import distances_from
from repro.mobility.base import TrajectorySet

__all__ = ["HelloReceiverOracle"]

_EMPTY = np.empty(0, dtype=np.intp)


class HelloReceiverOracle:
    """Stale-grid receiver lookup over analytic trajectories.

    Parameters
    ----------
    trajectories:
        The compiled :class:`~repro.mobility.base.TrajectorySet`.
    radius:
        Transmission range of Hello broadcasts (the normal range).
    slack_factor:
        Fraction of *radius* the superset query may grow by before the
        grid is rebuilt; ``v_max * (t - t_g) <= slack_factor * radius``
        bounds the candidate overfetch.  0.5 keeps the query span at most
        2 cells while rebuilding (for the paper's 20 m/s scenarios) only
        every ``slack_factor * radius / v_max`` seconds.
    propagation:
        Optional non-unit-disk
        :class:`~repro.sim.propagation.PropagationModel`; the stale-grid
        query widens to the model's superset radius and the exact filter
        becomes the model's ``accept`` predicate.  ``None`` (the
        default) keeps the historical unit-disk path bit for bit.
        Within-nominal-range candidates the model rejects are tallied in
        :attr:`propagation_losses` (the world folds the per-query delta
        into the channel counters and telemetry).
    """

    __slots__ = (
        "trajectories",
        "radius",
        "propagation",
        "propagation_losses",
        "_query_radius",
        "_slack",
        "_vmax",
        "_grid",
        "_grid_t",
        "rebuilds",
        "queries",
    )

    def __init__(
        self,
        trajectories: TrajectorySet,
        radius: float,
        slack_factor: float = 0.5,
        propagation=None,
    ) -> None:
        self.trajectories = trajectories
        self.radius = float(radius)
        self.propagation = (
            None if propagation is None or propagation.is_unit_disk else propagation
        )
        self.propagation_losses = 0
        self._query_radius = (
            self.radius
            if self.propagation is None
            else self.propagation.query_radius(self.radius)
        )
        self._slack = float(slack_factor) * self.radius
        self._vmax = trajectories.max_speed()
        self._grid: GridIndex | None = None
        self._grid_t = 0.0
        self.rebuilds = 0
        self.queries = 0

    def node_position(self, node: int, t: float) -> np.ndarray:
        """Exact position of one node at *t* (``positions(t)[node]``)."""
        return self.trajectories.positions_at(t, np.array([node], dtype=np.intp))[0]

    def positions_of(self, nodes: np.ndarray, t: float) -> np.ndarray:
        """Exact positions of a node subset at *t* (``positions(t)[nodes]``)."""
        return self.trajectories.positions_at(t, nodes)

    def _ensure_grid(self, t: float) -> GridIndex:
        grid = self._grid
        if grid is not None and self._vmax * (t - self._grid_t) <= self._slack:
            return grid
        grid = GridIndex(self.trajectories.positions(t), cell_size=self.radius)
        self._grid = grid
        self._grid_t = t
        self.rebuilds += 1
        return grid

    def receivers(self, sender: int, t: float, sender_pos: np.ndarray | None = None) -> np.ndarray:
        """Ascending indices of the nodes that hear *sender* at *t*.

        Bit-identical to ``IdealChannel.receivers(sender, positions(t),
        radius, now=t)`` under the same propagation model — same
        candidate superset guarantee, same exact filter (``d <= radius``
        for the unit disk, the model's keyed ``accept`` otherwise), same
        ascending order, sender excluded.
        """
        if self.radius <= 0.0:
            return _EMPTY
        self.queries += 1
        grid = self._ensure_grid(t)
        p = self.node_position(sender, t) if sender_pos is None else sender_pos
        extra = self._vmax * (t - self._grid_t)
        cand = grid.neighbors_within(p, self._query_radius + extra)
        if cand.size == 0:
            return _EMPTY
        model = self.propagation
        if model is None:
            d = distances_from(p, self.trajectories.positions_at(t, cand))
            hit = cand[d <= self.radius]
            return hit[hit != sender]
        cand = cand[cand != sender]
        if cand.size == 0:
            return _EMPTY
        d = distances_from(p, self.trajectories.positions_at(t, cand))
        ok = model.accept(sender, cand, d, self.radius, t)
        # Same counted set as the scalar route: candidates the unit disk
        # would reach but the model rejects (d <= query radius always
        # holds for them in any candidate superset).
        self.propagation_losses += int(
            np.count_nonzero(~ok & (d <= min(self.radius, self._query_radius)))
        )
        return cand[ok]
