"""Event-driven unicast data traffic over the live simulation.

Unlike the instantaneous probes in :mod:`repro.sim.flood` and the
snapshot router in :mod:`repro.routing.geographic`, this module forwards
packets hop by hop *through the event engine*, so nodes move while a
packet is in flight and every forwarding decision uses exactly the stale,
Hello-derived information a real node would have:

- the forwarder picks the logical neighbor *believed* (from its view) to
  be closest to the destination and strictly closer than itself;
- the transmission physically succeeds only if that neighbor is truly
  inside the forwarder's extended range *now* (link-layer ACK semantics);
  on failure the forwarder falls back to its next-best candidate;
- a node with no progressing candidate drops the packet (greedy routing;
  use :class:`~repro.routing.geographic.GeographicRouter` for
  perimeter-recovery studies on frozen snapshots).

The destination's position is taken at injection time — the location
service assumed by all geographic MANET routing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.views import Hello
from repro.sim.world import NetworkWorld
from repro.util.validate import check_int_range, check_positive

__all__ = ["PacketRecord", "TrafficStats", "UnicastTraffic"]


@dataclass
class PacketRecord:
    """Lifecycle of one unicast packet."""

    packet_id: int
    source: int
    destination: int
    injected_at: float
    dest_position: tuple[float, float]
    delivered_at: float | None = None
    dropped_at: float | None = None
    drop_reason: str = ""
    hops: int = 0
    retries: int = 0
    path: list[int] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        """Whether the packet reached its destination."""
        return self.delivered_at is not None

    @property
    def delay(self) -> float:
        """End-to-end latency (inf while undelivered)."""
        if self.delivered_at is None:
            return math.inf
        return self.delivered_at - self.injected_at


@dataclass(frozen=True)
class TrafficStats:
    """Aggregate over a set of packet records."""

    sent: int
    delivered: int
    dropped: int
    mean_delay: float
    mean_hops: float
    mean_retries: float

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent (1.0 for zero traffic)."""
        return self.delivered / self.sent if self.sent else 1.0


class UnicastTraffic:
    """Greedy geographic unicast source/forwarder agent.

    Parameters
    ----------
    world:
        The live simulation to send packets through.
    hop_delay:
        Per-hop forwarding latency, seconds (queueing + transmission).
    max_hops:
        TTL; packets exceeding it are dropped.
    """

    def __init__(
        self, world: NetworkWorld, hop_delay: float = 2e-3, max_hops: int = 64
    ) -> None:
        self.world = world
        self.hop_delay = check_positive("hop_delay", hop_delay)
        self.max_hops = check_int_range("max_hops", max_hops, 1)
        self.records: list[PacketRecord] = []
        self._next_id = 0

    # ------------------------------------------------------------------ #

    def send(self, source: int, destination: int) -> PacketRecord:
        """Inject one packet now; forwarding proceeds via engine events."""
        n = self.world.config.n_nodes
        if not (0 <= source < n and 0 <= destination < n):
            raise ValueError("source/destination out of range")
        now = self.world.engine.now
        dest_pos = self.world.position(destination, now)
        record = PacketRecord(
            packet_id=self._next_id,
            source=source,
            destination=destination,
            injected_at=now,
            dest_position=(float(dest_pos[0]), float(dest_pos[1])),
            path=[source],
        )
        self._next_id += 1
        self.records.append(record)
        self._forward(record, source)
        return record

    def start_cbr(
        self, source: int, destination: int, interval: float, count: int
    ) -> None:
        """Schedule *count* packets at fixed *interval*, starting now."""
        check_positive("interval", interval)
        check_int_range("count", count, 1)
        for i in range(count):
            self.world.engine.schedule_after(
                i * interval, self.send, source, destination
            )

    # ------------------------------------------------------------------ #

    def _believed_positions(self, node_id: int):
        """(ids, believed positions) of the node's logical neighbors."""
        node = self.world.nodes[node_id]
        if node.decision is None:
            return [], []
        now = self.world.engine.now
        ids, positions = [], []
        for v in node.decision.logical_neighbors:
            history = node.table.history_of(v)
            if not history:
                continue
            ids.append(v)
            positions.append(history[-1].position)
        return ids, positions

    def _forward(self, record: PacketRecord, holder: int) -> None:
        if record.delivered or record.dropped_at is not None:
            return
        now = self.world.engine.now
        if holder == record.destination:
            record.delivered_at = now
            return
        if record.hops >= self.max_hops:
            record.dropped_at = now
            record.drop_reason = "ttl"
            return
        node = self.world.nodes[holder]
        if self.world.manager.recompute_on_packet:
            # packet events refresh the logical set (view synchronization)
            try:
                self.world.decide_node(holder)
            except Exception:  # pragma: no cover - bootstrap corner
                pass
        ids, believed = self._believed_positions(holder)
        if not ids:
            record.dropped_at = now
            record.drop_reason = "no-neighbors"
            return
        here = self.world.position(holder, now)
        dest = np.asarray(record.dest_position)
        my_dist = float(np.hypot(*(here - dest)))
        # candidates believed strictly closer to the destination, best first
        order = sorted(
            (
                (float(np.hypot(pos[0] - dest[0], pos[1] - dest[1])), v)
                for v, pos in zip(ids, believed)
            ),
        )
        progressing = [(d, v) for d, v in order if d < my_dist - 1e-9]
        tx_range = node.extended_range
        positions_now = self.world.positions(now)
        for _, v in progressing:
            true_dist = float(np.hypot(*(positions_now[v] - here)))
            if true_dist <= tx_range:
                record.hops += 1
                record.path.append(v)
                self.world.channel.stats.data_transmissions += 1
                self.world.engine.schedule_after(
                    self.hop_delay, self._forward, record, v
                )
                return
            record.retries += 1  # link-layer ACK missing: try next candidate
        record.dropped_at = now
        record.drop_reason = "no-progress" if not progressing else "links-stale"

    # ------------------------------------------------------------------ #

    def stats(self) -> TrafficStats:
        """Aggregate the records injected so far."""
        sent = len(self.records)
        delivered = [r for r in self.records if r.delivered]
        dropped = [r for r in self.records if r.dropped_at is not None]
        return TrafficStats(
            sent=sent,
            delivered=len(delivered),
            dropped=len(dropped),
            mean_delay=(
                float(np.mean([r.delay for r in delivered])) if delivered else math.inf
            ),
            mean_hops=(
                float(np.mean([r.hops for r in delivered])) if delivered else 0.0
            ),
            mean_retries=(
                float(np.mean([r.retries for r in self.records])) if sent else 0.0
            ),
        )
