"""The simulated MANET: nodes + mobility + radio + Hello protocol.

:class:`NetworkWorld` wires the discrete-event engine to everything else:

- **Hello emission** follows the consistency mechanism in force —
  jittered asynchronous timers (baseline / view-sync / weak), local-clock
  epoch boundaries with epoch-numbered versions (proactive), or
  initiator-flooded synchronized rounds (reactive);
- **decisions** run right after each Hello (the paper's Fig. 3 timing) and,
  for packet-recomputing mechanisms, again at packet time via
  :meth:`redecide_all`;
- **snapshots** freeze the directed effective topology at any instant for
  the metrics layer, fully vectorized.

Positions come from the analytic mobility trajectories; nodes only ever see
them through Hello messages.
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np

from repro.core.manager import MobilitySensitiveTopologyControl
from repro.core.neighbor_state import NeighborState
from repro.core.tables import ColumnarNeighborTable, NeighborTable
from repro.core.views import Hello
from repro.faults.inject import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.geometry.csr import CSRGraph
from repro.geometry.grid import DENSE_THRESHOLD, GraphBackend
from repro.geometry.points import pairwise_distances
from repro.geometry.sparse import IncrementalNeighborhoods, neighborhood_csr
from repro.gossip import GossipEngine
from repro.mobility.base import MobilityModel
from repro.sim.clock import ClockSet
from repro.sim.config import ScenarioConfig
from repro.sim.engine import Engine, PeriodicTimer
from repro.sim.hello_batch import HelloReceiverOracle
from repro.sim.node import SimNode
from repro.sim.propagation import make_propagation
from repro.sim.radio import IdealChannel
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.util.errors import ConfigurationError, DenseMaterializationError, ViewError
from repro.util.randomness import SeedSequenceFactory

__all__ = ["NetworkWorld", "WorldSnapshot", "DENSE_MATERIALIZE_LIMIT", "SPARSE_SWITCH"]

# Node count above which snapshot assembly scatters the logical matrix
# from precollected index arrays; below it, per-element scalar writes are
# faster (measured crossover ~400 at paper densities).
_SCATTER_SWITCH = 400

#: Largest snapshot for which the lazy dense ``dist`` / ``logical``
#: properties will materialize an ``(n, n)`` matrix on demand.  Above it
#: they raise :class:`~repro.util.errors.DenseMaterializationError`
#: instead of silently allocating gigabytes (n=10k dist is ~800 MB).
#: Overridable via the ``REPRO_DENSE_LIMIT`` environment variable; the
#: scale smoke gate sets it *below* its node count so any dense fallback
#: fails loudly.
DENSE_MATERIALIZE_LIMIT = int(os.environ.get("REPRO_DENSE_LIMIT", "4096"))

#: Node count at which ``World.snapshot`` switches from the eager dense
#: construction (byte-for-byte the historical small-n path) to the
#: sparse-first one (CSR eager, dense lazy).  Aligned with the geometry
#: layer's dense/grid crossover.
SPARSE_SWITCH = DENSE_THRESHOLD


class WorldSnapshot:
    """Frozen view of the network at one instant.

    Below :data:`SPARSE_SWITCH` nodes this behaves exactly as it always
    did: ``dist`` and ``logical`` are plain dense arrays.  At scale the
    snapshot is *sparse-first*: adjacency lives in CSR neighbor lists
    (:meth:`logical_csr`, :meth:`in_range_csr`, ...) and the dense
    matrices become lazy properties guarded by
    :data:`DENSE_MATERIALIZE_LIMIT` — consumers that genuinely need
    ``(n, n)`` arrays still work mid-scale, while anything that would
    allocate gigabytes raises
    :class:`~repro.util.errors.DenseMaterializationError`.

    Attributes
    ----------
    time:
        Snapshot instant (physical seconds).
    positions:
        True ``(n, 2)`` node positions.
    dist:
        ``(n, n)`` true pairwise distances (lazy property at scale).
    logical:
        ``(n, n)`` boolean; ``logical[u, v]`` iff v is in u's logical set
        (lazy property at scale).
    actual_ranges / extended_ranges:
        Per-node ranges currently in force.
    normal_range:
        The scenario's normal transmission range.
    """

    __slots__ = (
        "time",
        "positions",
        "actual_ranges",
        "extended_ranges",
        "normal_range",
        "propagation",
        "_dist",
        "_logical",
        "_logical_csr",
        "_backend",
        "_neighbor_source",
        "_cache",
    )

    def __init__(
        self,
        time: float,
        positions: np.ndarray,
        dist: np.ndarray | None = None,
        logical: np.ndarray | None = None,
        actual_ranges: np.ndarray | None = None,
        extended_ranges: np.ndarray | None = None,
        normal_range: float = 0.0,
        *,
        logical_csr: CSRGraph | None = None,
        backend: GraphBackend | None = None,
        neighbor_source=None,
        propagation=None,
    ) -> None:
        #: non-unit-disk PropagationModel in force, or None (unit disk);
        #: the in-range predicates below dispatch on this single reference.
        self.propagation = propagation
        self.time = time
        self.positions = np.asarray(positions, dtype=np.float64)
        n = self.positions.shape[0]
        self.actual_ranges = (
            np.zeros(n) if actual_ranges is None else np.asarray(actual_ranges)
        )
        self.extended_ranges = (
            np.zeros(n) if extended_ranges is None else np.asarray(extended_ranges)
        )
        self.normal_range = float(normal_range)
        if logical is None and logical_csr is None:
            raise ValueError("WorldSnapshot needs logical or logical_csr")
        self._dist = dist
        self._logical = logical
        self._logical_csr = logical_csr
        self._backend = backend
        #: optional callable ``radius -> CSRGraph`` (the world's
        #: incremental builder); otherwise neighborhoods build fresh.
        self._neighbor_source = neighbor_source
        self._cache: dict = {}

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return self.positions.shape[0]

    @property
    def prefers_dense(self) -> bool:
        """True when the dense code paths are the right (cheap) choice.

        Consumers dispatch on this: dense whenever the matrix is already
        in hand or the snapshot is small, sparse otherwise.
        """
        return self._dist is not None or self.n_nodes < SPARSE_SWITCH

    def _guard_dense(self, name: str) -> None:
        n = self.n_nodes
        if n > DENSE_MATERIALIZE_LIMIT:
            raise DenseMaterializationError(
                f"materializing WorldSnapshot.{name} would allocate an "
                f"({n}, {n}) matrix (limit {DENSE_MATERIALIZE_LIMIT} nodes; "
                f"set REPRO_DENSE_LIMIT to raise it, or use the sparse "
                f"CSR API: logical_csr / in_range_csr / effective_*_csr)"
            )

    @property
    def dist(self) -> np.ndarray:
        """``(n, n)`` true pairwise distances (materialized lazily)."""
        if self._dist is None:
            self._guard_dense("dist")
            if self._backend is not None:
                self._dist = self._backend.distances()
            else:
                self._dist = pairwise_distances(self.positions)
        return self._dist

    @property
    def logical(self) -> np.ndarray:
        """``(n, n)`` boolean logical-selection matrix (lazy at scale)."""
        if self._logical is None:
            self._guard_dense("logical")
            self._logical = self._logical_csr.to_dense()
        return self._logical

    # ------------------------------------------------------------------ #
    # dense API (unchanged semantics; raises above the limit at scale)

    def in_range(self) -> np.ndarray:
        """``(n, n)`` boolean: v hears u's transmissions (directed).

        Under a non-unit-disk propagation model the predicate is the
        model's (shadowed ranges for ``log-distance``; for the
        stochastic ``sinr`` model, one keyed reception draw per directed
        pair at the snapshot instant — reproducible, since the draws are
        pure functions of the bound seed and the snapshot time).
        """
        if self.propagation is None:
            mask = self.dist <= self.extended_ranges[:, np.newaxis]
        else:
            mask = self.propagation.in_range_matrix(
                self.dist, self.extended_ranges, self.time
            )
        np.fill_diagonal(mask, False)
        return mask

    def effective_directed(self, physical_neighbor_mode: bool = False) -> np.ndarray:
        """Directed delivery graph: in range, and accepted by the receiver.

        Without physical-neighbor mode a receiver drops packets from
        senders whose attached logical set does not list it (Section 5.1).
        """
        mask = self.in_range()
        if not physical_neighbor_mode:
            mask = mask & self.logical
        return mask

    def effective_bidirectional(self, physical_neighbor_mode: bool = False) -> np.ndarray:
        """Undirected effective topology: links usable in both directions."""
        directed = self.effective_directed(physical_neighbor_mode)
        return directed & directed.T

    def original_topology(self) -> np.ndarray:
        """Undirected maintainable topology at the normal range.

        Unit disk: ``d <= normal_range``, the paper's original topology.
        Deterministic-link models (``log-distance``): the links Hello
        exchange can actually maintain — within the nominal range *and*
        accepted by the (symmetric) model, so consistency/connectivity
        arguments keep a sound reference graph.  Stochastic models
        (``sinr``) have no time-invariant link set; the nominal disk is
        returned as the documented reference and the oracles that need
        an exact one skip such worlds.
        """
        adj = self.dist <= self.normal_range
        model = self.propagation
        if model is not None and not model.stochastic:
            n = self.n_nodes
            ranges = np.full(n, self.normal_range)
            adj = adj & model.in_range_matrix(self.dist, ranges, self.time)
            adj = adj & adj.T  # symmetric by construction; enforce exactly
        np.fill_diagonal(adj, False)
        return adj

    def logical_degrees(self) -> np.ndarray:
        """Per-node logical neighbor count."""
        if self._logical is not None:
            return self._logical.sum(axis=1)
        return self._logical_csr.degrees()

    def physical_degrees(self) -> np.ndarray:
        """Per-node count of nodes inside the *extended* range."""
        if self.prefers_dense:
            return self.in_range().sum(axis=1)
        return self.in_range_csr().degrees()

    # ------------------------------------------------------------------ #
    # sparse API — never allocates anything (n, n); bit-identical edge
    # sets and distances to the dense constructions above

    def pair_distance(self, u: int, v: int) -> float:
        """True distance between two nodes, without the full matrix."""
        if self._dist is not None:
            return float(self._dist[u, v])
        dx = self.positions[u, 0] - self.positions[v, 0]
        dy = self.positions[u, 1] - self.positions[v, 1]
        return float(np.sqrt(dx * dx + dy * dy))

    @property
    def logical_csr(self) -> CSRGraph:
        """CSR form of the logical-selection adjacency."""
        if self._logical_csr is None:
            self._logical_csr = CSRGraph.from_dense(self._logical)
        return self._logical_csr

    def neighbor_csr(self, radius: float) -> CSRGraph:
        """Edge-weighted unit-disk CSR at *radius* (cached per radius)."""
        key = float(radius)
        cached = self._cache.get(key)
        if cached is None:
            if self._neighbor_source is not None:
                cached = self._neighbor_source(key)
            else:
                if self._backend is None:
                    self._backend = GraphBackend(self.positions, dist=self._dist)
                cached = neighborhood_csr(self.positions, key, backend=self._backend)
            self._cache[key] = cached
        return cached

    def in_range_csr(self) -> CSRGraph:
        """CSR form of :meth:`in_range` (per-row extended-range filter).

        Non-unit-disk models use the superset-radius discipline: the
        neighborhood CSR is built at the model's superset radius for the
        largest in-force range, then every edge gets the exact keyed
        ``accept`` verdict — identical edges to the dense
        :meth:`in_range`, no ``(n, n)`` allocation.
        """
        cached = self._cache.get("in_range")
        if cached is None:
            if self.n_nodes == 0:
                cached = CSRGraph.empty(0)
            elif self.propagation is None:
                reach = self.neighbor_csr(float(self.extended_ranges.max()))
                cached = reach.filter_row_radius(self.extended_ranges)
            else:
                model = self.propagation
                reach = self.neighbor_csr(
                    model.query_radius(float(self.extended_ranges.max()))
                )
                senders = reach.rows_array()
                keep = model.accept(
                    senders,
                    reach.indices,
                    reach.data,
                    self.extended_ranges[senders],
                    self.time,
                )
                cached = reach.select(np.asarray(keep, dtype=bool))
            self._cache["in_range"] = cached
        return cached

    def effective_directed_csr(self, physical_neighbor_mode: bool = False) -> CSRGraph:
        """CSR form of :meth:`effective_directed`."""
        key = ("effective", bool(physical_neighbor_mode))
        cached = self._cache.get(key)
        if cached is None:
            cached = self.in_range_csr()
            if not physical_neighbor_mode:
                cached = cached.intersect(self.logical_csr)
            self._cache[key] = cached
        return cached

    def effective_bidirectional_csr(
        self, physical_neighbor_mode: bool = False
    ) -> CSRGraph:
        """CSR form of :meth:`effective_bidirectional`."""
        return self.effective_directed_csr(physical_neighbor_mode).mutual()

    def original_csr(self) -> CSRGraph:
        """CSR form of :meth:`original_topology`."""
        model = self.propagation
        if model is None or model.stochastic:
            return self.neighbor_csr(self.normal_range)
        cached = self._cache.get("original_model")
        if cached is None:
            reach = self.neighbor_csr(model.query_radius(self.normal_range))
            senders = reach.rows_array()
            keep = (
                np.asarray(
                    model.accept(
                        senders,
                        reach.indices,
                        reach.data,
                        self.normal_range,
                        self.time,
                    ),
                    dtype=bool,
                )
                & (reach.data <= self.normal_range)
            )
            cached = reach.select(keep).mutual()
            self._cache["original_model"] = cached
        return cached


class NetworkWorld:
    """A complete simulated MANET.

    Parameters
    ----------
    config:
        Scenario parameters.
    mobility:
        Mobility model; must cover ``config.duration`` and
        ``config.n_nodes``.
    manager:
        The mobility-sensitive topology control configuration every node
        runs (protocol + consistency mechanism + buffer policy).
    seed:
        Root seed for all per-world randomness (Hello jitter, clock skew,
        reactive flood emulation).
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` to arm.
        The events are realised deterministically from the world seed
        (named stream ``"faults"``); when None, every injection seam is
        a single predictable ``is None`` branch — measured zero-cost.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` collector.  When
        armed, the world traces Hello traffic, decisions, range changes
        and per-phase timings (``hello_emit`` / ``decide`` / ``redecide``
        / ``snapshot`` / ``engine_run`` spans); the disarmed default
        (:data:`~repro.telemetry.NULL_TELEMETRY`) keeps every seam a
        single ``is None`` branch, the same zero-cost pattern as the
        fault seams.
    hello_pipeline:
        Hello delivery route: ``"auto"`` (default) uses the batched
        generation-oriented pipeline — one engine event per Hello
        carrying the receiver array, columnar neighbor state, stale-grid
        receiver oracle — whenever no fault schedule is armed, and the
        scalar per-receiver path otherwise; ``"scalar"`` forces the
        historical per-receiver path; ``"batched"`` demands the batched
        path and raises if faults are armed (per-receiver delivery-delay
        and outage gating must stay event-accurate, so faults always
        route scalar).  Both routes are bit-identical — same receiver
        arrays, same RNG stream consumption, same table tokens, same
        ``RunStats`` counters (proven by the
        ``tests/test_property_hello_batch.py`` suite).  Non-unit-disk
        propagation models compose with both routes: the batched
        oracle's stale-grid query widens to the model's superset radius
        and the exact filter becomes the model's keyed predicate, so
        batched stays bit-identical to scalar under every model
        (``tests/test_property_propagation.py``).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        mobility: MobilityModel,
        manager: MobilitySensitiveTopologyControl,
        seed: int = 0,
        faults: FaultSchedule | None = None,
        telemetry: Telemetry | None = None,
        hello_pipeline: str = "auto",
    ) -> None:
        if mobility.n_nodes != config.n_nodes:
            raise ConfigurationError(
                f"mobility covers {mobility.n_nodes} nodes, config wants {config.n_nodes}"
            )
        if mobility.horizon < config.duration - 1e-9:
            raise ConfigurationError(
                f"mobility horizon {mobility.horizon} s is shorter than the "
                f"simulation duration {config.duration} s"
            )
        self.config = config
        self.mobility = mobility
        self.manager = manager
        self.engine = Engine()
        #: the collector in force (never None; NullTelemetry when disarmed)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Armed handle or None: every hot-path seam guards on this single
        # reference, so a disarmed world pays one predictable branch.
        self._tel: Telemetry | None = self.telemetry if self.telemetry.enabled else None
        self.engine.set_telemetry(self._tel)
        self.manager.attach_telemetry(self._tel)
        seeds = SeedSequenceFactory(seed)
        #: PropagationModel in force (UnitDisk unless configured otherwise).
        self.propagation = make_propagation(
            config.propagation, **config.propagation_params
        )
        if self.propagation.is_unit_disk:
            # Unit disk consumes no randomness and threads as None, so
            # every seam below stays the historical bit-identical path.
            self._propagation = None
        else:
            self._propagation = self.propagation.bind(
                int(seeds.rng("propagation").integers(2**63))
            )
        self.channel = IdealChannel(
            propagation_delay=config.propagation_delay,
            hello_loss_rate=config.hello_loss_rate,
            rng=seeds.rng("channel-loss") if config.hello_loss_rate > 0 else None,
            propagation=self._propagation,
        )
        self.channel.telemetry = self._tel
        self.fault_injector: FaultInjector | None = None
        if faults is not None:
            for event in faults:
                node = getattr(event, "node", None)
                if node is not None and node >= config.n_nodes:
                    raise ConfigurationError(
                        f"fault event {event!r} references node {node}, but the "
                        f"scenario has only {config.n_nodes} nodes"
                    )
            self.fault_injector = FaultInjector(
                faults, seeds.rng("faults"), telemetry=self._tel
            )
            self.channel.fault_filter = self.fault_injector.filter_hello_receivers
        self.clocks = ClockSet(
            config.n_nodes, config.max_clock_skew, seeds.rng("clock-skew")
        )
        if self.fault_injector is not None:
            for node_id in range(config.n_nodes):
                shift = self.fault_injector.clock_offset_shift(node_id)
                if shift:
                    self.clocks.offsets[node_id] += shift
        self._jitter_rng = seeds.rng("hello-jitter")
        self._round_rng = seeds.rng("reactive-rounds")
        # Recent Hello transmissions for the optional collision model:
        # (send time, sender id, sender position at send time).  Appended
        # in event order, so expiry pruning pops from the left.
        self._recent_hellos: deque[tuple[float, int, np.ndarray]] = deque()
        if hello_pipeline not in ("auto", "batched", "scalar"):
            raise ConfigurationError(
                f"hello_pipeline must be 'auto', 'batched' or 'scalar', "
                f"got {hello_pipeline!r}"
            )
        if hello_pipeline == "batched" and self.fault_injector is not None:
            raise ConfigurationError(
                "hello_pipeline='batched' cannot be combined with an armed "
                "fault schedule: per-receiver delivery gating must stay "
                "event-accurate, so faulted runs always use the scalar path "
                "(use 'auto' to get this dispatch automatically)"
            )
        self.hello_pipeline = hello_pipeline
        # Batched route: only when faults are disarmed and the mobility
        # model exposes compiled trajectories (the oracle's subset kernels
        # need the analytic legs).
        self._batched = hello_pipeline == "batched" or (
            hello_pipeline == "auto"
            and self.fault_injector is None
            and hasattr(mobility, "trajectories")
        )
        if self._batched:
            self._neighbor_state: NeighborState | None = NeighborState(
                config.n_nodes, config.history_depth
            )
            self._oracle: HelloReceiverOracle | None = HelloReceiverOracle(
                mobility.trajectories,
                config.normal_range,
                propagation=self._propagation,
            )
            self.nodes = [
                SimNode(
                    node_id=i,
                    table=ColumnarNeighborTable(
                        owner=i,
                        normal_range=config.normal_range,
                        state=self._neighbor_state,
                        history_depth=config.history_depth,
                        expiry=config.hello_expiry,
                    ),
                )
                for i in range(config.n_nodes)
            ]
        else:
            self._neighbor_state = None
            self._oracle = None
            self.nodes = [
                SimNode(
                    node_id=i,
                    table=NeighborTable(
                        owner=i,
                        normal_range=config.normal_range,
                        history_depth=config.history_depth,
                        expiry=config.hello_expiry,
                    ),
                )
                for i in range(config.n_nodes)
            ]
        # One (time, positions, backend) memo: every consumer of the same
        # tick — Hello emission, packet-time redecisions, snapshots,
        # repeated observers — shares a single mobility evaluation and one
        # GraphBackend (lazy dense distance matrix below the threshold,
        # grid index at scale) instead of recomputing the geometry each.
        self._geometry_memo: tuple[float, np.ndarray, GraphBackend] | None = None
        # One incremental CSR builder per quantized radius: between Hello
        # generations only nodes whose 3x3 grid-cell neighborhood changed
        # re-enter the geometry kernel (dirty-region recomputation).
        self._neighbor_builders: dict[float, IncrementalNeighborhoods] = {}
        self._setup_hello_schedule()
        # Anti-entropy dissemination driver — armed only for the gossip
        # mechanism, so every other mechanism never touches its seed
        # stream and stays byte-identical.
        self.gossip: GossipEngine | None = None
        if manager.mechanism.name == "gossip":
            self.gossip = GossipEngine(self, seeds.rng("gossip"))

    # ------------------------------------------------------------------ #
    # positions

    def positions(self, t: float | None = None) -> np.ndarray:
        """True node positions at time *t* (default: now)."""
        return self.mobility.positions(self.engine.now if t is None else t)

    def position(self, node: int, t: float | None = None) -> np.ndarray:
        """True position of one node at time *t* (default: now)."""
        return self.mobility.position(node, self.engine.now if t is None else t)

    def _geometry(self, t: float) -> tuple[np.ndarray, GraphBackend]:
        """(positions, backend) at time *t*, memoized per tick.

        The mobility trajectories are analytic, so positions at a given
        *t* never change — the memo is exact.  The backend's distance
        matrix and grid indices are built lazily: Hello emission only pays
        for one O(n) range query (or a grid lookup at scale), while a
        snapshot at the same tick reuses the positions and materialises
        the dense matrix once.
        """
        memo = self._geometry_memo
        if memo is None or memo[0] != t:
            positions = self.positions(t)
            memo = (t, positions, GraphBackend(positions))
            self._geometry_memo = memo
        return memo[1], memo[2]

    def _sparse_neighbors(self, t: float, radius: float) -> CSRGraph:
        """Unit-disk CSR at *radius* and time *t*, incrementally rebuilt.

        The incremental builders are keyed by a radius *quantized up* to a
        multiple of the normal range: the per-generation query radius
        (``extended_ranges.max()``) drifts tick to tick, but its quantum is
        stable, so the dirty-region diff stays valid across generations.
        Filtering the quantized graph down to *radius* is exact — edge
        distances depend only on the endpoint coordinates, never on the
        build radius.
        """
        positions, backend = self._geometry(t)
        nr = self.config.normal_range
        if radius <= 0 or not np.isfinite(radius) or nr <= 0 or not np.isfinite(nr):
            return neighborhood_csr(positions, radius, backend=backend)
        rq = nr * max(1.0, np.ceil(radius / nr))
        while rq < radius:  # float-quotient rounding guard
            rq += nr
        builder = self._neighbor_builders.setdefault(rq, IncrementalNeighborhoods())
        graph = builder.csr(positions, rq, backend=backend)
        if radius == rq:
            return graph
        return graph.select(graph.data <= radius)

    def neighbor_stats(self) -> dict[str, int]:
        """Aggregate incremental-rebuild counters across all builders."""
        totals = {
            "full_rebuilds": 0,
            "incremental_updates": 0,
            "reused_rows": 0,
            "recomputed_rows": 0,
        }
        for builder in self._neighbor_builders.values():
            for key in totals:
                totals[key] += getattr(builder, key)
        return totals

    # ------------------------------------------------------------------ #
    # Hello protocol

    def _setup_hello_schedule(self) -> None:
        cfg = self.config
        if self.manager.mechanism.name == "proactive":
            for node in self.nodes:
                first_epoch = (
                    self.clocks.epoch(node.node_id, 0.0, cfg.hello_interval) + 1
                )
                t0 = self.clocks.epoch_start(node.node_id, first_epoch, cfg.hello_interval)
                self.engine.schedule_at(
                    max(t0, 0.0), self._send_hello_proactive, node.node_id, first_epoch
                )
        elif self.manager.mechanism.name == "reactive":
            self.engine.schedule_at(0.0, self._run_reactive_round, 0)
        else:
            inj = self.fault_injector
            for node in self.nodes:
                interval = float(
                    self._jitter_rng.uniform(
                        cfg.hello_interval - cfg.hello_jitter,
                        cfg.hello_interval + cfg.hello_jitter,
                    )
                )
                first = float(self._jitter_rng.uniform(0.0, interval))
                if inj is None:
                    tick_interval = interval
                else:
                    # HelloIntervalScale seam: the timer re-samples the
                    # injector each tick, so scaling windows open and
                    # close without touching the timer machinery.
                    def tick_interval(nid=node.node_id, base=interval):
                        return base * inj.interval_scale(nid, self.engine.now)
                PeriodicTimer(
                    self.engine,
                    tick_interval,
                    lambda _tick, nid=node.node_id: self._send_hello_async(nid),
                    first_at=first,
                )

    def _emit_hello(self, node_id: int, version: int) -> Hello | None:
        """Broadcast a Hello at the normal range; deliver after the prop delay.

        Returns None (and transmits nothing) while the sender is inside a
        :class:`~repro.faults.schedule.NodeOutage` window.
        """
        tel = self._tel
        if tel is None:
            return self._emit_hello_impl(node_id, version, None)
        with tel.span("hello_emit"):
            return self._emit_hello_impl(node_id, version, tel)

    def _emit_hello_impl(
        self, node_id: int, version: int, tel: Telemetry | None
    ) -> Hello | None:
        if self._batched:
            return self._emit_hello_batched(node_id, version, tel)
        t = self.engine.now
        inj = self.fault_injector
        if inj is not None and inj.node_down(node_id, t):
            inj.note("suppressed_sends", t, node=node_id)
            return None
        node = self.nodes[node_id]
        all_positions, backend = self._geometry(t)
        pos = all_positions[node_id]
        # GPS noise perturbs what the node *advertises* (and therefore its
        # own record), never the true position the radio propagates from.
        adv = pos if inj is None else inj.advertised_position(node_id, t, pos)
        hello = Hello(
            sender=node_id,
            version=version,
            position=(float(adv[0]), float(adv[1])),
            sent_at=t,
            timestamp=self.clocks.local_time(node_id, t),
        )
        node.table.record_own(hello)
        node.hellos_sent += 1
        stats = self.channel.stats
        stats.hello_messages += 1
        receivers = self.channel.surviving_hello_receivers(
            self.channel.receivers(
                node_id, all_positions, self.config.normal_range,
                backend=backend, now=t,
            ),
            sender=node_id,
            now=t,
        )
        if self.config.hello_tx_duration > 0.0:
            receivers = self._drop_collided(
                t, node_id, pos, receivers, all_positions[receivers]
            )
        if tel is not None:
            tel.count("hello_sent")
            tel.event(
                "hello_sent", t=t, node=node_id, version=version,
                receivers=int(receivers.size),
            )
        arrival = self.channel.arrival_time(t)
        stats.deliveries += int(receivers.size)
        schedule_at = self.engine.schedule_at
        if inj is None:
            if tel is None:
                nodes = self.nodes
                for rid in receivers:
                    schedule_at(arrival, nodes[int(rid)].table.record_hello, hello)
            else:
                # Armed path: route receptions through the traced recorder
                # (same table call, plus a hello_received event).
                record_traced = self._record_hello_traced
                for rid in receivers:
                    schedule_at(arrival, record_traced, int(rid), hello)
        else:
            deliver = self._deliver_hello
            delivery_delay = inj.delivery_delay
            for rid in receivers:
                rid_i = int(rid)
                schedule_at(
                    arrival + delivery_delay(t, node_id, rid_i),
                    deliver,
                    rid_i,
                    hello,
                )
        return hello

    def _emit_hello_batched(
        self, node_id: int, version: int, tel: Telemetry | None
    ) -> Hello:
        """Batched emission: one coalesced engine event per Hello.

        Bit-identical to the scalar route (faults are never armed here):
        the oracle returns the exact ascending receiver array the
        per-emission geometry build would, the loss RNG consumes draws in
        the same positional order, and the single batch event fires at the
        same ``(arrival, seq)`` rank the scalar per-receiver burst would
        occupy, so reception order per (receiver, sender) is preserved.
        """
        t = self.engine.now
        node = self.nodes[node_id]
        oracle = self._oracle
        memo = self._geometry_memo
        pos = memo[1][node_id] if memo is not None and memo[0] == t else None
        hello_pos = oracle.node_position(node_id, t) if pos is None else pos
        hello = Hello(
            sender=node_id,
            version=version,
            position=(float(hello_pos[0]), float(hello_pos[1])),
            sent_at=t,
            timestamp=self.clocks.local_time(node_id, t),
        )
        node.table.record_own(hello)
        node.hellos_sent += 1
        stats = self.channel.stats
        stats.hello_messages += 1
        if oracle.propagation is None:
            hit = oracle.receivers(node_id, t, hello_pos)
        else:
            # Fold the oracle's per-query propagation rejects into the
            # channel counters — the same accounting the scalar route
            # does inside IdealChannel.receivers.
            before = oracle.propagation_losses
            hit = oracle.receivers(node_id, t, hello_pos)
            lost = oracle.propagation_losses - before
            if lost:
                stats.propagation_losses += lost
                if tel is not None:
                    tel.count("hello_dropped", lost, reason="propagation")
                    tel.event(
                        "hello_dropped", t=t, node=node_id,
                        count=lost, reason="propagation",
                    )
        receivers = self.channel.surviving_hello_receivers(
            hit, sender=node_id, now=t
        )
        if self.config.hello_tx_duration > 0.0:
            receivers = self._drop_collided(
                t, node_id, hello_pos, receivers,
                oracle.positions_of(receivers, t),
            )
        if tel is not None:
            tel.count("hello_sent")
            tel.event(
                "hello_sent", t=t, node=node_id, version=version,
                receivers=int(receivers.size),
            )
        stats.deliveries += int(receivers.size)
        if receivers.size:
            self.engine.schedule_batch(
                self.channel.arrival_time(t),
                self._receive_hello_batch,
                hello,
                receivers,
            )
        return hello

    def _receive_hello_batch(self, hello: Hello, receivers: np.ndarray) -> None:
        """Record one Hello at every surviving receiver (one splice)."""
        self._neighbor_state.record_batch(hello, receivers)
        tel = self._tel
        if tel is not None:
            n = int(receivers.size)
            tel.count("hello_received", n)
            tel.event_batch(
                "hello_received", n, t=self.engine.now,
                sender=hello.sender, version=hello.version, count=n,
            )

    def _record_hello_traced(self, receiver: int, hello: Hello) -> None:
        """Reception path while telemetry is armed (and no faults are)."""
        self.nodes[receiver].table.record_hello(hello)
        tel = self._tel
        if tel is not None:
            tel.count("hello_received")
            tel.event(
                "hello_received", t=self.engine.now, node=receiver,
                sender=hello.sender, version=hello.version,
            )

    def _deliver_hello(self, receiver: int, hello: Hello) -> None:
        """Gated reception path used while a fault schedule is armed.

        A down receiver hears nothing; a Hello that was overtaken by a
        fresher one from the same sender (delivery-delay reordering) is
        discarded by the standard sequence-number discipline, keeping the
        per-sender version order the audit machinery promises.
        """
        inj = self.fault_injector
        now = self.engine.now
        if inj is not None and inj.node_down(receiver, now):
            inj.note("blocked_receptions", now, node=receiver, sender=hello.sender)
            return
        table = self.nodes[receiver].table
        history = table.history_of(hello.sender)
        if history and hello.version <= history[-1].version:
            if inj is not None:
                inj.note("stale_discards", now, node=receiver, sender=hello.sender)
            return
        table.record_hello(hello)
        tel = self._tel
        if tel is not None:
            tel.count("hello_received")
            tel.event(
                "hello_received", t=now, node=receiver,
                sender=hello.sender, version=hello.version,
            )

    def _drop_collided(
        self,
        t: float,
        sender_id: int,
        sender_pos: np.ndarray,
        receivers: np.ndarray,
        receiver_positions: np.ndarray,
    ) -> np.ndarray:
        """Half-duplex collision model: a receiver inside the range of any
        *other* Hello still on the air loses this delivery.

        Only the newer transmission is dropped (the earlier deliveries are
        already scheduled); with sub-millisecond airtimes the asymmetry is
        a second-order effect and the model still produces the qualitative
        collision behaviour the paper's future work asks about.

        The interference test is deliberately nominal-range/unit-disk even
        when a propagation model is armed: a collision is about carrier
        energy at the receiver, not successful decoding, so the nominal
        disk is the conservative footprint.
        """
        window = self.config.hello_tx_duration
        recent = self._recent_hellos
        # Entries arrive in event-time order, so everything outside the
        # airtime window sits at the left end; an entry survives iff
        # ``t - entry[0] <= window`` (boundary-inclusive).
        while recent and t - recent[0][0] > window:
            recent.popleft()
        if recent and receivers.size:
            # One broadcast distance check of all on-air senders against all
            # receivers replaces the per-receiver Python loop; np.hypot on
            # the coordinate differences is the exact same IEEE computation
            # the scalar form ran per pair.
            on_air_ids = np.asarray([sid for (_, sid, _) in recent], dtype=np.intp)
            on_air_pos = np.asarray([spos for (_, _, spos) in recent], dtype=np.float64)
            rpos = receiver_positions
            diff = on_air_pos[:, np.newaxis, :] - rpos[np.newaxis, :, :]
            in_range = (
                np.hypot(diff[..., 0], diff[..., 1]) <= self.config.normal_range
            )
            collided = in_range.any(axis=0) | np.isin(receivers, on_air_ids)
            n_collided = int(collided.sum())
            self.channel.stats.collisions += n_collided
            tel = self._tel
            if tel is not None and n_collided:
                tel.count("hello_dropped", n_collided, reason="collision")
                tel.event(
                    "hello_dropped", t=t, node=sender_id,
                    count=n_collided, reason="collision",
                )
            surviving = receivers[~collided]
        else:
            surviving = receivers
        self._recent_hellos.append(
            (t, sender_id, np.asarray(sender_pos, dtype=float))
        )
        return np.asarray(surviving, dtype=np.intp)

    def _send_hello_async(self, node_id: int) -> None:
        node = self.nodes[node_id]
        hello = self._emit_hello(node_id, node.next_version)
        if hello is None:  # node down: no Hello, no decision, version unused
            return
        node.next_version += 1
        # The paper's timing (Fig. 3): decide right after sending.
        self.decide_node(node_id, current_hello=hello)

    def _send_hello_proactive(self, node_id: int, epoch: int) -> None:
        node = self.nodes[node_id]
        hello = self._emit_hello(node_id, epoch)
        node.next_version = epoch + 1
        next_t = self.clocks.epoch_start(node_id, epoch + 1, self.config.hello_interval)
        self.engine.schedule_at(next_t, self._send_hello_proactive, node_id, epoch + 1)
        if hello is None:  # down: epoch numbering advances, the node sleeps
            return
        # Decide on the last *complete* version: everyone's epoch-(e-1)
        # Hellos have arrived by now (skew + delay < one interval).
        try:
            self.decide_node(node_id, version=epoch - 1)
        except ViewError:
            pass  # first epoch: nothing complete yet

    def _run_reactive_round(self, round_index: int) -> None:
        cfg = self.config
        t = self.engine.now
        # Initiation flood: every node forwards once (the paper's overhead
        # complaint about the reactive scheme).
        self.channel.stats.sync_messages += cfg.n_nodes
        for node in self.nodes:
            offset = float(
                self._round_rng.uniform(cfg.propagation_delay, cfg.reactive_flood_delay)
            )
            self.engine.schedule_at(
                t + offset, self._send_hello_reactive, node.node_id, round_index
            )
        decide_at = t + cfg.reactive_flood_delay + 2.0 * cfg.propagation_delay
        if self._batched:
            # Warm the per-tick geometry memo right before the synchronized
            # round of decisions (they all share decide_at), so the batched
            # per-node position route degenerates to memo hits.
            self.engine.schedule_batch(decide_at, self._geometry, decide_at)
        for node in self.nodes:
            self.engine.schedule_at(
                decide_at, self._decide_reactive, node.node_id, round_index
            )
        if t + cfg.hello_interval <= cfg.duration + cfg.hello_interval:
            self.engine.schedule_at(
                t + cfg.hello_interval, self._run_reactive_round, round_index + 1
            )

    def _send_hello_reactive(self, node_id: int, round_index: int) -> None:
        node = self.nodes[node_id]
        self._emit_hello(node_id, round_index)
        node.next_version = round_index + 1

    def _decide_reactive(self, node_id: int, round_index: int) -> None:
        inj = self.fault_injector
        if inj is not None and inj.node_down(node_id, self.engine.now):
            return
        try:
            self.decide_node(node_id, version=round_index)
        except ViewError:
            pass  # node missed the round (e.g. it was down when it began)

    # ------------------------------------------------------------------ #
    # decisions

    def _node_position(self, node_id: int, t: float) -> np.ndarray:
        """True position of one node at *t*, cheapest exact route.

        Memo hit: the already-evaluated positions array.  Batched
        pipeline: a single-row trajectory evaluation (bit-identical to
        ``positions(t)[node_id]``), so per-emission decisions never force
        an O(n) geometry build.  Scalar pipeline: the historical full
        ``_geometry`` evaluation, which also warms the per-tick memo.
        """
        memo = self._geometry_memo
        if memo is not None and memo[0] == t:
            return memo[1][node_id]
        if self._batched:
            return self._oracle.node_position(node_id, t)
        return self._geometry(t)[0][node_id]

    def decide_node(
        self,
        node_id: int,
        version: int | None = None,
        current_hello: Hello | None = None,
    ) -> None:
        """Run topology control at one node, updating its standing decision."""
        node = self.nodes[node_id]
        t = self.engine.now
        if current_hello is None:
            # The per-tick memo makes packet-time recomputation share one
            # vectorized mobility evaluation across all n redecisions.
            pos = self._node_position(node_id, t)
            current_hello = Hello(
                sender=node_id,
                version=node.next_version,
                position=(float(pos[0]), float(pos[1])),
                sent_at=t,
                timestamp=self.clocks.local_time(node_id, t),
            )
        tel = self._tel
        if tel is None:
            node.decision = self.manager.decide(
                node.table, t, current_hello, version=version
            )
            return
        previous = node.decision
        with tel.span("decide"):
            node.decision = self.manager.decide(
                node.table, t, current_hello, version=version
            )
        new = node.decision
        if previous is None or previous.extended_range != new.extended_range:
            tel.count("range_changes")
            tel.event(
                "range_change", t=t, node=node_id,
                old=None if previous is None else previous.extended_range,
                new=new.extended_range,
            )

    def redecide_all(self, version: int | None = None) -> None:
        """Re-decide every node *now* — packet-time recomputation.

        Used by the flood layer for mechanisms with
        ``recompute_on_packet``: under view synchronization every
        forwarding node refreshes its logical set when it sends, and under
        the proactive scheme every node decides on the packet's *version*.
        Recomputing all nodes (not only eventual forwarders) is equivalent
        for reachability and keeps the hot path vectorizable.
        """
        tel = self._tel
        if tel is None:
            self._redecide_all_impl(version)
        else:
            with tel.span("redecide"):
                self._redecide_all_impl(version)

    def _redecide_all_impl(self, version: int | None) -> None:
        inj = self.fault_injector
        now = self.engine.now
        # Warm the per-tick geometry memo once: every decide below shares
        # the single vectorized mobility evaluation (in batched mode the
        # per-node position route would otherwise run n single-row evals).
        self._geometry(now)
        for node in self.nodes:
            if inj is not None and inj.node_down(node.node_id, now):
                continue  # a crashed node forwards nothing and decides nothing
            try:
                self.decide_node(node.node_id, version=version)
                node.packet_decisions += 1
            except ViewError:
                # A node that has never advertised cannot decide; it keeps
                # (the absence of) its standing decision.
                continue

    # ------------------------------------------------------------------ #
    # running & observing

    def run_until(self, t: float) -> None:
        """Advance the simulation to physical time *t*."""
        self.engine.run(until=t)

    def fault_stats(self) -> dict[str, int]:
        """Injected-fault counters (empty when no schedule is armed)."""
        return {} if self.fault_injector is None else self.fault_injector.as_dict()

    def gossip_stats(self) -> dict[str, int]:
        """Anti-entropy dissemination counters (empty unless gossip)."""
        return {} if self.gossip is None else self.gossip.as_dict()

    def hello_pipeline_stats(self) -> dict[str, int]:
        """Batched-pipeline counters (empty on the scalar route)."""
        if not self._batched:
            return {}
        return {
            "oracle_rebuilds": self._oracle.rebuilds,
            "oracle_queries": self._oracle.queries,
            "neighbor_slots": self._neighbor_state.n_slots,
        }

    def snapshot(self, t: float | None = None) -> WorldSnapshot:
        """Freeze the effective topology at time *t* (default: now).

        *t* may not exceed current simulation time — snapshots reflect
        decisions actually made, never future ones.
        """
        now = self.engine.now if t is None else float(t)
        if t is not None and t > self.engine.now + 1e-9:
            raise ConfigurationError(
                f"cannot snapshot the future: t={t} > now={self.engine.now}"
            )
        tel = self._tel
        if tel is None:
            return self._snapshot_impl(now)
        with tel.span("snapshot"):
            snap = self._snapshot_impl(now)
        tel.count("snapshots")
        return snap

    def _snapshot_impl(self, now: float) -> WorldSnapshot:
        n = self.config.n_nodes
        positions, backend = self._geometry(now)
        actual = np.zeros(n)
        extended = np.zeros(n)
        sparse_first = n >= SPARSE_SWITCH
        if n >= _SCATTER_SWITCH:
            # One fancy-indexed scatter from precollected (owner, count,
            # neighbor) index arrays replaces n small per-node writes.  At
            # and above the sparse switch, the same index arrays become the
            # CSR logical adjacency directly — no (n, n) allocation.
            ids: list[int] = []
            counts: list[int] = []
            cols: list[int] = []
            cols_extend = cols.extend
            for node in self.nodes:
                decision = node.decision
                if decision is None:
                    continue
                i = node.node_id
                neighbors = decision.logical_neighbors
                if neighbors:
                    ids.append(i)
                    counts.append(len(neighbors))
                    cols_extend(neighbors)
                actual[i] = decision.actual_range
                extended[i] = decision.extended_range
            if sparse_first:
                # logical_neighbors is a frozenset: rows arrive grouped but
                # columns unordered, so from_edges' stable sort applies.
                logical_csr = (
                    CSRGraph.from_edges(np.repeat(ids, counts), np.asarray(cols), n)
                    if ids
                    else CSRGraph.empty(n)
                )
                return WorldSnapshot(
                    time=now,
                    positions=positions,
                    logical_csr=logical_csr,
                    actual_ranges=actual,
                    extended_ranges=extended,
                    normal_range=self.config.normal_range,
                    backend=backend,
                    neighbor_source=lambda r, _t=now: self._sparse_neighbors(_t, r),
                    propagation=self._propagation,
                )
            logical = np.zeros((n, n), dtype=bool)
            if ids:
                logical[np.repeat(ids, counts), cols] = True
        else:
            # Below the crossover the per-element scalar writes beat the
            # index-list build; neighbor sets are only a handful wide.
            logical = np.zeros((n, n), dtype=bool)
            for node in self.nodes:
                decision = node.decision
                if decision is None:
                    continue
                i = node.node_id
                row = logical[i]
                for v in decision.logical_neighbors:
                    row[v] = True
                actual[i] = decision.actual_range
                extended[i] = decision.extended_range
        return WorldSnapshot(
            time=now,
            positions=positions,
            dist=backend.distances(),
            logical=logical,
            actual_ranges=actual,
            extended_ranges=extended,
            normal_range=self.config.normal_range,
            backend=backend,
            neighbor_source=lambda r, _t=now: self._sparse_neighbors(_t, r),
            propagation=self._propagation,
        )
