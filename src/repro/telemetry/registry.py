"""Metrics registry: labeled counters, gauges, and histograms.

The registry is the numeric half of the telemetry subsystem (the event
log in :mod:`repro.telemetry.events` is the narrative half).  Instruments
are created on first use and keyed by ``(name, sorted labels)``, the same
labeled-series model Prometheus and ns-3's FlowMonitor attributes use, so
one run can hold e.g. ``hello_dropped{reason=loss}`` next to
``hello_dropped{reason=fault}`` without pre-registration.

All instruments are plain Python objects with O(1) updates — cheap enough
to live on the simulator's hot paths when telemetry is armed, and never
touched at all when it is not (see :class:`repro.telemetry.NullTelemetry`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count (messages sent, cache hits, ...)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount!r}")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value that can move both ways (queue depth, range)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by *amount* (may be negative)."""
        self.value += amount


@dataclass
class Histogram:
    """Streaming distribution summary (count / total / min / max / sumsq).

    Keeps O(1) state rather than samples: enough for mean and standard
    deviation in summaries without unbounded memory on long runs.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    sumsq: float = field(default=0.0, repr=False)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Sample mean (NaN before the first observation)."""
        return self.total / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        """Population standard deviation (NaN before the first observation)."""
        if not self.count:
            return math.nan
        var = self.sumsq / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    def as_dict(self) -> dict[str, float]:
        """Plain-dict summary (JSON/export friendly).

        Carries ``sumsq`` alongside the moments so merging two summaries
        (:meth:`repro.telemetry.Telemetry.absorb`) can reconstruct the
        exact merged standard deviation instead of a lower bound.
        """
        if not self.count:
            return {
                "count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "sumsq": 0.0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "sumsq": self.sumsq,
        }


class MetricsRegistry:
    """Get-or-create store of labeled metric series.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("hello_sent").inc()
    >>> reg.counter("hello_dropped", reason="loss").inc(3)
    >>> reg.counter("hello_sent").value
    1.0
    >>> [name for name, _, _ in reg.rows()]
    ['hello_dropped', 'hello_sent']
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # ------------------------------------------------------------------ #
    # instrument accessors (get-or-create)

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter series *name* with the given labels."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge series *name* with the given labels."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram series *name* with the given labels."""
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    # ------------------------------------------------------------------ #
    # introspection / export

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def rows(self) -> list[tuple[str, dict[str, str], object]]:
        """Every series as ``(name, labels, instrument)``, sorted by name.

        Counters first, then gauges, then histograms; within each kind the
        order is ``(name, labels)`` so exports are stable and diffable.
        """
        out: list[tuple[str, dict[str, str], object]] = []
        for store in (self._counters, self._gauges, self._histograms):
            for (name, labels) in sorted(store):
                out.append((name, dict(labels), store[(name, labels)]))
        return out

    def counters_dict(self) -> dict[str, float]:
        """Flat ``{"name{k=v,...}": value}`` view of every counter."""
        out: dict[str, float] = {}
        for (name, labels), counter in sorted(self._counters.items()):
            if labels:
                tag = ",".join(f"{k}={v}" for k, v in labels)
                out[f"{name}{{{tag}}}"] = counter.value
            else:
                out[name] = counter.value
        return out
