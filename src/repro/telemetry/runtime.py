"""Ambient telemetry: one armed collector for a whole command.

The CLI's ``--telemetry`` flag has to reach :func:`repro.api.simulate` /
:func:`repro.analysis.experiment.run_once` calls buried many layers down
(figure generators, campaign sweeps) without threading a parameter through
every signature.  :func:`use_telemetry` installs a collector in a
context variable; :func:`current_telemetry` is consulted by ``run_once``
whenever no explicit telemetry argument was given.

The ambient collector is process-local: repetitions fanned out over
worker processes do not see it, which is why the CLI forces sequential
execution while ``--telemetry`` is armed.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.telemetry.core import Telemetry

__all__ = ["current_telemetry", "use_telemetry"]

_CURRENT: ContextVar[Telemetry | None] = ContextVar("repro_telemetry", default=None)


def current_telemetry() -> Telemetry | None:
    """The ambient armed collector, or None when none is installed."""
    return _CURRENT.get()


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install *telemetry* as the ambient collector for the with-block.

    Examples
    --------
    >>> from repro.telemetry import Telemetry
    >>> tel = Telemetry()
    >>> with use_telemetry(tel) as t:
    ...     current_telemetry() is tel
    True
    >>> current_telemetry() is None
    True
    """
    token = _CURRENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _CURRENT.reset(token)
