"""Bounded structured event log: what happened, when, to whom.

Counters say *how much*; events say *in what order*.  A
:class:`TelemetryEvent` is one timestamped record (Hello sent, decision
cache miss, fault window opening, range change, ...) with free-form scalar
fields.  The :class:`EventLog` keeps the most recent ``maxsize`` of them —
simulation runs emit events at Hello rate, so an unbounded log would
dominate memory on long runs; the drop counter makes truncation explicit
instead of silent.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["EVENT_KINDS", "TelemetryEvent", "EventLog"]

#: The shipped event taxonomy (see docs/OBSERVABILITY.md).  The log accepts
#: unknown kinds — extensions may add their own — but everything the repro
#: simulator itself emits is listed here, and the JSONL schema check warns
#: on kinds outside this set.
EVENT_KINDS: frozenset[str] = frozenset(
    {
        "run_start",  # one simulation repetition begins (seed, spec label)
        "run_end",  # repetition finished (wall-clock, sample count)
        "hello_sent",  # a node broadcast a Hello (version, receiver count)
        "hello_received",  # a Hello was recorded by a receiver table
        "hello_dropped",  # deliveries lost (reason: loss | fault | collision | propagation)
        "decision_cache_hit",  # manager served a decision from the cache
        "decision_cache_miss",  # manager recomputed a decision
        "range_change",  # a decision changed the node's extended range
        "fault",  # an injector seam fired (action field says which)
        "flood",  # a delivery probe ran (source, delivery ratio)
        "gossip_exchange",  # an anti-entropy push-pull completed (pulled/pushed counts)
        "gossip_mayday",  # a silent-view node re-requested full views from peers
    }
)


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One structured record in the event stream.

    Attributes
    ----------
    kind:
        Event type; see :data:`EVENT_KINDS` for the shipped taxonomy.
    t:
        Simulation time of the event, seconds.
    node:
        Primary node involved (None for run-level events).
    data:
        Additional scalar fields, stored as a sorted tuple of pairs so the
        event itself stays hashable and cheap to compare.
    """

    kind: str
    t: float
    node: int | None = None
    data: tuple[tuple[str, Any], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (data pairs inlined under ``"data"``)."""
        out: dict[str, Any] = {"kind": self.kind, "t": self.t}
        if self.node is not None:
            out["node"] = self.node
        if self.data:
            out["data"] = dict(self.data)
        return out


class EventLog:
    """Ring buffer of the most recent telemetry events.

    Parameters
    ----------
    maxsize:
        Retained events; older ones are evicted FIFO.  Eviction is counted
        in :attr:`dropped` (and per-kind tallies in :meth:`kind_counts`
        keep counting even for evicted events, so totals stay exact).
    """

    __slots__ = ("maxsize", "_events", "recorded", "dropped", "_tally")

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._events: deque[TelemetryEvent] = deque(maxlen=self.maxsize)
        self.recorded = 0
        self.dropped = 0
        self._tally: _TallyCounter[str] = _TallyCounter()

    def append(self, event: TelemetryEvent, tally: int = 1) -> None:
        """Record one event (evicting the oldest when full).

        *tally* > 1 records a single summarizing event object that stands
        for that many occurrences: the per-kind tally (and therefore
        :meth:`kind_counts`) advances by *tally*, while only one event is
        retained — the other ``tally - 1`` count as recorded-but-not-
        retained (``dropped``), the same accounting :meth:`absorb_counts`
        uses for merged summaries.  This is what keeps the batched Hello
        pipeline's ``hello_received`` kind totals exactly equal to the
        scalar per-receiver path.
        """
        if tally < 1:
            raise ValueError(f"tally must be >= 1, got {tally}")
        if len(self._events) == self.maxsize:
            self.dropped += 1
        self._events.append(event)
        self.recorded += tally
        self.dropped += tally - 1
        self._tally[event.kind] += tally

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self._events)

    def kind_counts(self) -> dict[str, int]:
        """Exact per-kind event totals (including evicted events)."""
        return dict(sorted(self._tally.items()))

    def absorb_counts(self, counts: dict[str, int], recorded: int) -> None:
        """Fold another log's per-kind tallies into this one.

        The merge seam for multi-process telemetry: worker collectors ship
        frozen summaries, not event objects, so absorbed events count as
        recorded-but-not-retained (``dropped``) here — kind totals stay
        exact while the retained ring buffer holds only local events.
        """
        for kind, n in counts.items():
            self._tally[kind] += int(n)
        self.recorded += int(recorded)
        self.dropped += int(recorded)
