"""Telemetry exporters: JSONL event streams, summary tables, phase timings.

Three output shapes, one source of truth (a :class:`~repro.telemetry.Telemetry`):

- :func:`write_jsonl` — the full machine-readable record (schema
  ``repro-telemetry/1``): one header line, then every metric series, every
  span aggregate, every retained event, and a trailing summary line.
  Validated by :func:`repro.telemetry.schema.validate_jsonl`.
- :func:`summary_table` — a compact ASCII digest for terminals (the
  ``--telemetry`` flag prints it after the JSONL is written).
- :func:`write_phase_timings` — per-phase span breakdown in the same
  single-JSON-artifact style as ``BENCH_geometry.json`` /
  ``BENCH_decide.json``, for tracking where run time goes across PRs.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.telemetry.core import Telemetry
from repro.telemetry.registry import Counter, Gauge, Histogram

__all__ = ["SCHEMA", "PHASES_SCHEMA", "write_jsonl", "summary_table", "write_phase_timings"]

#: Schema identifier stamped into every JSONL header line.
SCHEMA = "repro-telemetry/1"

#: Schema identifier of the phase-timing artifact.
PHASES_SCHEMA = "repro-telemetry-phases/1"


def _metric_records(telemetry: Telemetry) -> list[dict[str, Any]]:
    """One ``record: metric`` dict per registry series."""
    out: list[dict[str, Any]] = []
    for name, labels, inst in telemetry.registry.rows():
        if isinstance(inst, Histogram):
            kind, value = "histogram", inst.as_dict()
        elif isinstance(inst, Gauge):
            kind, value = "gauge", inst.value
        elif isinstance(inst, Counter):
            kind, value = "counter", inst.value
        else:  # pragma: no cover - registry only stores the three kinds
            continue
        record: dict[str, Any] = {"record": "metric", "kind": kind, "name": name, "value": value}
        if labels:
            record["labels"] = labels
        out.append(record)
    return out


def _write_stream(fh: TextIO, telemetry: Telemetry, meta: dict[str, Any] | None) -> int:
    """Write one complete JSONL stream; returns the number of lines."""
    lines = 0

    def emit(record: dict[str, Any]) -> None:
        nonlocal lines
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        lines += 1

    emit({"record": "header", "schema": SCHEMA, "meta": dict(meta or {})})
    for record in _metric_records(telemetry):
        emit(record)
    for name, stats in sorted(telemetry.spans.items()):
        emit({"record": "span", "name": name, **stats.as_dict()})
    for event in telemetry.events:
        emit({"record": "event", **event.as_dict()})
    emit(
        {
            "record": "summary",
            "events_recorded": telemetry.events.recorded,
            "events_dropped": telemetry.events.dropped,
            "event_counts": telemetry.events.kind_counts(),
        }
    )
    return lines


def write_jsonl(
    path,
    telemetry: Telemetry,
    meta: dict[str, Any] | None = None,
    append: bool = False,
) -> int:
    """Write *telemetry* as a ``repro-telemetry/1`` JSONL stream to *path*.

    Returns the number of lines written.  With ``append=True`` a new
    header-to-summary block is appended after any existing stream (one
    file can then hold several runs; each block revalidates on its own).
    """
    with open(path, "a" if append else "w", encoding="utf-8") as fh:
        return _write_stream(fh, telemetry, meta)


def _format_rows(rows: list[tuple[str, ...]], header: tuple[str, ...]) -> str:
    """Minimal fixed-width ASCII table (no analysis-layer dependency)."""
    table = [header, *rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    out = []
    for j, row in enumerate(table):
        out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if j == 0:
            out.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(out)


def summary_table(telemetry: Telemetry, title: str = "telemetry summary") -> str:
    """Human-readable digest: counters, spans, and event tallies."""
    sections = [title, "=" * len(title)]
    counter_rows = [
        (key, f"{value:g}") for key, value in sorted(telemetry.registry.counters_dict().items())
    ]
    if counter_rows:
        sections.append("")
        sections.append(_format_rows(counter_rows, ("counter", "value")))
    span_rows = []
    for name, stats in sorted(telemetry.spans.items()):
        d = stats.as_dict()
        span_rows.append(
            (
                name,
                str(d["count"]),
                f"{d['total_s'] * 1e3:.2f}",
                f"{d['self_s'] * 1e3:.2f}",
                f"{d['mean_s'] * 1e6:.1f}",
            )
        )
    if span_rows:
        sections.append("")
        sections.append(
            _format_rows(span_rows, ("span", "count", "total ms", "self ms", "mean us"))
        )
    event_rows = [
        (kind, str(count)) for kind, count in sorted(telemetry.events.kind_counts().items())
    ]
    if event_rows:
        sections.append("")
        sections.append(_format_rows(event_rows, ("event kind", "count")))
        sections.append(
            f"\nevents retained: {len(telemetry.events)} / recorded "
            f"{telemetry.events.recorded} (dropped {telemetry.events.dropped})"
        )
    if len(sections) == 2:
        sections.append("\n(no telemetry recorded)")
    return "\n".join(sections)


def write_phase_timings(path, telemetry: Telemetry, meta: dict[str, Any] | None = None) -> dict:
    """Write the per-phase span breakdown as a ``BENCH_*``-style artifact.

    Returns the written document (handy for tests and callers that also
    want to print it).
    """
    doc = {
        "schema": PHASES_SCHEMA,
        "meta": dict(meta or {}),
        "phases": {name: stats.as_dict() for name, stats in sorted(telemetry.spans.items())},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
