"""Schema checks for ``repro-telemetry/1`` JSONL streams.

A dependency-free structural validator (no jsonschema in the base image):
:func:`validate_jsonl` walks a stream line by line and returns every
violation it finds, so CI can gate exported telemetry without executing
anything else.  Also runnable as a module::

    python -m repro.telemetry.schema out.jsonl

which exits non-zero when the file is invalid (used by the CI telemetry
job).
"""

from __future__ import annotations

import json
import sys

from repro.telemetry.events import EVENT_KINDS
from repro.telemetry.export import SCHEMA

__all__ = ["validate_records", "validate_jsonl"]

_METRIC_KINDS = {"counter", "gauge", "histogram"}
_HISTOGRAM_KEYS = {"count", "total", "min", "max", "mean"}
#: ``sumsq`` rides along so merged standard deviations stay exact; streams
#: written before it existed (or by trimmed exporters) remain valid.
_HISTOGRAM_OPTIONAL = {"sumsq"}
_SPAN_KEYS = {"count", "total_s", "self_s", "mean_s", "min_s", "max_s"}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_metric(record: dict, where: str, errors: list[str]) -> None:
    kind = record.get("kind")
    if kind not in _METRIC_KINDS:
        errors.append(f"{where}: metric kind must be one of {sorted(_METRIC_KINDS)}, got {kind!r}")
        return
    if not isinstance(record.get("name"), str) or not record["name"]:
        errors.append(f"{where}: metric needs a non-empty string 'name'")
    labels = record.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        errors.append(f"{where}: labels must map strings to strings")
    value = record.get("value")
    if kind == "histogram":
        if not isinstance(value, dict) or not (
            _HISTOGRAM_KEYS <= set(value) <= _HISTOGRAM_KEYS | _HISTOGRAM_OPTIONAL
        ):
            errors.append(f"{where}: histogram value must have keys {sorted(_HISTOGRAM_KEYS)}")
        elif not all(_is_number(v) for v in value.values()):
            errors.append(f"{where}: histogram fields must be numeric")
    elif not _is_number(value):
        errors.append(f"{where}: {kind} value must be numeric, got {value!r}")


def _check_span(record: dict, where: str, errors: list[str]) -> None:
    if not isinstance(record.get("name"), str) or not record["name"]:
        errors.append(f"{where}: span needs a non-empty string 'name'")
    missing = _SPAN_KEYS - set(record)
    if missing:
        errors.append(f"{where}: span missing fields {sorted(missing)}")
    for key in _SPAN_KEYS & set(record):
        if not _is_number(record[key]):
            errors.append(f"{where}: span field {key!r} must be numeric")


def _check_event(record: dict, where: str, errors: list[str]) -> None:
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        errors.append(f"{where}: event needs a non-empty string 'kind'")
    elif kind not in EVENT_KINDS:
        errors.append(f"{where}: unknown event kind {kind!r} (taxonomy: {sorted(EVENT_KINDS)})")
    if not _is_number(record.get("t")):
        errors.append(f"{where}: event needs a numeric time 't'")
    if "node" in record and not isinstance(record["node"], int):
        errors.append(f"{where}: event 'node' must be an integer")
    if "data" in record and not isinstance(record["data"], dict):
        errors.append(f"{where}: event 'data' must be an object")


def validate_records(records: list[tuple[int, dict]], errors: list[str]) -> None:
    """Validate one header-to-summary block of parsed ``(lineno, record)``."""
    if not records:
        return
    lineno, head = records[0]
    if head.get("record") != "header":
        errors.append(f"line {lineno}: block must start with a header record")
    elif head.get("schema") != SCHEMA:
        errors.append(f"line {lineno}: schema must be {SCHEMA!r}, got {head.get('schema')!r}")
    if records[-1][1].get("record") != "summary":
        errors.append(f"line {records[-1][0]}: block must end with a summary record")
    for lineno, record in records[1:]:
        where = f"line {lineno}"
        rtype = record.get("record")
        if rtype == "metric":
            _check_metric(record, where, errors)
        elif rtype == "span":
            _check_span(record, where, errors)
        elif rtype == "event":
            _check_event(record, where, errors)
        elif rtype == "summary":
            for key in ("events_recorded", "events_dropped"):
                if not isinstance(record.get(key), int):
                    errors.append(f"{where}: summary needs integer {key!r}")
            if not isinstance(record.get("event_counts"), dict):
                errors.append(f"{where}: summary needs an 'event_counts' object")
        elif rtype == "header":
            errors.append(f"{where}: unexpected header inside a block")
        else:
            errors.append(f"{where}: unknown record type {rtype!r}")


def validate_jsonl(path) -> list[str]:
    """Validate a JSONL telemetry file; returns a list of error strings.

    An empty list means the file is schema-valid.  Files may contain
    several appended header-to-summary blocks (see
    :func:`repro.telemetry.export.write_jsonl` with ``append=True``).
    """
    errors: list[str] = []
    block: list[tuple[int, dict]] = []
    any_lines = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            any_lines = True
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            if not isinstance(record, dict):
                errors.append(f"line {lineno}: each line must be a JSON object")
                continue
            if record.get("record") == "header" and block:
                validate_records(block, errors)
                block = []
            block.append((lineno, record))
    if block:
        validate_records(block, errors)
    if not any_lines:
        errors.append("file contains no records")
    return errors


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.telemetry.schema FILE [FILE...]`` entry point."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.telemetry.schema FILE [FILE...]", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = validate_jsonl(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: OK ({SCHEMA})")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
