"""Telemetry subsystem: metrics registry, timing spans, event tracing.

Everything the paper's evaluation counts — Hello overhead, removed links,
delivery under stale views — flows through here when a run is armed with a
:class:`Telemetry` collector; the disarmed default (:class:`NullTelemetry`)
costs nothing on the simulator's hot paths.  See ``docs/OBSERVABILITY.md``
for the event taxonomy, span phases, and exporter formats.

Quickstart
----------
>>> from repro.telemetry import Telemetry
>>> tel = Telemetry()
>>> with tel.span("demo"):
...     tel.count("widgets", 2)
>>> tel.summary().as_dict()["counters"]
{'widgets': 2.0}
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    SpanStats,
    Telemetry,
    TelemetrySummary,
)
from repro.telemetry.events import EVENT_KINDS, EventLog, TelemetryEvent
from repro.telemetry.export import (
    PHASES_SCHEMA,
    SCHEMA,
    summary_table,
    write_jsonl,
    write_phase_timings,
)
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.runtime import current_telemetry, use_telemetry
from repro.telemetry.schema import validate_jsonl

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySummary",
    "SpanStats",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "TelemetryEvent",
    "EVENT_KINDS",
    "SCHEMA",
    "PHASES_SCHEMA",
    "write_jsonl",
    "summary_table",
    "write_phase_timings",
    "validate_jsonl",
    "current_telemetry",
    "use_telemetry",
]
